"""Result-store benchmark — query latency vs store size, columnar vs JSONL.

Measures the tentpole promise of the columnar store: **p50 query latency
stays flat as the store grows**.  A query touches one content-addressed
result (O(1) index lookup) and memory-maps its columns (O(points in that
result)), so 1 stored result or 1000 must cost the same — the legacy
JSONL path pays a full ``json.loads`` of the payload per cold read
instead.

Three measurements, each format at each scale (1x / 100x / 1000x
results; engine caches cleared per query so every sample pays the true
cold-read cost):

* **Ingest throughput** — ``put_payload`` results/second (bulk mode,
  one index flush at the end).
* **Store-level p50 latency** — ``ResultStore.query_page`` over rotating
  keys (sorted, top-k, one page).
* **HTTP p50 latency** — the same query through a live ``/v1/query``
  (columnar only, 1x vs max scale) — the acceptance-criterion number.

Full-mode runs append a ``service_store`` record to ``BENCH_service.json``
(override with ``REPRO_BENCH_RECORD_SERVICE``) and assert the committed
bounds in ``benchmarks/baselines.json``: p50 ratio at 1000x within 2.0
(store-level and HTTP) and columnar at least 1.5x faster than JSONL at
scale.  Set ``REPRO_BENCH_FAST=1`` for a smoke-sized run (no gates).
"""

import asyncio
import copy
import json
import os
import platform
import statistics
import tempfile
import threading
import time
from datetime import datetime, timezone
from pathlib import Path

from conftest import emit, record_trend

from repro.core.design_space import SweepSpec
from repro.experiments import ExperimentSpec, run_experiment
from repro.experiments.persistence import result_to_dict
from repro.reporting import format_table
from repro.service import QuerySpec, ResultServer, ResultStore, ServiceClient

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"

BASELINES_PATH = Path(__file__).resolve().parent / "baselines.json"
DEFAULT_RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: Store sizes (number of distinct stored results) per measurement round.
SCALES = (1, 10, 20) if FAST else (1, 100, 1000)
#: Cold queries timed per (format, scale) cell.
QUERIES = 30 if FAST else 150
#: Distinct result keys rotated through while timing (defeats engine LRU).
ROTATION = 48

if FAST:
    BOUNDS = None
else:
    BOUNDS = json.loads(BASELINES_PATH.read_text())["service_store"]["metrics"]


def build_payloads(count: int) -> list:
    """``count`` distinct result payloads from ONE evaluated campaign.

    The campaign is evaluated once (a ~60-point grid); clones with a
    distinct spec name hash to distinct fingerprints and content keys,
    so store scaling is measured without re-running the search.
    """
    spec = ExperimentSpec(
        networks=("vgg16-d",),
        devices=("xc7vx485t",),
        sweeps=(
            SweepSpec(
                m_values=(2, 3, 4, 5),
                multiplier_budgets=(128, 256, 384, 512, 640),
                frequencies_mhz=(150.0, 200.0, 250.0),
            ),
        ),
        name="bench-store",
    )
    base = result_to_dict(run_experiment(spec, cache=False))
    payloads = []
    for index in range(count):
        payload = copy.deepcopy(base)
        payload["spec"]["name"] = f"bench-store-{index:06d}"
        payloads.append(payload)
    return payloads


def query_spec(key: str) -> QuerySpec:
    return QuerySpec(key=key, metric="throughput_gops", top_k=8, limit=8)


def measure_store_p50(store: ResultStore, keys: list) -> float:
    """p50 cold-read ``query_page`` latency in microseconds."""
    rotation = keys[:ROTATION] or keys
    samples = []
    for index in range(QUERIES):
        spec = query_spec(rotation[index % len(rotation)])
        store._engines.clear()  # every sample pays the cold-read cost
        started = time.perf_counter()
        page = store.query_page(spec)
        samples.append(time.perf_counter() - started)
        assert len(page.rows) == 8
    return statistics.median(samples) * 1e6


def measure_http_p50(client: ServiceClient, keys: list) -> float:
    """p50 ``POST /v1/query`` latency in microseconds over rotating keys."""
    rotation = keys[:ROTATION] or keys
    samples = []
    for index in range(QUERIES):
        body = query_spec(rotation[index % len(rotation)]).to_dict()
        started = time.perf_counter()
        page = client.query_page(**body)
        samples.append(time.perf_counter() - started)
        assert page["count"] == 8
    return statistics.median(samples) * 1e6


def fill(store: ResultStore, payloads: list) -> tuple:
    """Bulk-ingest payloads; returns (keys, results/second)."""
    started = time.perf_counter()
    keys = [store.put_payload(payload, flush_index=False) for payload in payloads]
    store.flush_index()
    return keys, len(payloads) / (time.perf_counter() - started)


def test_store_query_scaling(benchmark):
    payloads = build_payloads(SCALES[-1])
    points = len(payloads[0]["points"])

    p50 = {}       # (format, scale) -> µs
    ingest = {}    # format -> results/s at max scale
    http_p50 = {}  # scale -> µs, columnar only

    with tempfile.TemporaryDirectory(prefix="bench-store-") as tmp:
        for fmt in ("columnar", "jsonl"):
            store = ResultStore(Path(tmp) / fmt, format=fmt)
            keys = []
            filled = 0
            for scale in SCALES:
                new_keys, _ = fill(store, payloads[filled:scale])
                keys.extend(new_keys)
                filled = scale
                p50[(fmt, scale)] = measure_store_p50(store, keys)
            del store

        # Honest ingest number: a fresh store, one uninterrupted bulk load.
        for fmt in ("columnar", "jsonl"):
            store = ResultStore(Path(tmp) / f"{fmt}-ingest", format=fmt)
            _, ingest[fmt] = fill(store, payloads)
            del store

        # HTTP p50: the acceptance criterion — /v1/query latency at 1x vs
        # max scale against a live server on the columnar store.
        http_store = ResultStore(Path(tmp) / "http", format="columnar")
        loop = asyncio.new_event_loop()
        server = ResultServer(http_store, port=0, quiet=True)
        ready = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(loop)
            loop.run_until_complete(server.start())
            ready.set()
            loop.run_forever()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(10.0)
        try:
            client = ServiceClient(port=server.port)
            keys, _ = fill(http_store, payloads[:1])
            http_p50[1] = measure_http_p50(client, keys)
            more, _ = fill(http_store, payloads[1:])
            http_p50[SCALES[-1]] = measure_http_p50(client, keys + more)
        finally:
            asyncio.run_coroutine_threadsafe(server.close(), loop).result(10.0)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(10.0)

        # pytest-benchmark hook: one representative cold columnar query.
        bench_store = ResultStore(Path(tmp) / "columnar")
        bench_keys = bench_store.keys()

        def one_cold_query():
            bench_store._engines.clear()
            return bench_store.query_page(query_spec(bench_keys[0]))

        benchmark(one_cold_query)

    max_scale = SCALES[-1]
    ratio_store = p50[("columnar", max_scale)] / p50[("columnar", SCALES[0])]
    ratio_http = http_p50[max_scale] / http_p50[1]
    speedup = p50[("jsonl", max_scale)] / p50[("columnar", max_scale)]

    emit(
        f"Result-store query scaling — {points}-point results, "
        f"{QUERIES} cold queries per cell",
        format_table(
            [
                {
                    "results stored": scale,
                    "columnar p50 (µs)": p50[("columnar", scale)],
                    "jsonl p50 (µs)": p50[("jsonl", scale)],
                    "columnar/jsonl": p50[("jsonl", scale)] / p50[("columnar", scale)],
                }
                for scale in SCALES
            ],
            precision=1,
        )
        + f"\ningest: columnar {ingest['columnar']:.0f} results/s, "
        f"jsonl {ingest['jsonl']:.0f} results/s\n"
        f"p50 growth 1x -> {max_scale}x: store {ratio_store:.2f}x, "
        f"HTTP /v1/query {ratio_http:.2f}x "
        f"(HTTP p50 {http_p50[max_scale] / 1e3:.2f} ms at {max_scale}x)\n"
        f"columnar vs jsonl at {max_scale}x: {speedup:.2f}x faster",
    )

    if not FAST or os.environ.get("REPRO_BENCH_RECORD_SERVICE"):
        path = record_trend(
            {
                "benchmark": "service_store",
                "mode": "fast" if FAST else "full",
                "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
                "scales": list(SCALES),
                "points_per_result": points,
                "queries_per_cell": QUERIES,
                "columnar_p50_us": {str(s): round(p50[("columnar", s)], 1) for s in SCALES},
                "jsonl_p50_us": {str(s): round(p50[("jsonl", s)], 1) for s in SCALES},
                "http_p50_us_1x": round(http_p50[1], 1),
                "http_p50_us_max": round(http_p50[max_scale], 1),
                "ingest_columnar_rps": round(ingest["columnar"], 1),
                "ingest_jsonl_rps": round(ingest["jsonl"], 1),
                "query_p50_ratio_max_scale": round(ratio_store, 3),
                "http_p50_ratio_max_scale": round(ratio_http, 3),
                "columnar_vs_jsonl_p50_speedup": round(speedup, 3),
                "python": platform.python_version(),
                "platform": platform.platform(),
            },
            default_path=DEFAULT_RECORD_PATH,
            env_var="REPRO_BENCH_RECORD_SERVICE",
        )
        print(f"trend record appended to {path}")

    if BOUNDS is not None:
        assert ratio_store <= BOUNDS["query_p50_ratio_max_scale"]["max"], (
            f"store-level p50 grew {ratio_store:.2f}x from 1 to {max_scale} "
            f"results (bound {BOUNDS['query_p50_ratio_max_scale']['max']}x)"
        )
        assert ratio_http <= BOUNDS["http_p50_ratio_max_scale"]["max"], (
            f"/v1/query p50 grew {ratio_http:.2f}x from 1 to {max_scale} "
            f"results (bound {BOUNDS['http_p50_ratio_max_scale']['max']}x)"
        )
        assert speedup >= BOUNDS["columnar_vs_jsonl_p50_speedup"]["min"], (
            f"columnar only {speedup:.2f}x faster than JSONL at {max_scale}x "
            f"(bound {BOUNDS['columnar_vs_jsonl_p50_speedup']['min']}x)"
        )

"""Campaign engine benchmark — cached (+parallel) DSE vs the seed nested loop.

Runs the same 3-network x 2-device x (m, budget, frequency) campaign two
ways:

* the *seed loop*: the original scalar 4-deep nested loop, one
  ``evaluate_design`` call per configuration, recomputing the ``(m, r)``
  transform/complexity work for every budget x frequency combination;
* the *campaign engine*: ``repro.dse`` with a fresh
  :class:`~repro.dse.EvaluationCache` on the serial executor — the
  measured speedup is therefore pure memoisation, with no parallelism
  credit.

Asserts the engine returns exactly the seed loop's points at >= 3x the
speed, and (separately, with an explicit process executor) that the serial
and process-pool paths produce byte-identical design points.  Set
``REPRO_BENCH_FAST=1`` to shrink the grid for smoke runs; smoke mode skips
the wall-clock assertion.
"""

import os
import pickle
import time

from conftest import emit

from repro.core.design_point import evaluate_design
from repro.core.design_space import SweepSpec, frequency_range
from repro.hw.calibration import DEFAULT_CALIBRATION
from repro.dse import Campaign, EvaluationCache, ExecutorConfig, iter_explore
from repro.hw.device import get_device
from repro.nn import get_network
from repro.reporting import campaign_summary_table, format_table

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"

NETWORK_NAMES = ("vgg16-d", "alexnet", "resnet18")
DEVICE_NAMES = ("xc7vx485t", "xc7vx690t")

if FAST:
    SPEC = SweepSpec(
        m_values=(2, 3, 4),
        multiplier_budgets=(256, 512),
        frequencies_mhz=(200.0,),
    )
    # Smoke mode runs inside the default test suite, possibly on loaded CI
    # machines: execute both paths and check equivalence, but skip the
    # wall-clock ratio assertion (tiny grids amortise little anyway).
    MIN_SPEEDUP = None
else:
    SPEC = SweepSpec(
        m_values=(2, 3, 4, 5, 6),
        multiplier_budgets=(256, 512, 1024),
        frequencies_mhz=frequency_range(150.0, 250.0, 50.0),
    )
    MIN_SPEEDUP = 3.0


def _seed_nested_loop(networks, devices, spec):
    """The pre-``repro.dse`` exploration: uncached scalar nested loops."""
    points = []
    for network in networks:
        for device in devices:
            for m in spec.m_values:
                for budget in spec.multiplier_budgets:
                    for frequency in spec.frequencies_mhz:
                        for shared in spec.shared_data_transform:
                            try:
                                point = evaluate_design(
                                    network,
                                    m=m,
                                    r=spec.r,
                                    multiplier_budget=budget,
                                    frequency_mhz=frequency,
                                    shared_data_transform=shared,
                                    device=device,
                                    calibration=DEFAULT_CALIBRATION,
                                )
                            except ValueError:
                                continue
                            if not point.resources.fits(device):
                                continue
                            points.append(point)
    return points


def test_campaign_speedup_over_seed_loop(benchmark):
    networks = [get_network(name) for name in NETWORK_NAMES]
    devices = [get_device(name) for name in DEVICE_NAMES]

    started = time.perf_counter()
    seed_points = _seed_nested_loop(networks, devices, SPEC)
    seed_seconds = time.perf_counter() - started

    campaign = Campaign(networks=tuple(networks), devices=tuple(devices), sweeps=(SPEC,))
    cache = EvaluationCache()

    started = time.perf_counter()
    result = campaign.run(cache=cache)
    engine_seconds = time.perf_counter() - started
    speedup = seed_seconds / engine_seconds

    # Steady-state: re-running the campaign against the now-warm cache.
    warm_result = benchmark(lambda: campaign.run(cache=cache))

    emit(
        "DSE campaign engine vs seed nested loop "
        f"({len(networks)} networks x {len(devices)} devices, {campaign.grid_size} configs)",
        format_table(
            [
                {
                    "path": "seed nested loop",
                    "time_ms": seed_seconds * 1e3,
                    "points": len(seed_points),
                    "speedup": 1.0,
                },
                {
                    "path": "campaign engine (cold cache)",
                    "time_ms": engine_seconds * 1e3,
                    "points": result.feasible,
                    "speedup": speedup,
                },
                {
                    "path": "campaign engine (warm cache)",
                    "time_ms": warm_result.elapsed_seconds * 1e3,
                    "points": warm_result.feasible,
                    "speedup": seed_seconds / warm_result.elapsed_seconds,
                },
            ],
            precision=2,
        )
        + "\n\n"
        + campaign_summary_table(result),
    )

    assert result.points == seed_points, "campaign engine must reproduce the seed loop exactly"
    assert warm_result.points == seed_points
    if MIN_SPEEDUP is not None:
        assert speedup >= MIN_SPEEDUP, (
            f"campaign engine {engine_seconds * 1e3:.1f} ms vs seed "
            f"{seed_seconds * 1e3:.1f} ms — only {speedup:.2f}x (need >= {MIN_SPEEDUP}x)"
        )


def test_serial_and_parallel_paths_byte_identical():
    serial = list(
        iter_explore(
            NETWORK_NAMES,
            SPEC,
            devices=DEVICE_NAMES,
            cache=EvaluationCache(),
            executor=ExecutorConfig(mode="serial"),
        )
    )
    parallel = list(
        iter_explore(
            NETWORK_NAMES,
            SPEC,
            devices=DEVICE_NAMES,
            cache=EvaluationCache(),
            executor=ExecutorConfig(mode="process", max_workers=2),
        )
    )
    assert len(serial) == len(parallel)
    assert [pickle.dumps(a) for a in serial] == [pickle.dumps(b) for b in parallel]

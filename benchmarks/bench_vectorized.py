"""Vectorized batch engine benchmark — scalar vs NumPy cell evaluation.

Runs the paper's full Fig. 6-scale campaign — 3 networks x 2 devices x
(tile size ``m`` x multiplier budget x frequency) — through the same
``Campaign`` twice:

* the *scalar* path: ``ExecutorConfig(mode="serial")`` with a fresh
  :class:`~repro.dse.EvaluationCache` (memoised but cold, the strongest
  non-vectorized configuration);
* the *vectorized* path: ``ExecutorConfig(mode="vectorized")``, which
  evaluates each ``(network, device)`` cell as stacked NumPy array
  operations (:mod:`repro.dse.vectorized`).

Asserts the two paths return byte-identical design points, and (in full
mode) that the vectorized engine is at least ``MIN_SPEEDUP`` times faster.
Every full-mode run appends a machine-readable trend record to
``BENCH_dse.json`` at the repository root (override the path with
``REPRO_BENCH_RECORD``, or set it in fast mode to record smoke runs too);
``benchmarks/check_regression.py`` gates CI on the recorded speedup.

Set ``REPRO_BENCH_FAST=1`` to shrink the grid for smoke runs; smoke mode
skips the wall-clock assertion and (by default) the trend record.
"""

import json
import os
import pickle
import platform
import time
from datetime import datetime, timezone
from pathlib import Path

from conftest import emit, record_trend

from repro.core.design_space import SweepSpec, frequency_range
from repro.dse import Campaign, EvaluationCache, ExecutorConfig
from repro.reporting import format_table

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"

NETWORK_NAMES = ("vgg16-d", "alexnet", "resnet18")
DEVICE_NAMES = ("xc7vx485t", "xc7vx690t")

#: Single source of truth for the speedup floor — the same bounds
#: ``check_regression.py`` enforces against the recorded trend.
BASELINES_PATH = Path(__file__).resolve().parent / "baselines.json"

if FAST:
    SPEC = SweepSpec(
        m_values=(2, 3, 4),
        multiplier_budgets=(256, 512, None),
        frequencies_mhz=(150.0, 200.0),
    )
    MIN_SPEEDUP = None
else:
    # The Fig. 6 plane: every tile size the paper plots, a dense multiplier-
    # budget axis, the full frequency ladder, plus the whole-device budget.
    SPEC = SweepSpec(
        m_values=(2, 3, 4, 5, 6, 7),
        multiplier_budgets=tuple(range(100, 3001, 100)) + (None,),
        frequencies_mhz=frequency_range(100.0, 300.0, 50.0),
    )
    MIN_SPEEDUP = json.loads(BASELINES_PATH.read_text())["dse_vectorized"]["metrics"][
        "speedup"
    ]["min"]

#: Where the trend record lands (repo root) unless REPRO_BENCH_RECORD is set.
DEFAULT_RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_dse.json"


def _timed_runs(campaign, repeats, run_once):
    """Best-of-N wall clock plus the result of the last run."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = run_once(campaign)
        best = min(best, time.perf_counter() - started)
    return best, result


def test_vectorized_speedup_over_scalar(benchmark):
    campaign = Campaign(networks=NETWORK_NAMES, devices=DEVICE_NAMES, sweeps=(SPEC,))

    # Scalar reference: serial executor, memoised but cold cache per run.
    scalar_seconds, scalar_result = _timed_runs(
        campaign,
        repeats=1 if FAST else 2,
        run_once=lambda c: c.run(
            cache=EvaluationCache(), executor=ExecutorConfig(mode="serial")
        ),
    )

    vectorized = ExecutorConfig(mode="vectorized")
    vectorized_seconds, vectorized_result = _timed_runs(
        campaign,
        repeats=2 if FAST else 3,
        run_once=lambda c: c.run(cache=False, executor=vectorized),
    )
    benchmark(lambda: campaign.run(cache=False, executor=vectorized))

    speedup = scalar_seconds / vectorized_seconds
    grid = campaign.grid_size
    emit(
        "Vectorized batch engine vs scalar serial path "
        f"({len(NETWORK_NAMES)} networks x {len(DEVICE_NAMES)} devices, {grid} configs)",
        format_table(
            [
                {
                    "path": "scalar (serial, cold cache)",
                    "time_ms": scalar_seconds * 1e3,
                    "points": scalar_result.feasible,
                    "us_per_eval": scalar_seconds / grid * 1e6,
                    "speedup": 1.0,
                },
                {
                    "path": "vectorized (numpy batch)",
                    "time_ms": vectorized_seconds * 1e3,
                    "points": vectorized_result.feasible,
                    "us_per_eval": vectorized_seconds / grid * 1e6,
                    "speedup": speedup,
                },
            ],
            precision=2,
        ),
    )

    assert [pickle.dumps(point) for point in vectorized_result.points] == [
        pickle.dumps(point) for point in scalar_result.points
    ], "vectorized engine must reproduce the scalar path bit-for-bit"

    if not FAST or os.environ.get("REPRO_BENCH_RECORD"):
        path = record_trend(
            {
                "benchmark": "dse_vectorized",
                "mode": "fast" if FAST else "full",
                "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
                "networks": list(NETWORK_NAMES),
                "devices": list(DEVICE_NAMES),
                "grid": grid,
                "feasible_points": vectorized_result.feasible,
                "scalar_seconds": round(scalar_seconds, 6),
                "vectorized_seconds": round(vectorized_seconds, 6),
                "speedup": round(speedup, 2),
                "python": platform.python_version(),
                "platform": platform.platform(),
            },
            default_path=DEFAULT_RECORD_PATH,
            env_var="REPRO_BENCH_RECORD",
        )
        print(f"trend record appended to {path}")

    if MIN_SPEEDUP is not None:
        assert speedup >= MIN_SPEEDUP, (
            f"vectorized {vectorized_seconds * 1e3:.1f} ms vs scalar "
            f"{scalar_seconds * 1e3:.1f} ms — only {speedup:.2f}x "
            f"(need >= {MIN_SPEEDUP}x)"
        )


def test_vectorized_matches_serial_without_cache():
    """Equality must not depend on cache state: uncached serial vs batch."""
    spec = SweepSpec(
        m_values=(2, 4, 6),
        multiplier_budgets=(300, 900, None),
        frequencies_mhz=(100.0, 250.0),
        shared_data_transform=(True, False),
    )
    campaign = Campaign(networks=("vgg16-d", "alexnet"), devices=DEVICE_NAMES, sweeps=(spec,))
    serial = campaign.run(cache=False, executor=ExecutorConfig(mode="serial"))
    vectorized = campaign.run(cache=False, executor=ExecutorConfig(mode="vectorized"))
    assert [pickle.dumps(point) for point in serial.points] == [
        pickle.dumps(point) for point in vectorized.points
    ]

"""Accuracy-vs-bit-width DSE benchmark — the fixed-point backend as an axis.

Runs one campaign cell (vgg16-d on the xc7vx485t) across the full
``bit_widths`` ladder — the float32 reference datapath plus the 8/12/16-bit
fixed-point Winograd backends — and reports the accuracy/throughput
trade-off the quantized backend adds to the design space:

* per-bit-width error envelopes straight off the design points (these are
  the seeded calibration-table numbers, so they are deterministic);
* the three-objective Pareto front (throughput up, multipliers down,
  worst-case relative error down) that only exists because accuracy is a
  metric;
* the cost of the first, cold calibration sweep vs the memoised table a
  warm process reuses for every subsequent evaluation.

Two accuracy gates are enforced on every run (they are deterministic, so
fast mode checks them too), with the bounds sourced from
``benchmarks/baselines.json`` so ``check_regression.py`` enforces the same
numbers against the recorded trend:

* the float32 datapath stays within ``1e-5`` of direct convolution;
* the 16-bit anchor design F(2x2,3x3) stays under its error ceiling.

Every full-mode run appends a trend record to ``BENCH_dse.json`` at the
repository root (override with ``REPRO_BENCH_RECORD``, or set it in fast
mode to record smoke runs too).  Set ``REPRO_BENCH_FAST=1`` to shrink the
tile-size axis for smoke runs.
"""

import json
import os
import platform
import time
from datetime import datetime, timezone
from pathlib import Path

from conftest import emit, record_trend

from repro.core.design_space import SweepSpec
from repro.core.pareto import pareto_front
from repro.dse import Campaign, ExecutorConfig
from repro.reporting import format_table
from repro.winograd.quantized import calibrated_error, clear_calibration

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"

NETWORK = "vgg16-d"
DEVICE = "xc7vx485t"
BIT_WIDTHS = (None, 8, 12, 16)
M_VALUES = (2, 3, 4) if FAST else (2, 3, 4, 5, 6)

SPEC = SweepSpec(m_values=M_VALUES, bit_widths=BIT_WIDTHS)

OBJECTIVES = (
    ("throughput_gops", True),
    ("multipliers", False),
    ("max_rel_error", False),
)

#: Single source of truth for the error ceilings — the same bounds
#: ``check_regression.py`` enforces against the recorded trend.
BASELINES_PATH = Path(__file__).resolve().parent / "baselines.json"
_BASELINE_METRICS = json.loads(BASELINES_PATH.read_text())["dse_accuracy"]["metrics"]
FLOAT_ERROR_CEILING = _BASELINE_METRICS["float_max_rel_error"]["max"]
Q16_ANCHOR_CEILING = _BASELINE_METRICS["q16_anchor_max_rel_error"]["max"]

#: Where the trend record lands (repo root) unless REPRO_BENCH_RECORD is set.
DEFAULT_RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_dse.json"


def test_accuracy_axis_tradeoff(benchmark):
    campaign = Campaign(networks=(NETWORK,), devices=(DEVICE,), sweeps=(SPEC,))
    vectorized = ExecutorConfig(mode="vectorized")

    # Cold: the first sweep in a process pays for the calibration table.
    clear_calibration()
    started = time.perf_counter()
    result = campaign.run(cache=False, executor=vectorized)
    cold_seconds = time.perf_counter() - started

    # Warm: every later sweep reuses the memoised per-(m, r, bit_width)
    # error statistics, so the accuracy axis is almost free.
    warm_seconds = float("inf")
    for _ in range(2 if FAST else 3):
        started = time.perf_counter()
        result = campaign.run(cache=False, executor=vectorized)
        warm_seconds = min(warm_seconds, time.perf_counter() - started)
    benchmark(lambda: campaign.run(cache=False, executor=vectorized))

    by_width = {width: [] for width in BIT_WIDTHS}
    for point in result.points:
        by_width[point.bit_width].append(point)
    front = pareto_front(result.points, OBJECTIVES)
    front_ids = {id(point) for point in front}

    emit(
        f"Accuracy axis: {NETWORK} on {DEVICE}, m in {M_VALUES}, "
        f"bit widths {BIT_WIDTHS} ({len(result.points)} points)",
        format_table(
            [
                {
                    "backend": "float32" if width is None else f"Q{width}",
                    "points": len(points),
                    "best_max_rel": min(p.max_rel_error for p in points),
                    "worst_max_rel": max(p.max_rel_error for p in points),
                    "best_gops": max(p.throughput_gops for p in points),
                    "pareto": sum(1 for p in points if id(p) in front_ids),
                }
                for width, points in by_width.items()
                if points
            ],
            precision=6,
        ),
    )

    float_points = by_width[None]
    assert float_points, "the float32 reference datapath must survive the sweep"
    float_max_rel_error = max(point.max_rel_error for point in float_points)
    assert float_max_rel_error < FLOAT_ERROR_CEILING, (
        f"float32 Winograd drifted to {float_max_rel_error:.3g} relative error "
        f"vs direct convolution (ceiling {FLOAT_ERROR_CEILING:.3g})"
    )

    # The 16-bit anchor: the smallest tile at the widest width is the
    # quantized backend's accuracy flagship.  Its seeded calibration error
    # is the number the trend record tracks release over release.
    q16_anchor = calibrated_error(2, 3, 16)
    assert q16_anchor.max_rel < Q16_ANCHOR_CEILING, (
        f"F(2x2,3x3) at 16 bits measured {q16_anchor.max_rel:.3g} relative "
        f"error (ceiling {Q16_ANCHOR_CEILING:.3g})"
    )

    # Accuracy must genuinely shape the front.  The float32 anchor always
    # survives on the error axis.  Fixed-point designs share the float
    # datapath's throughput/resource numbers, so on the combined front they
    # are dominated by their float twins — the hardware trade-off lives on
    # the fixed-point ladder itself, where the front spans tile sizes
    # (throughput up, error up with m) instead of collapsing to one design.
    assert any(point.bit_width is None for point in front)
    quantized_front = pareto_front(
        [point for point in result.points if point.bit_width is not None],
        OBJECTIVES,
    )
    assert len({point.m for point in quantized_front}) > 1, (
        "the fixed-point front must trade throughput against accuracy "
        "across tile sizes"
    )

    if not FAST or os.environ.get("REPRO_BENCH_RECORD"):
        path = record_trend(
            {
                "benchmark": "dse_accuracy",
                "mode": "fast" if FAST else "full",
                "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
                "network": NETWORK,
                "device": DEVICE,
                "m_values": list(M_VALUES),
                "bit_widths": [w if w is None else int(w) for w in BIT_WIDTHS],
                "feasible_points": result.feasible,
                "cold_seconds": round(cold_seconds, 6),
                "warm_seconds": round(warm_seconds, 6),
                "calibration_overhead": round(cold_seconds / warm_seconds, 2),
                "float_max_rel_error": float_max_rel_error,
                "q16_anchor_max_rel_error": q16_anchor.max_rel,
                "q16_anchor_mean_rel_error": q16_anchor.mean_rel,
                "pareto_front_size": len(front),
                "quantized_front_size": len(quantized_front),
                "python": platform.python_version(),
                "platform": platform.platform(),
            },
            default_path=DEFAULT_RECORD_PATH,
            env_var="REPRO_BENCH_RECORD",
        )
        print(f"trend record appended to {path}")

"""Gate CI on the benchmark trend records in ``BENCH_*.json``.

Usage::

    python benchmarks/check_regression.py [BENCH_dse.json ...]
        [--baselines benchmarks/baselines.json]

For every benchmark named in the baselines file, the newest matching record
across the given trend files is compared against the committed bounds.  A
metric below its ``min`` or above its ``max`` fails the check (exit code 1)
so a real regression cannot merge.  A benchmark with *no* history at all —
a fresh clone, an expired CI artifact, a trend file that does not exist
yet — is not a regression: the check prints a clear ``no history — seeding
baseline`` note and exits 0, so the first run that records the benchmark
seeds the trend instead of failing the pipeline.  Bounds live in
``benchmarks/baselines.json``:

.. code-block:: json

    {
      "dse_vectorized": {
        "mode": "full",
        "metrics": {"speedup": {"min": 10.0}}
      }
    }

``mode`` restricts which records qualify (the fast smoke grid measures
nothing meaningful); each entry under ``metrics`` names a record field and
its inclusive bounds.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

RECORD_SCHEMA = "repro.bench/1"
DEFAULT_BASELINES = Path(__file__).resolve().parent / "baselines.json"
DEFAULT_TREND_FILES = (
    Path(__file__).resolve().parent.parent / "BENCH_dse.json",
    Path(__file__).resolve().parent.parent / "BENCH_service.json",
)


def load_records(paths) -> List[dict]:
    """All trend records of the given files, oldest first per file.

    A missing trend file contributes no records (fresh clone / expired CI
    artifact — the benchmarks it would gate report as unseeded, not as
    failures); a present-but-malformed file is still an error.
    """
    records: List[dict] = []
    for path in paths:
        path = Path(path)
        if not path.exists():
            print(f"note: trend file {path} does not exist yet (no history)")
            continue
        data = json.loads(path.read_text())
        if data.get("schema") != RECORD_SCHEMA:
            raise ValueError(f"{path}: unexpected schema {data.get('schema')!r}")
        file_records = data.get("records")
        if not isinstance(file_records, list):
            raise ValueError(f"{path}: 'records' must be a list")
        records.extend(file_records)
    return records


def newest_matching(records: List[dict], benchmark: str, mode: Optional[str]) -> Optional[dict]:
    """The last record for ``benchmark`` (restricted to ``mode`` when set)."""
    matching = [
        record
        for record in records
        if record.get("benchmark") == benchmark
        and (mode is None or record.get("mode") == mode)
    ]
    return matching[-1] if matching else None


def check(records: List[dict], baselines: Dict[str, dict]) -> Tuple[List[str], List[str]]:
    """Compare the newest records against the baselines.

    Returns ``(failures, unseeded)``: ``failures`` are real violations
    (metric out of bounds, malformed record) that must fail the check;
    ``unseeded`` names benchmarks with no history at all, which pass with
    a "seeding baseline" note so a fresh clone or a brand-new benchmark
    does not break the pipeline before its first recorded run.
    """
    failures: List[str] = []
    unseeded: List[str] = []
    for benchmark, baseline in baselines.items():
        mode = baseline.get("mode")
        record = newest_matching(records, benchmark, mode)
        if record is None:
            qualifier = f" with mode={mode!r}" if mode else ""
            unseeded.append(f"{benchmark}: no history{qualifier} — seeding baseline")
            continue
        for metric, bounds in baseline.get("metrics", {}).items():
            value = record.get(metric)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                failures.append(
                    f"{benchmark}: record has no numeric {metric!r} (got {value!r})"
                )
                continue
            minimum = bounds.get("min")
            maximum = bounds.get("max")
            if minimum is not None and value < minimum:
                failures.append(
                    f"{benchmark}: {metric} = {value} regressed below baseline "
                    f"minimum {minimum} (record of {record.get('timestamp')})"
                )
            if maximum is not None and value > maximum:
                failures.append(
                    f"{benchmark}: {metric} = {value} exceeds baseline "
                    f"maximum {maximum} (record of {record.get('timestamp')})"
                )
    return failures, unseeded


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "trend_files",
        nargs="*",
        default=[str(path) for path in DEFAULT_TREND_FILES],
        help="BENCH_*.json trend files (default: BENCH_dse.json at the repo root)",
    )
    parser.add_argument(
        "--baselines",
        default=str(DEFAULT_BASELINES),
        help="baseline bounds file (default: benchmarks/baselines.json)",
    )
    args = parser.parse_args(argv)

    baselines = json.loads(Path(args.baselines).read_text())
    records = load_records(args.trend_files)
    failures, unseeded = check(records, baselines)
    for note in unseeded:
        print(f"SEED  {note}")
    if failures:
        for failure in failures:
            print(f"FAIL  {failure}")
        return 1
    seeded_names = {note.split(":", 1)[0] for note in unseeded}
    for benchmark, baseline in baselines.items():
        if benchmark in seeded_names:
            continue
        record = newest_matching(records, benchmark, baseline.get("mode"))
        summary = ", ".join(
            f"{metric}={record.get(metric)}" for metric in baseline.get("metrics", {})
        )
        print(f"OK    {benchmark}: {summary} (record of {record.get('timestamp')})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 3 — percentage complexity variations with m (E3).

Regenerates the two series of Fig. 3: the percentage decrease in
multiplication complexity and the percentage increase in transform complexity
when stepping the output tile size from m-1 to m, and reproduces the paper's
qualitative conclusion (Section III-C) that the trade-off stops being
favourable beyond m = 4.
"""

import pytest

from conftest import emit
from repro.baselines import FIG3_PUBLISHED
from repro.core.complexity import complexity_breakdown
from repro.reporting import format_table

M_VALUES = (2, 3, 4, 5, 6, 7)


def _fig3_rows(network):
    breakdowns = {m: complexity_breakdown(network, m) for m in (1,) + M_VALUES}
    rows = []
    for m in M_VALUES:
        previous = breakdowns[m - 1]
        current = breakdowns[m]
        mult_decrease = 100.0 * (
            1 - current.winograd_multiplications / previous.winograd_multiplications
        )
        if m == 2:
            transform_increase = 0.0  # spatial convolution has no transforms
        else:
            transform_increase = 100.0 * (
                current.transform_ops / previous.transform_ops - 1
            )
        rows.append(
            {
                "m": m,
                "mult_decrease_%": mult_decrease,
                "paper_mult_decrease_%": FIG3_PUBLISHED[m]["mult_decrease_pct"],
                "transform_increase_%": transform_increase,
                "paper_transform_increase_%": FIG3_PUBLISHED[m]["transform_increase_pct"],
            }
        )
    return rows


def test_fig3_reproduction(vgg16, benchmark):
    rows = benchmark(_fig3_rows, vgg16)
    emit("Figure 3 — percentage variations of complexities with m", format_table(rows))

    by_m = {row["m"]: row for row in rows}
    # The multiplication-decrease series follows Eq. (4) exactly; the paper's
    # values match it for every step except the first (paper: 56.25%, Eq. (4):
    # 55.56%) — see EXPERIMENTS.md.
    for m in (3, 4, 5, 6, 7):
        assert by_m[m]["mult_decrease_%"] == pytest.approx(
            FIG3_PUBLISHED[m]["mult_decrease_pct"], abs=0.1
        )
    # Diminishing returns: each step's saving is smaller than the previous one.
    decreases = [by_m[m]["mult_decrease_%"] for m in M_VALUES]
    assert all(b < a for a, b in zip(decreases, decreases[1:]))


def test_fig3_knee_conclusion(vgg16, benchmark):
    """Section III-C's conclusion: from m >= 5 the transform-complexity growth
    outweighs the multiplication savings, so the paper implements m = 2, 3, 4."""
    rows = benchmark(_fig3_rows, vgg16)
    by_m = {row["m"]: row for row in rows}
    for m in (5, 6, 7):
        assert by_m[m]["transform_increase_%"] > by_m[m]["mult_decrease_%"]

"""Figure 1 — multiplication complexity vs. output tile size m (E1).

Regenerates the per-group multiplication counts of VGG16-D for spatial
convolution and F(m x m, 3 x 3), m = 2..7, i.e. the bars of Fig. 1, and checks
the published values for the bars the paper labels explicitly.
"""

import pytest

from conftest import emit
from repro.core.complexity import multiplication_complexity, spatial_multiplications
from repro.reporting import format_table

M_VALUES = (2, 3, 4, 5, 6, 7)

#: The Fig. 1 bar heights (in 1e9 multiplications) as printed in the paper.
PUBLISHED_FIG1 = {
    ("Conv1", 1): 1.936, ("Conv2", 1): 2.775, ("Conv3", 1): 4.624, ("Conv4", 1): 4.624, ("Conv5", 1): 1.387,
    ("Conv1", 2): 0.861, ("Conv2", 2): 1.233, ("Conv3", 2): 2.055, ("Conv4", 2): 2.055, ("Conv5", 2): 0.617,
    ("Conv1", 3): 0.598, ("Conv2", 3): 0.857, ("Conv3", 3): 1.428, ("Conv4", 3): 1.428, ("Conv5", 3): 0.429,
    ("Conv1", 4): 0.484, ("Conv2", 4): 0.694, ("Conv3", 4): 1.156, ("Conv4", 4): 1.156, ("Conv5", 4): 0.347,
    ("Conv1", 5): 0.422, ("Conv2", 5): 0.604, ("Conv3", 5): 1.007, ("Conv4", 5): 1.007, ("Conv5", 5): 0.302,
    ("Conv1", 6): 0.383, ("Conv2", 6): 0.549, ("Conv3", 6): 0.915, ("Conv4", 6): 0.915, ("Conv5", 6): 0.274,
    ("Conv1", 7): 0.356, ("Conv2", 7): 0.510, ("Conv3", 7): 0.849, ("Conv4", 7): 0.849, ("Conv5", 7): 0.255,
}


def _fig1_rows(network):
    rows = []
    for group, layers in network.conv_groups().items():
        row = {"group": group, "spatial_x1e9": spatial_multiplications(layers) / 1e9}
        for m in M_VALUES:
            row[f"F({m}x{m})_x1e9"] = multiplication_complexity(layers, m) / 1e9
        rows.append(row)
    return rows


def test_fig1_reproduction(vgg16, benchmark):
    rows = benchmark(_fig1_rows, vgg16)
    emit(
        "Figure 1 — multiplication complexity Om per VGG16-D conv group (x1e9)",
        format_table(rows, precision=3),
    )
    by_group = {row["group"]: row for row in rows}
    for (group, m), published in PUBLISHED_FIG1.items():
        column = "spatial_x1e9" if m == 1 else f"F({m}x{m})_x1e9"
        assert by_group[group][column] == pytest.approx(published, abs=0.002), (group, m)


def test_fig1_quadratic_decrease(vgg16, benchmark):
    """The headline trend: Om decreases as (m+r-1)^2 / m^2 relative to spatial."""

    def ratios():
        spatial = spatial_multiplications(vgg16)
        return [multiplication_complexity(vgg16, m) / spatial for m in M_VALUES]

    measured = benchmark(ratios)
    expected = [((m + 2) ** 2) / (9 * m * m) for m in M_VALUES]
    for measured_ratio, expected_ratio in zip(measured, expected):
        assert measured_ratio == pytest.approx(expected_ratio, rel=1e-9)

"""E7 (extension) — cycle-level simulator validation of Eq. (9).

The Table II latencies are produced by the analytical model of Eq. (9); this
benchmark runs the behavioural engine simulator on down-scaled layers for the
three proposed configurations and shows that (a) the simulated outputs equal
direct convolution and (b) the simulated cycle counts equal the analytical
prediction, which is what justifies using Eq. (9) for the full-size VGG16-D
numbers.
"""

import pytest

from conftest import emit
from repro.nn import ConvLayer
from repro.reporting import format_table
from repro.sim import EngineSimConfig, validate_layer

LAYERS = [
    ConvLayer("vgg_like_28x28", in_channels=8, out_channels=12, height=28, width=28, padding=1),
    ConvLayer("edge_tiles_19x23", in_channels=5, out_channels=7, height=19, width=23, padding=1),
    ConvLayer("deep_channels_10x10", in_channels=24, out_channels=6, height=10, width=10, padding=1),
]


def _validate_all(m, parallel_pes):
    config = EngineSimConfig(m=m, r=3, parallel_pes=parallel_pes)
    return [validate_layer(layer, config, seed=7) for layer in LAYERS]


@pytest.mark.parametrize("m,parallel_pes", [(2, 6), (3, 4), (4, 3)])
def test_simulator_validates_eq9(m, parallel_pes, benchmark):
    validations = benchmark(_validate_all, m, parallel_pes)
    rows = [
        {
            "layer": validation.layer_name,
            "m": m,
            "PEs": parallel_pes,
            "sim_cycles": validation.simulated_cycles,
            "eq9_cycles": validation.analytical_cycles,
            "cycle_err_%": validation.cycle_error_pct,
            "max_abs_err": validation.max_abs_error,
        }
        for validation in validations
    ]
    emit(f"E7 — simulator vs Eq. (9), F({m}x{m},3x3), {parallel_pes} PEs", format_table(rows, precision=3))
    for validation in validations:
        assert validation.numerically_correct
        assert validation.simulated_cycles == validation.analytical_cycles


def test_simulator_throughput_scales_with_pes(benchmark):
    """Doubling the PE count halves the simulated runtime (until K < P)."""
    layer = ConvLayer("scaling", in_channels=4, out_channels=16, height=16, width=16, padding=1)

    def cycles():
        few = validate_layer(layer, EngineSimConfig(m=2, parallel_pes=2), functional=False)
        many = validate_layer(layer, EngineSimConfig(m=2, parallel_pes=4), functional=False)
        return few.simulated_cycles, many.simulated_cycles

    few_cycles, many_cycles = benchmark(cycles)
    emit(
        "E7 — PE scaling",
        f"2 PEs: {few_cycles} cycles, 4 PEs: {many_cycles} cycles, speedup {few_cycles / many_cycles:.2f}x",
    )
    assert few_cycles / many_cycles == pytest.approx(2.0, rel=0.05)

"""Table II — performance comparison for VGG16-D (E6).

Regenerates every column of Table II: per-group latency, overall latency,
throughput, multiplier efficiency, power and power efficiency for Qiu et
al. [12], Podili et al. [3] (original and multiplier-normalised) and the three
proposed designs, printing modelled vs. published values.
"""

import pytest

from conftest import emit
from repro.baselines import TABLE2_PUBLISHED
from repro.core.comparison import headline_claims, performance_table
from repro.reporting import format_table

NAME_MAP = {
    "qiu-fpga16": "qiu_fpga16",
    "podili-asap17": "podili_asap17",
    "podili-normalized": "podili_normalized",
    "proposed-m2": "proposed_m2",
    "proposed-m3": "proposed_m3",
    "proposed-m4": "proposed_m4",
}


def _table2_rows(network):
    rows = []
    for point in performance_table(network):
        published = TABLE2_PUBLISHED[NAME_MAP[point.name]]
        row = {
            "design": point.name,
            "mult": point.multipliers,
            "PEs": point.parallel_pes,
        }
        for index in range(1, 6):
            row[f"conv{index}_ms"] = point.group_latency_ms.get(f"Conv{index}", float("nan"))
        row.update(
            {
                "latency_ms": point.total_latency_ms,
                "latency_paper": published["overall_latency_ms"],
                "GOPS": point.throughput_gops,
                "GOPS_paper": published["throughput_gops"],
                "GOPS/mult": point.multiplier_efficiency,
                "power_W": point.power_watts,
                "power_paper": published["power_w"],
                "GOPS/W": point.power_efficiency,
                "GOPS/W_paper": published["power_efficiency"],
            }
        )
        rows.append(row)
    return rows


def test_table2_reproduction(vgg16, benchmark):
    rows = benchmark(_table2_rows, vgg16)
    emit("Table II — performance comparison for VGG16-D", format_table(rows, precision=2))

    for row in rows:
        published = TABLE2_PUBLISHED[NAME_MAP[row["design"]]]
        # Latency / throughput / multiplier efficiency reproduce the paper
        # exactly (they all derive from Eqs. (8)-(10)).
        assert row["latency_ms"] == pytest.approx(published["overall_latency_ms"], rel=0.005)
        assert row["GOPS"] == pytest.approx(published["throughput_gops"], rel=0.005)
        assert row["GOPS/mult"] == pytest.approx(published["multiplier_efficiency"], abs=0.02)
        # Power comes from the calibrated analytical model: right regime only.
        assert published["power_w"] / 2 < row["power_W"] < published["power_w"] * 2


def test_table2_headline_improvements(vgg16, benchmark):
    """The abstract's claims: 4.75x throughput, 2.67x multipliers, 1.44x power
    efficiency, 53.6% logic savings, 1.60 GOPS/s/multiplier."""
    claims = benchmark(headline_claims, vgg16)
    emit(
        "Table II — headline improvement factors",
        "\n".join(
            [
                f"throughput improvement (m=4 vs [3])   : {claims.throughput_improvement:.2f}x (paper 4.75x)",
                f"multiplier ratio (m=4 vs [3])         : {claims.multiplier_ratio:.2f}x (paper 2.67x)",
                f"power-efficiency improvement (m=2)    : {claims.power_efficiency_improvement_m2:.2f}x (paper 1.44x)",
                f"LUT savings (m=4, 19 PEs)             : {claims.lut_savings_pct:.1f}% (paper 53.6%)",
                f"best multiplier efficiency            : {claims.multiplier_efficiency_best:.2f} GOPS/mult (paper 1.60)",
            ]
        ),
    )
    assert claims.throughput_improvement == pytest.approx(4.75, abs=0.01)
    assert claims.multiplier_ratio == pytest.approx(2.67, abs=0.01)
    assert claims.multiplier_efficiency_best == pytest.approx(1.60, abs=0.01)
    assert claims.power_efficiency_improvement_m2 > 1.2
    assert claims.lut_savings_pct > 40.0


def test_table2_winner_ordering(vgg16, benchmark):
    """Who wins: the proposed m=4 design must dominate every baseline on
    throughput and multiplier efficiency, and the proposed m=2 design must beat
    the multiplier-normalised [3] on power efficiency at equal throughput."""
    points = benchmark(performance_table, vgg16)
    by_name = {point.name: point for point in points}
    best = by_name["proposed-m4"]
    for name, point in by_name.items():
        if name == "proposed-m4":
            continue
        assert best.throughput_gops > point.throughput_gops, name
        assert best.multiplier_efficiency >= point.multiplier_efficiency - 1e-9, name
    m2 = by_name["proposed-m2"]
    normalized = by_name["podili-normalized"]
    assert m2.throughput_gops == pytest.approx(normalized.throughput_gops, rel=1e-6)
    assert m2.power_efficiency > normalized.power_efficiency

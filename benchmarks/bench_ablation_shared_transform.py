"""E9 (ablation) — shared vs. per-PE data transform.

The paper's first contribution is hoisting the data-transform stage out of the
PEs (Section IV-E).  This ablation sweeps m and the PE count and quantifies
what that single architectural change buys: LUT/register savings and the
resulting power-efficiency improvement, at identical throughput.
"""

import pytest

from conftest import emit
from repro.core.design_point import evaluate_design
from repro.reporting import format_table


def _ablation_rows(network):
    rows = []
    for m, pes in ((2, 16), (2, 43), (3, 28), (4, 19)):
        shared = evaluate_design(
            network, m=m, parallel_pes=pes, shared_data_transform=True, include_pipeline_depth=False
        )
        replicated = evaluate_design(
            network, m=m, parallel_pes=pes, shared_data_transform=False, include_pipeline_depth=False
        )
        rows.append(
            {
                "m": m,
                "PEs": pes,
                "shared_LUTs": shared.resources.luts,
                "replicated_LUTs": replicated.resources.luts,
                "LUT_saving_%": 100.0 * (1 - shared.resources.luts / replicated.resources.luts),
                "shared_GOPS/W": shared.power_efficiency,
                "replicated_GOPS/W": replicated.power_efficiency,
                "power_eff_gain_x": shared.power_efficiency / replicated.power_efficiency,
                "throughput_ratio": shared.throughput_gops / replicated.throughput_gops,
            }
        )
    return rows


def test_shared_transform_ablation(vgg16, benchmark):
    rows = benchmark(_ablation_rows, vgg16)
    emit("E9 — ablation: shared vs per-PE data transform", format_table(rows))

    for row in rows:
        # Same algorithm, same PE count: throughput is untouched (the data
        # transform is not the bottleneck stage), resources and power improve.
        assert row["throughput_ratio"] == pytest.approx(1.0, rel=1e-6)
        assert row["LUT_saving_%"] > 15.0
        assert row["power_eff_gain_x"] > 1.05

    # The savings grow with the PE count (the transform is amortised over P)
    # and with m (larger tiles have more expensive transforms).
    by_key = {(row["m"], row["PEs"]): row for row in rows}
    assert by_key[(2, 43)]["LUT_saving_%"] > by_key[(2, 16)]["LUT_saving_%"] - 1.0
    assert by_key[(4, 19)]["LUT_saving_%"] > by_key[(2, 16)]["LUT_saving_%"]


def test_shared_transform_relative_overhead(vgg16, benchmark):
    """Section IV-C's 1.5x vs 2.33x transform-overhead comparison for
    F(2x2, 3x3) with 16 PEs."""
    from repro.core.complexity import (
        implementation_transform_complexity,
        spatial_multiplications,
    )
    from repro.winograd.op_count import count_transform_ops

    def ratios():
        counts = count_transform_ops(2, 3)
        spatial = spatial_multiplications(vgg16)
        shared = implementation_transform_complexity(vgg16, 2, parallel_pes=16) / spatial
        per_pe = (vgg16.total_conv_nhwck / 4 * (counts.beta + counts.delta)) / spatial
        return shared, per_pe

    shared_ratio, per_pe_ratio = benchmark(ratios)
    emit(
        "E9 — relative transform overhead vs spatial multiplications (m=2, 16 PEs)",
        f"shared data transform: {shared_ratio:.2f}x (paper 1.5x)\n"
        f"per-PE data transform: {per_pe_ratio:.2f}x (paper 2.33x)",
    )
    assert shared_ratio < per_pe_ratio
    assert per_pe_ratio / shared_ratio > 1.3

"""E10 (ablation) — interpolation-point choice: op count vs numerical accuracy.

The transform matrices of F(m, r) depend on the chosen interpolation points.
This ablation compares the canonical point sequence against integer-only and
dyadic-interval ("chebyshev-like") alternatives on two axes the paper's design
space cares about implicitly: the transform operator counts (hardware cost of
the transform stages) and the single-precision numerical error (which bounds
how far m can be pushed before accuracy degrades).
"""

import numpy as np

from conftest import emit
from repro.reporting import format_table
from repro.winograd.numerical import tile_error
from repro.winograd.op_count import count_transform_ops_for
from repro.winograd.points import POINT_STRATEGIES
from repro.winograd.toom_cook import generate_transform

M_VALUES = (2, 3, 4, 5, 6)


def _ablation_rows():
    rows = []
    for m in M_VALUES:
        for strategy_name, strategy in POINT_STRATEGIES.items():
            points = strategy(m + 3 - 2)
            transform = generate_transform(m, 3, points=points, label=strategy_name)
            counts = count_transform_ops_for(transform)
            error = tile_error(m, 3, dtype=np.float32, trials=16, transform=transform)
            rows.append(
                {
                    "m": m,
                    "points": strategy_name,
                    "beta": counts.beta,
                    "gamma": counts.gamma,
                    "delta": counts.delta,
                    "transform_flops": counts.transform_flops,
                    "fp32_max_rel_err": error.max_rel,
                }
            )
    return rows


def test_point_strategy_ablation(benchmark):
    rows = benchmark(_ablation_rows)
    emit("E10 — interpolation-point ablation (op counts and fp32 error)", format_table(rows, precision=6))

    # Every strategy produces a correct algorithm (verified at generation);
    # fp32 error stays within single-precision-usable bounds for the m range
    # the paper implements (m <= 4).
    for row in rows:
        if row["m"] <= 4:
            assert row["fp32_max_rel_err"] < 1e-3, row

    # Numerical error grows with m for every strategy (the reason the paper's
    # design space effectively stops at moderate tile sizes).
    for strategy_name in POINT_STRATEGIES:
        errors = [row["fp32_max_rel_err"] for row in rows if row["points"] == strategy_name]
        assert errors[-1] > errors[0]

    # The canonical sequence is never the worst choice in transform FLOPs for
    # the configurations the paper implements.
    for m in (2, 3, 4):
        flops = {row["points"]: row["transform_flops"] for row in rows if row["m"] == m}
        assert flops["canonical"] <= max(flops.values())


def test_canonical_vs_generated_matrices(benchmark):
    """Published (Lavin) matrices vs generated ones: same multiplication count,
    comparable transform cost, both numerically sound in fp32."""
    from repro.winograd.matrices import get_transform

    def compare():
        results = []
        for m in (2, 4, 6):
            canonical = get_transform(m, 3, prefer_canonical=True)
            generated = get_transform(m, 3, prefer_canonical=False)
            results.append(
                {
                    "m": m,
                    "canonical_flops": count_transform_ops_for(canonical).transform_flops,
                    "generated_flops": count_transform_ops_for(generated).transform_flops,
                    "canonical_err": tile_error(m, 3, trials=8, transform=canonical).max_rel,
                    "generated_err": tile_error(m, 3, trials=8, transform=generated).max_rel,
                }
            )
        return results

    rows = benchmark(compare)
    emit("E10 — canonical (Lavin) vs generated transform matrices", format_table(rows, precision=8))
    for row in rows:
        assert row["canonical_err"] < 1e-3
        assert row["generated_err"] < 1e-2

"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark module regenerates one of the paper's tables or figures: it
computes the same rows/series the paper reports, prints them next to the
published values (so ``pytest benchmarks/ --benchmark-only -s`` doubles as a
reproduction report) and uses ``pytest-benchmark`` to time the underlying
model evaluation.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.nn import vgg16_d

#: Versioned schema tag shared by every BENCH_*.json trend file (what
#: ``benchmarks/check_regression.py`` validates on load).
RECORD_SCHEMA = "repro.bench/1"


def record_trend(record: dict, default_path: Path, env_var: str) -> Path:
    """Append ``record`` to a BENCH_*.json trend file; returns the path.

    ``env_var`` names the environment variable that overrides
    ``default_path`` (so CI and local runs can redirect records).
    """
    path = Path(os.environ.get(env_var) or default_path)
    if path.exists():
        data = json.loads(path.read_text())
        if data.get("schema") != RECORD_SCHEMA:
            raise ValueError(f"unexpected bench schema in {path}: {data.get('schema')!r}")
    else:
        data = {"schema": RECORD_SCHEMA, "records": []}
    data["records"].append(record)
    path.write_text(json.dumps(data, indent=2) + "\n")
    return path


def pytest_configure(config):
    # Benchmarks double as reproduction reports; always echo their tables.
    config.option.capture = "no"


@pytest.fixture(scope="session")
def vgg16():
    """The paper's workload (VGG16-D), shared across benchmark modules."""
    return vgg16_d()


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(2019)


def emit(title: str, body: str) -> None:
    """Print a clearly delimited report block."""
    separator = "=" * max(len(title), 20)
    print(f"\n{separator}\n{title}\n{separator}\n{body}\n")

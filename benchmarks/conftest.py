"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark module regenerates one of the paper's tables or figures: it
computes the same rows/series the paper reports, prints them next to the
published values (so ``pytest benchmarks/ --benchmark-only -s`` doubles as a
reproduction report) and uses ``pytest-benchmark`` to time the underlying
model evaluation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import vgg16_d


def pytest_configure(config):
    # Benchmarks double as reproduction reports; always echo their tables.
    config.option.capture = "no"


@pytest.fixture(scope="session")
def vgg16():
    """The paper's workload (VGG16-D), shared across benchmark modules."""
    return vgg16_d()


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(2019)


def emit(title: str, body: str) -> None:
    """Print a clearly delimited report block."""
    separator = "=" * max(len(title), 20)
    print(f"\n{separator}\n{title}\n{separator}\n{body}\n")

"""Service load benchmark — sustained mixed traffic against a live server.

Every other service benchmark isolates one path.  This one does what a
real deployment does: four traffic classes hammering one
:class:`~repro.service.ResultServer` at the same time, over real HTTP —

* **evaluate** — single-point ``POST /v1/evaluate`` requests through the
  micro-batcher (a rotating plane of feasible configurations);
* **query** — paginated ``POST /v1/query`` top-k reads against a stored
  campaign result;
* **submit** — ``POST /v1/jobs`` submissions of distinct single-entry
  campaigns (the server runs ``workers=0``, so shards queue for the
  lease protocol instead of executing locally);
* **lease** — fleet churn: ``POST /v1/leases`` acquires against the
  queue the submit class feeds, each granted lease heartbeated once and
  then failed back (requeue until the attempt cap retires the shard) —
  the grant/heartbeat/fail cycle a flapping worker generates.

Each class records per-request wall latency; the report prints p50/p99
and sustained request rate per class, plus the overall error rate (any
non-2xx or transport error).  At the end the benchmark scrapes
``GET /metrics`` and asserts the scrape reflects the traffic it just
generated — the observability layer is part of the contract under load.

Every full-mode run appends a ``service_load`` trend record to
``BENCH_service.json`` (override with ``REPRO_BENCH_RECORD_LOAD``; set
it in fast mode to record smoke runs too);
``benchmarks/check_regression.py`` gates CI on the recorded evaluate
p99 and error rate.  Set ``REPRO_BENCH_FAST=1`` to shrink the run.
"""

import asyncio
import json
import os
import platform
import statistics
import threading
import time
from datetime import datetime, timezone
from pathlib import Path

from conftest import emit, record_trend

from repro.core.design_space import SweepSpec
from repro.experiments import ExperimentSpec, run_experiment
from repro.experiments.persistence import result_to_dict
from repro.reporting import format_table
from repro.service import ResultServer, ResultStore, ServiceClient, ServiceError

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"

#: Where the trend record lands unless REPRO_BENCH_RECORD_LOAD is set.
DEFAULT_RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"
BASELINES_PATH = Path(__file__).resolve().parent / "baselines.json"

if FAST:
    DURATION_S = 2.0
    THREADS_PER_CLASS = 1
    BOUNDS = None
else:
    DURATION_S = 8.0
    THREADS_PER_CLASS = 2
    BOUNDS = json.loads(BASELINES_PATH.read_text())["service_load"]["metrics"]

#: Rotating evaluate plane — all feasible on the paper's device.
EVAL_PLANE = [
    {"network": "alexnet", "device": "xc7vx485t", "m": m, "multiplier_budget": b}
    for m in (2, 3, 4)
    for b in (256, 512)
]

#: Metric families the end-of-run scrape must show as exercised.
EXPECTED_FAMILIES = (
    "repro_http_requests_total",
    "repro_http_request_seconds",
    "repro_batcher_requests_total",
    "repro_jobs_queue_depth",
    "repro_fleet_leases",
)


def seed_payload() -> dict:
    """One evaluated campaign payload for the query traffic to read."""
    spec = ExperimentSpec(
        networks=("vgg16-d",),
        devices=("xc7vx485t",),
        sweeps=(
            SweepSpec(
                m_values=(2, 3, 4),
                multiplier_budgets=(256, 512),
                frequencies_mhz=(150.0, 200.0),
            ),
        ),
        name="bench-load-seed",
    )
    return result_to_dict(run_experiment(spec, cache=False))


def submit_spec(index: int) -> ExperimentSpec:
    """A distinct single-entry campaign (unique name => unique fingerprint)."""
    return ExperimentSpec(
        networks=("alexnet",),
        devices=("xc7vx485t",),
        sweeps=(
            SweepSpec(
                m_values=(2,), multiplier_budgets=(256,), frequencies_mhz=(200.0,)
            ),
        ),
        name=f"bench-load-{index:06d}",
    )


class TrafficClass:
    """Latency samples and error count for one traffic class."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.latencies = []
        self.errors = 0
        self._lock = threading.Lock()

    def timed(self, call) -> object:
        """Run ``call``, recording wall latency or an error; never raises."""
        started = time.perf_counter()
        try:
            result = call()
        except (ServiceError, OSError):
            with self._lock:
                self.errors += 1
            return None
        elapsed = time.perf_counter() - started
        with self._lock:
            self.latencies.append(elapsed)
        return result

    def percentile_ms(self, fraction: float) -> float:
        ordered = sorted(self.latencies)
        if not ordered:
            return float("nan")
        return ordered[min(len(ordered) - 1, int(len(ordered) * fraction))] * 1e3

    def p50_ms(self) -> float:
        return statistics.median(self.latencies) * 1e3 if self.latencies else float("nan")


def drive_evaluate(client: ServiceClient, stats: TrafficClass, deadline: float) -> None:
    index = 0
    while time.perf_counter() < deadline:
        request = EVAL_PLANE[index % len(EVAL_PLANE)]
        index += 1
        answer = stats.timed(lambda: client.evaluate_raw(**request))
        if answer is not None:
            assert answer["feasible"], answer


def drive_query(
    client: ServiceClient, stats: TrafficClass, deadline: float, key: str
) -> None:
    while time.perf_counter() < deadline:
        page = stats.timed(
            lambda: client.query_page(
                key=key, metric="throughput_gops", top_k=8, limit=8
            )
        )
        if page is not None:
            assert page["count"] == 8, page


def drive_submit(
    client: ServiceClient, stats: TrafficClass, deadline: float, offset: int
) -> None:
    index = offset
    while time.perf_counter() < deadline:
        spec = submit_spec(index)
        index += 10_000  # keep per-thread name ranges disjoint
        job = stats.timed(lambda: client.submit_job(spec))
        if job is not None:
            assert job["state"] in ("queued", "running"), job
        time.sleep(0.005)  # pace submissions: jobs outlive the run


def drive_lease(
    client: ServiceClient, stats: TrafficClass, deadline: float, worker: str
) -> None:
    while time.perf_counter() < deadline:
        grant = stats.timed(lambda: client.acquire_leases(worker, count=1))
        leases = grant["leases"] if grant else []
        if not leases:
            time.sleep(0.01)  # queue momentarily empty; let submits catch up
            continue
        lease_id = leases[0]["id"]
        stats.timed(lambda: client.heartbeat_lease(lease_id))
        stats.timed(
            lambda: client.fail_lease(lease_id, "bench-load churn", requeue=True)
        )


def start_server(store_root: str):
    """A fleet-only server on a background loop; returns (server, stop)."""
    store = ResultStore(store_root)
    loop = asyncio.new_event_loop()
    server = ResultServer(store, port=0, workers=0, lease_ttl_s=30.0, quiet=True)
    started = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10.0)

    def stop() -> None:
        asyncio.run_coroutine_threadsafe(server.close(), loop).result(30.0)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10.0)

    return server, stop


def test_sustained_mixed_load(tmp_path):
    payload = seed_payload()
    server, stop = start_server(str(tmp_path / "store"))
    try:
        key = server.store.put_payload(payload)
        client = ServiceClient(port=server.port)

        classes = {
            name: TrafficClass(name)
            for name in ("evaluate", "query", "submit", "lease")
        }
        deadline = time.perf_counter() + DURATION_S
        threads = []
        for slot in range(THREADS_PER_CLASS):
            threads.extend(
                [
                    threading.Thread(
                        target=drive_evaluate,
                        args=(ServiceClient(port=server.port), classes["evaluate"], deadline),
                    ),
                    threading.Thread(
                        target=drive_query,
                        args=(ServiceClient(port=server.port), classes["query"], deadline, key),
                    ),
                    threading.Thread(
                        target=drive_submit,
                        args=(ServiceClient(port=server.port), classes["submit"], deadline, slot),
                    ),
                    threading.Thread(
                        target=drive_lease,
                        args=(
                            ServiceClient(port=server.port),
                            classes["lease"],
                            deadline,
                            f"bench-load-w{slot}",
                        ),
                    ),
                ]
            )
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=DURATION_S + 60.0)
            assert not thread.is_alive(), "traffic thread wedged past the deadline"
        wall = time.perf_counter() - started

        # The observability layer must reflect the traffic it just carried.
        scrape = client.metrics_text()
        for family in EXPECTED_FAMILIES:
            assert f"# TYPE {family.removesuffix('_bucket')}" in scrape, family
        assert 'route="/v1/evaluate"' in scrape
        assert 'repro_fleet_leases{event="granted"}' in scrape
    finally:
        stop()

    total_requests = sum(len(c.latencies) for c in classes.values())
    total_errors = sum(c.errors for c in classes.values())
    error_rate = total_errors / max(1, total_requests + total_errors)
    for stats in classes.values():
        assert stats.latencies, f"{stats.name} traffic never completed a request"

    emit(
        f"Sustained mixed service load ({DURATION_S:.0f}s, "
        f"{THREADS_PER_CLASS} thread(s) per class, {total_requests} requests, "
        f"{total_errors} errors)",
        format_table(
            [
                {
                    "class": stats.name,
                    "requests": len(stats.latencies),
                    "rps": len(stats.latencies) / wall,
                    "p50_ms": stats.p50_ms(),
                    "p99_ms": stats.percentile_ms(0.99),
                }
                for stats in classes.values()
            ],
            precision=2,
        )
        + f"\noverall {total_requests / wall:.0f} req/s  "
        f"error rate {error_rate:.4f}",
    )

    if not FAST or os.environ.get("REPRO_BENCH_RECORD_LOAD"):
        record = {
            "benchmark": "service_load",
            "mode": "fast" if FAST else "full",
            "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "duration_seconds": DURATION_S,
            "threads_per_class": THREADS_PER_CLASS,
            "total_requests": total_requests,
            "total_errors": total_errors,
            "error_rate": round(error_rate, 6),
            "throughput_rps": round(total_requests / wall, 1),
            "python": platform.python_version(),
            "platform": platform.platform(),
        }
        for stats in classes.values():
            record[f"{stats.name}_requests"] = len(stats.latencies)
            record[f"{stats.name}_rps"] = round(len(stats.latencies) / wall, 1)
            record[f"{stats.name}_p50_ms"] = round(stats.p50_ms(), 3)
            record[f"{stats.name}_p99_ms"] = round(stats.percentile_ms(0.99), 3)
        path = record_trend(
            record,
            default_path=DEFAULT_RECORD_PATH,
            env_var="REPRO_BENCH_RECORD_LOAD",
        )
        print(f"trend record appended to {path}")

    if BOUNDS is not None:
        p99_cap = BOUNDS["evaluate_p99_ms"]["max"]
        p99 = classes["evaluate"].percentile_ms(0.99)
        assert p99 <= p99_cap, (
            f"evaluate p99 {p99:.1f} ms over the {p99_cap} ms baseline cap"
        )
        rate_cap = BOUNDS["error_rate"]["max"]
        assert error_rate <= rate_cap, (
            f"error rate {error_rate:.4f} over the {rate_cap} baseline cap"
        )

"""Figure 6 — throughput vs. m and multiplier budget (E4).

Regenerates the nine-point-per-budget throughput sweep of Fig. 6 (spatial plus
F(m x m, 3 x 3) for m = 2..7 at 256, 512 and 1024 multipliers, 200 MHz) and
checks every published bar.
"""

import pytest

from conftest import emit
from repro.baselines import FIG6_PUBLISHED_GOPS
from repro.core.throughput import ideal_throughput_gops
from repro.reporting import format_table

BUDGETS = (256, 512, 1024)
METHODS = ("spatial", 2, 3, 4, 5, 6, 7)


def _fig6_rows():
    rows = []
    for method in METHODS:
        row = {"method": "Spatial Conv" if method == "spatial" else f"F({method}x{method},3x3)"}
        for budget in BUDGETS:
            if method == "spatial":
                value = ideal_throughput_gops(1, 3, budget, fractional_pes=False)
            else:
                value = ideal_throughput_gops(method, 3, budget, fractional_pes=True)
            row[f"{budget}_mult_GOPS"] = value
            row[f"{budget}_paper"] = FIG6_PUBLISHED_GOPS[(method, budget)]
        rows.append(row)
    return rows


def test_fig6_reproduction(benchmark):
    rows = benchmark(_fig6_rows)
    emit("Figure 6 — throughput variation with m and number of multipliers (200 MHz)", format_table(rows, precision=2))
    for row, method in zip(rows, METHODS):
        for budget in BUDGETS:
            measured = row[f"{budget}_mult_GOPS"]
            published = row[f"{budget}_paper"]
            tolerance = 0.02 if method == "spatial" else 0.005
            assert measured == pytest.approx(published, rel=tolerance), (method, budget)


def test_fig6_scaling_laws(benchmark):
    """The two observations of Section IV-D: throughput scales linearly with
    the multiplier budget and quadratically (via m^2/(m+r-1)^2) with m."""

    def scaling():
        linear = [
            ideal_throughput_gops(4, 3, budget) / ideal_throughput_gops(4, 3, 256)
            for budget in BUDGETS
        ]
        per_m = [ideal_throughput_gops(m, 3, 1024) for m in range(2, 8)]
        return linear, per_m

    linear, per_m = benchmark(scaling)
    assert linear == pytest.approx([1.0, 2.0, 4.0], rel=1e-9)
    assert all(b > a for a, b in zip(per_m, per_m[1:]))
    # Ratio between consecutive m follows (m+1)^2 (m+2)^2 / (m^2 (m+3)^2).
    for m, (a, b) in zip(range(2, 7), zip(per_m, per_m[1:])):
        expected = ((m + 1) ** 2 / (m + 3) ** 2) / (m ** 2 / (m + 2) ** 2)
        assert b / a == pytest.approx(expected, rel=1e-9)

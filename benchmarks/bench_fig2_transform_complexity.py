"""Figure 2 — net transform complexity vs. output tile size m (E2).

Regenerates the total data/filter/inverse transform FLOPs of VGG16-D for
m = 2..7 (Fig. 2) from the operator counts of the actual transform matrices,
and prints them next to the published Mega-FLOP values.  The absolute counts
differ by a constant factor (documented in EXPERIMENTS.md) because the paper
uses Lavin's normalised per-element counts; the benchmark asserts the growth
*shape*: monotonic increase with m, super-linear overall growth, and the
relative step increases that drive the paper's Fig. 3 discussion.
"""


from conftest import emit
from repro.baselines import FIG2_PUBLISHED_MFLOPS
from repro.core.complexity import complexity_breakdown
from repro.reporting import format_table

M_VALUES = (2, 3, 4, 5, 6, 7)


def _fig2_rows(network):
    rows = []
    for m in M_VALUES:
        breakdown = complexity_breakdown(network, m)
        rows.append(
            {
                "m": m,
                "data_MFLOPs": breakdown.data_transform_ops / 1e6,
                "filter_MFLOPs": breakdown.filter_transform_ops / 1e6,
                "inverse_MFLOPs": breakdown.inverse_transform_ops / 1e6,
                "total_MFLOPs": breakdown.transform_ops / 1e6,
                "paper_MFLOPs": FIG2_PUBLISHED_MFLOPS[m],
            }
        )
    return rows


def test_fig2_reproduction(vgg16, benchmark):
    rows = benchmark(_fig2_rows, vgg16)
    emit("Figure 2 — net transform complexity Ot on VGG16-D", format_table(rows, precision=1))

    totals = [row["total_MFLOPs"] for row in rows]
    published = [row["paper_MFLOPs"] for row in rows]
    # Shape: strictly increasing with m, and overall growth at least as steep
    # as the paper's 156 -> 408 MFLOPs (x2.6).
    assert all(b > a for a, b in zip(totals, totals[1:]))
    assert totals[-1] / totals[0] > 1.8
    # Order of magnitude: within a factor of 5 of the published series.
    for measured, paper in zip(totals, published):
        assert paper / 5 < measured < paper * 5


def test_fig2_transforms_remain_cheap_ops(vgg16, benchmark):
    """Every transform operation is an add/shift/constant multiply — none of
    them consumes a general multiplier (the whole point of strength reduction)."""

    def general_multiplications():
        return [
            (
                complexity_breakdown(vgg16, m),
                m,
            )
            for m in M_VALUES
        ]

    results = benchmark(general_multiplications)
    from repro.winograd.op_count import count_transform_ops

    for _, m in results:
        counts = count_transform_ops(m, 3)
        assert counts.data.general_multiplications == 0
        assert counts.filter.general_multiplications == 0
        assert counts.inverse.general_multiplications == 0

"""Service benchmark — micro-batched evaluate throughput and latency.

Measures the two things the ``repro.service`` request path promises:

* **Throughput** — a heterogeneous request set (two networks x two
  devices x an ``m`` x budget x frequency plane) evaluated two ways:
  one-request-at-a-time through the scalar evaluator (what a naive
  server would do per HTTP request) versus one coalesced
  :func:`repro.dse.batch.evaluate_requests` dispatch (what the
  :class:`~repro.service.MicroBatcher` does).  Asserts the outcomes are
  byte-identical and, in full mode, that batching sustains at least the
  ``service_micro_batching`` floor in ``benchmarks/baselines.json``.
* **Latency** — the same requests fired concurrently at a live
  :class:`~repro.service.MicroBatcher` on an asyncio loop, recording
  per-request p50/p99 and sustained requests/second through the real
  window-coalescing schedule.

Every full-mode run appends a machine-readable trend record to
``BENCH_service.json`` at the repository root (override with
``REPRO_BENCH_RECORD_SERVICE``; set it in fast mode to record smoke runs
too); ``benchmarks/check_regression.py`` gates CI on the recorded
speedup.  Set ``REPRO_BENCH_FAST=1`` to shrink the request set.
"""

import asyncio
import json
import os
import pickle
import platform
import statistics
import time
from datetime import datetime, timezone
from pathlib import Path

from conftest import emit, record_trend

from repro.core.design_space import SweepSpec, frequency_range
from repro.dse import EvalRequest, evaluate_requests
from repro.reporting import format_table
from repro.service import MicroBatcher

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"

NETWORK_NAMES = ("vgg16-d", "alexnet")
DEVICE_NAMES = ("xc7vx485t", "xc7vx690t")

BASELINES_PATH = Path(__file__).resolve().parent / "baselines.json"

if FAST:
    SPEC = SweepSpec(
        m_values=(2, 3, 4),
        multiplier_budgets=(256, 512),
        frequencies_mhz=(150.0, 200.0),
    )
    MIN_SPEEDUP = None
else:
    SPEC = SweepSpec(
        m_values=(2, 3, 4, 5, 6),
        multiplier_budgets=tuple(range(200, 2001, 200)) + (None,),
        frequencies_mhz=frequency_range(100.0, 300.0, 50.0),
    )
    MIN_SPEEDUP = json.loads(BASELINES_PATH.read_text())["service_micro_batching"][
        "metrics"
    ]["batched_speedup"]["min"]

#: Where the trend record lands unless REPRO_BENCH_RECORD_SERVICE is set.
DEFAULT_RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def build_requests() -> list:
    """The heterogeneous request set: every cell interleaved, like live traffic."""
    entries = list(SPEC.configurations())
    return [
        EvalRequest(network, device, entry)
        for entry in entries
        for network in NETWORK_NAMES
        for device in DEVICE_NAMES
    ]


def test_micro_batching_throughput(benchmark):
    requests = build_requests()

    # One-request-at-a-time scalar evaluation: the no-batching server.
    started = time.perf_counter()
    serial_outcomes = [
        evaluate_requests([request], cache=False, vectorized=False)[0]
        for request in requests
    ]
    serial_seconds = time.perf_counter() - started

    # One coalesced dispatch: what the micro-batcher hands the engine.
    best_batched = float("inf")
    batched_outcomes = None
    for _ in range(2 if FAST else 3):
        started = time.perf_counter()
        batched_outcomes = evaluate_requests(requests, cache=False)
        best_batched = min(best_batched, time.perf_counter() - started)
    benchmark(lambda: evaluate_requests(requests, cache=False))

    assert [o.error for o in serial_outcomes] == [o.error for o in batched_outcomes]
    assert [
        pickle.dumps(o.point) for o in serial_outcomes if o.point is not None
    ] == [
        pickle.dumps(o.point) for o in batched_outcomes if o.point is not None
    ], "batched evaluation must reproduce one-at-a-time serial results bit-for-bit"

    speedup = serial_seconds / best_batched
    feasible = sum(1 for outcome in batched_outcomes if outcome.feasible)

    # Live MicroBatcher: concurrent submissions through the real window
    # schedule, measuring per-request latency.
    async def drive() -> list:
        batcher = MicroBatcher(window_ms=1.0, max_batch=512, cache=False)
        latencies = []

        async def one(request):
            started = time.perf_counter()
            await batcher.submit(request)
            latencies.append(time.perf_counter() - started)

        await asyncio.gather(*(one(request) for request in requests))
        await batcher.close()
        return latencies

    started = time.perf_counter()
    latencies = asyncio.run(drive())
    wall = time.perf_counter() - started
    latencies.sort()
    p50_ms = statistics.median(latencies) * 1e3
    p99_ms = latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))] * 1e3
    throughput_rps = len(requests) / wall

    emit(
        f"Micro-batched evaluate path vs one-request-at-a-time serial "
        f"({len(requests)} requests, {len(NETWORK_NAMES)}x{len(DEVICE_NAMES)} cells)",
        format_table(
            [
                {
                    "path": "serial (one request at a time)",
                    "time_ms": serial_seconds * 1e3,
                    "us_per_request": serial_seconds / len(requests) * 1e6,
                    "speedup": 1.0,
                },
                {
                    "path": "batched (single vectorized dispatch)",
                    "time_ms": best_batched * 1e3,
                    "us_per_request": best_batched / len(requests) * 1e6,
                    "speedup": speedup,
                },
                {
                    "path": "micro-batcher (asyncio, 1 ms window)",
                    "time_ms": wall * 1e3,
                    "us_per_request": wall / len(requests) * 1e6,
                    "speedup": serial_seconds / wall,
                },
            ],
            precision=2,
        )
        + f"\nlatency p50 {p50_ms:.2f} ms  p99 {p99_ms:.2f} ms  "
        f"sustained {throughput_rps:.0f} req/s",
    )

    if not FAST or os.environ.get("REPRO_BENCH_RECORD_SERVICE"):
        path = record_trend(
            {
                "benchmark": "service_micro_batching",
                "mode": "fast" if FAST else "full",
                "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
                "networks": list(NETWORK_NAMES),
                "devices": list(DEVICE_NAMES),
                "requests": len(requests),
                "feasible": feasible,
                "serial_seconds": round(serial_seconds, 6),
                "batched_seconds": round(best_batched, 6),
                "batched_speedup": round(speedup, 2),
                "batcher_wall_seconds": round(wall, 6),
                "batcher_throughput_rps": round(throughput_rps, 1),
                "latency_p50_ms": round(p50_ms, 3),
                "latency_p99_ms": round(p99_ms, 3),
                "python": platform.python_version(),
                "platform": platform.platform(),
            },
            default_path=DEFAULT_RECORD_PATH,
            env_var="REPRO_BENCH_RECORD_SERVICE",
        )
        print(f"trend record appended to {path}")

    if MIN_SPEEDUP is not None:
        assert speedup >= MIN_SPEEDUP, (
            f"batched {best_batched * 1e3:.1f} ms vs serial "
            f"{serial_seconds * 1e3:.1f} ms — only {speedup:.2f}x "
            f"(need >= {MIN_SPEEDUP}x)"
        )

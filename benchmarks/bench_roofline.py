"""E8 (extension) — roofline analysis of the proposed designs.

Checks the paper's double-buffering assumption ("enough memory bandwidth is
available", Section V-B): for each proposed design, computes the operational
intensity of every VGG16-D layer and the attainable throughput at the
Virtex-7's DRAM bandwidth, reporting which layers would be bandwidth-bound.
"""

import pytest

from conftest import emit
from repro.core.proposed import PROPOSED_CONFIGS
from repro.core.roofline import roofline_report
from repro.hw import virtex7_485t
from repro.reporting import format_table


def _reports(network):
    device = virtex7_485t()
    return {
        m: roofline_report(network, m=m, parallel_pes=config["parallel_pes"], device=device)
        for m, config in sorted(PROPOSED_CONFIGS.items())
    }


def test_roofline_reports(vgg16, benchmark):
    reports = benchmark(_reports, vgg16)
    for m, report in reports.items():
        rows = [
            {
                "layer": layer.layer_name,
                "ops/byte": layer.operational_intensity,
                "compute_GOPS": layer.compute_roof_gops,
                "bandwidth_GOPS": layer.bandwidth_roof_gops,
                "attainable_GOPS": layer.attainable_gops,
                "bound": "compute" if layer.compute_bound else "bandwidth",
            }
            for layer in report.layers
        ]
        emit(f"E8 — roofline, proposed m={m} (peak {report.peak_gops:.0f} GOPS)", format_table(rows, precision=1))

    # Operational intensity grows with depth: conv1_1 is the only layer at risk
    # of being bandwidth bound at the default 12.8 GB/s.
    for m, report in reports.items():
        bound = set(report.bandwidth_bound_layers)
        assert bound <= {"conv1_1", "conv1_2"}, (m, bound)
        # Deeper layers are strongly compute bound.
        deep = [layer for layer in report.layers if layer.layer_name.startswith("conv5")]
        assert all(layer.compute_bound for layer in deep)

    # Higher m -> higher compute roof -> never *more* compute-bound layers.
    fractions = [reports[m].attainable_fraction() for m in sorted(reports)]
    assert all(0.5 < fraction <= 1.0 for fraction in fractions)


def test_roofline_bandwidth_sensitivity(vgg16, benchmark):
    """Sweeping DRAM bandwidth shows where the double-buffering assumption breaks."""
    from repro.hw.device import FpgaDevice

    def sweep():
        results = {}
        for bandwidth in (2.0, 6.0, 12.8, 25.6, 102.4):
            device = FpgaDevice(
                name=f"virtex7-{bandwidth}",
                luts=303_600,
                registers=607_200,
                dsp_slices=2_800,
                bram_kbits=37_080,
                dram_bandwidth_gbps=bandwidth,
            )
            report = roofline_report(vgg16, m=4, parallel_pes=19, device=device)
            results[bandwidth] = report.attainable_fraction()
        return results

    fractions = benchmark(sweep)
    emit(
        "E8 — attainable fraction of peak vs DRAM bandwidth (m=4, 19 PEs)",
        "\n".join(f"{bw:5.1f} GB/s : {fraction * 100:5.1f}%" for bw, fraction in fractions.items()),
    )
    values = [fractions[bw] for bw in sorted(fractions)]
    assert all(b >= a for a, b in zip(values, values[1:]))
    # With ample bandwidth every layer becomes compute bound; at realistic
    # DDR bandwidths only the 3-channel conv1_1 stays bandwidth bound.
    assert values[-1] == pytest.approx(1.0)
    assert values[0] < values[-1]

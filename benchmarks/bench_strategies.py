"""Search-strategy benchmark — Pareto-front quality vs evaluations spent.

Runs the same experiment three ways — exhaustive :class:`GridStrategy`,
seeded :class:`RandomStrategy` subsampling and :class:`ParetoRefineStrategy`
(coarse pass + front-neighbourhood refinement) — and reports, per strategy:
how many grid configurations were evaluated, how many feasible points came
back, and how close its Pareto front gets to the exhaustive one on the
campaign objectives (throughput and power efficiency).

Asserts that the refinement strategy reaches the exhaustive front within a
small relative tolerance while spending materially fewer evaluations than
the full grid.  Set ``REPRO_BENCH_FAST=1`` to shrink the grid for smoke
runs (the evaluation-saving ratio is relaxed there: tiny coarse grids
amortise little).
"""

import os

from conftest import emit

from repro.core.design_space import SweepSpec, frequency_range
from repro.dse import EvaluationCache
from repro.experiments import ExperimentSpec, run_experiment
from repro.reporting import format_table

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"

OBJECTIVES = (("throughput_gops", True), ("power_efficiency", True))

if FAST:
    SWEEP = SweepSpec(
        m_values=(2, 3, 4),
        multiplier_budgets=(256, 512),
        frequencies_mhz=(150.0, 200.0),
    )
    NETWORKS = ("vgg16-d",)
    MAX_EVAL_FRACTION = 1.0  # a 12-entry grid leaves nothing to skip
else:
    SWEEP = SweepSpec(
        m_values=(2, 3, 4, 5, 6),
        multiplier_budgets=(256, 512, 768, 1024),
        frequencies_mhz=frequency_range(150.0, 250.0, 25.0),
    )
    NETWORKS = ("vgg16-d", "alexnet")
    MAX_EVAL_FRACTION = 0.7  # refinement must skip >= 30% of the grid

#: Maximum acceptable relative gap, per objective, between the exhaustive
#: front and the closest refined-front point covering it.
FRONT_TOLERANCE = 0.02

BASE = ExperimentSpec(
    name="bench-strategies",
    networks=NETWORKS,
    devices=("xc7vx485t",),
    sweeps=(SWEEP,),
    objectives=OBJECTIVES,
)


def _front_gap(reference_front, candidate_front):
    """Worst-case relative shortfall of ``candidate_front`` vs the reference.

    For every reference front point, find the candidate point that best
    covers it (smallest max relative shortfall across the objectives; both
    objectives here are maximised) and take the worst such cover — 0.0 means
    the candidate front matches or dominates the reference everywhere.
    """
    if not candidate_front:
        return 1.0 if reference_front else 0.0
    worst = 0.0
    for reference in reference_front:
        best_cover = min(
            max(
                max(0.0, (getattr(reference, metric) - getattr(candidate, metric))
                    / getattr(reference, metric))
                for metric, _ in OBJECTIVES
            )
            for candidate in candidate_front
        )
        worst = max(worst, best_cover)
    return worst


def _strategy_rows():
    specs = {
        "grid": BASE,
        "random": BASE.with_strategy("random", samples=max(4, BASE.grid_size // (4 * len(NETWORKS))), seed=2019),
        "pareto-refine": BASE.with_strategy("pareto-refine", coarse=2, neighborhood=1),
    }
    results = {
        name: run_experiment(spec, cache=EvaluationCache()) for name, spec in specs.items()
    }
    grid_fronts = results["grid"].pareto_fronts()
    rows = []
    for name, result in results.items():
        gap = max(
            _front_gap(grid_fronts[network], result.pareto_fronts().get(network) or [])
            if grid_fronts[network]
            else 0.0
            for network in grid_fronts
        )
        rows.append(
            {
                "strategy": name,
                "evaluations": result.evaluations,
                "grid_fraction": result.evaluations / BASE.grid_size,
                "feasible": result.feasible,
                "front_gap": gap,
                "time_ms": result.elapsed_seconds * 1e3,
            }
        )
    return results, rows


def test_pareto_refine_matches_grid_front_with_fewer_evaluations(benchmark):
    results, rows = _strategy_rows()
    benchmark(
        lambda: run_experiment(
            BASE.with_strategy("pareto-refine", coarse=2, neighborhood=1),
            cache=EvaluationCache(),
        )
    )
    emit(
        f"Search strategies on a {BASE.grid_size}-configuration experiment "
        f"({len(NETWORKS)} network(s), front tolerance {FRONT_TOLERANCE:.0%})",
        format_table(rows, precision=3),
    )

    refine = next(row for row in rows if row["strategy"] == "pareto-refine")
    assert refine["front_gap"] <= FRONT_TOLERANCE, (
        f"pareto-refine front is {refine['front_gap']:.2%} below the exhaustive "
        f"front (tolerance {FRONT_TOLERANCE:.0%})"
    )
    assert refine["evaluations"] <= MAX_EVAL_FRACTION * BASE.grid_size, (
        f"pareto-refine evaluated {refine['evaluations']}/{BASE.grid_size} "
        f"configurations — expected <= {MAX_EVAL_FRACTION:.0%} of the grid"
    )
    # Every strategy's points lie inside the declared grid.
    entries = {
        (entry.m, entry.r, entry.frequency_mhz, entry.shared_data_transform)
        for entry in SWEEP.configurations()
    }
    for result in results.values():
        for point in result.points:
            assert (point.m, point.r, point.frequency_mhz, point.shared_data_transform) in entries

"""Job-scheduler benchmark — multi-campaign throughput scaling.

The sharded job scheduler exists so that many campaigns make progress at
once instead of queueing behind one worker thread.  This benchmark
measures exactly that: a batch of distinct campaigns submitted together
to a :class:`~repro.service.JobManager`, timed end-to-end (submission to
last assembly) at ``workers=1`` (the single background thread — the
pre-sharding service behaviour) versus ``workers=4`` (the process pool),
and asserts the sharded path stays bit-identical to a single-thread
``run_experiment`` of the same spec.

A second benchmark measures the **worker fleet**: the same batch pattern
through a fleet-only server (``workers=0``) carried by one versus two
real ``python -m repro worker`` subprocesses over real HTTP — the
multi-node scaling story, on one machine.

Every full-mode run appends machine-readable trend records to
``BENCH_service.json`` (override with ``REPRO_BENCH_RECORD_JOBS``; set it
in fast mode to record smoke runs too); ``benchmarks/check_regression.py``
gates CI on ``workers4_speedup`` and ``fleet_workers2_speedup`` for
records with ``mode == "full"``.  Hosts with too few CPUs to actually
overlap the parallelism (4 for the process pool, 2 for the fleet) tag
their records ``mode="full-limited"``, which the gate ignores — the
committed baselines only constrain machines that can exercise the
parallelism (CI's runners).  Set ``REPRO_BENCH_FAST=1`` to shrink the
campaign batches.
"""

import asyncio
import os
import pickle
import platform
import signal
import subprocess
import sys
import tempfile
import threading
import time
from datetime import datetime, timezone
from pathlib import Path

from conftest import emit, record_trend

from repro.core.design_space import SweepSpec, frequency_range
from repro.experiments import ExperimentSpec, run_experiment
from repro.experiments.persistence import point_from_dict, point_to_dict
from repro.reporting import format_table
from repro.service import JobManager, ResultServer, ResultStore, ServiceClient

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"

#: Where the trend record lands unless REPRO_BENCH_RECORD_JOBS is set.
DEFAULT_RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

NETWORKS = ("vgg16-d", "alexnet", "resnet18")

if FAST:
    CAMPAIGNS = 2
    SWEEP = SweepSpec(
        m_values=(2, 3, 4),
        multiplier_budgets=(256, 512),
        frequencies_mhz=(150.0, 200.0),
    )
    DEVICES = ("xc7vx485t",)
    SHARD_ENTRIES = 6
else:
    CAMPAIGNS = 8
    SWEEP = SweepSpec(
        m_values=(2, 3, 4, 5, 6),
        multiplier_budgets=tuple(range(200, 2001, 200)) + (None,),
        frequencies_mhz=frequency_range(100.0, 300.0, 50.0),
    )
    DEVICES = ("xc7vx485t", "xc7vx690t")
    SHARD_ENTRIES = 256


def build_specs(tag: str) -> list:
    """Distinct campaigns (unique names => unique fingerprints, no dedup)."""
    specs = []
    for index in range(CAMPAIGNS):
        pair = (NETWORKS[index % len(NETWORKS)], NETWORKS[(index + 1) % len(NETWORKS)])
        specs.append(
            ExperimentSpec(
                networks=pair,
                devices=DEVICES,
                sweeps=(SWEEP,),
                name=f"jobs-bench-{tag}-{index}",
            )
        )
    return specs


async def _run_batch(specs, workers: int, store_root: str, shard_entries: int):
    """Submit every campaign at once; return (wall_seconds, jobs)."""
    store = ResultStore(store_root)
    manager = JobManager(store, workers=workers, max_entries_per_shard=shard_entries)
    try:
        # Warm the pool (forks workers, pays one-time imports) outside the
        # measured window with a distinct warmup campaign.
        warmup = ExperimentSpec(
            networks=(NETWORKS[0],),
            devices=(DEVICES[0],),
            sweeps=(SweepSpec(m_values=(2, 3), multiplier_budgets=(256,)),),
            name=f"jobs-bench-warmup-{workers}",
        )
        await (await manager.submit(warmup)).wait(timeout=300)

        started = time.perf_counter()
        jobs = []
        for spec in specs:
            jobs.append(await manager.submit(spec))
        await asyncio.gather(*(job.wait(timeout=1200) for job in jobs))
        wall = time.perf_counter() - started
        for job in jobs:
            assert job.state == "completed", f"{job.id}: {job.state} ({job.error})"
        return wall, jobs, store
    finally:
        await manager.close()


def run_batch(specs, workers: int, store_root: str):
    """Synchronous wrapper for :func:`_run_batch`."""
    return asyncio.run(_run_batch(specs, workers, store_root, SHARD_ENTRIES))


def test_multi_campaign_throughput_scaling():
    """Batch of campaigns: 1 worker thread vs a 4-process shard pool."""
    specs = build_specs("scale")

    # Ground truth + cache warmup (forked workers inherit the warm state).
    reference = run_experiment(specs[0])

    def normalize(point):
        """A point as persistence sees it (engine provenance dropped)."""
        return pickle.dumps(point_from_dict(point_to_dict(point)))

    with tempfile.TemporaryDirectory() as root_1w:
        wall_1w, jobs_1w, store_1w = run_batch(specs, 1, root_1w)
        # Bit-identity: the sharded result equals the single-thread run.
        sharded = store_1w.get(jobs_1w[0].key)
        assert [pickle.dumps(p) for p in sharded.points] == [
            normalize(p) for p in reference.points
        ], "sharded job result must be bit-identical to the single-thread path"
        assert sharded.evaluations == reference.evaluations

    with tempfile.TemporaryDirectory() as root_4w:
        wall_4w, jobs_4w, _store_4w = run_batch(specs, 4, root_4w)
        assert {job.key for job in jobs_4w} == {job.key for job in jobs_1w}, (
            "worker count must not change stored result keys"
        )

    speedup = wall_1w / wall_4w
    shards = sum(job.shard_counts()["total"] for job in jobs_1w)
    cpus = os.cpu_count() or 1

    emit(
        f"Multi-campaign job throughput ({len(specs)} campaigns, "
        f"{shards} shards, grid {specs[0].grid_size} each, {cpus} CPUs)",
        format_table(
            [
                {
                    "scheduler": "1 worker (single background thread)",
                    "wall_s": wall_1w,
                    "campaigns_per_s": len(specs) / wall_1w,
                    "speedup": 1.0,
                },
                {
                    "scheduler": "4 workers (process pool)",
                    "wall_s": wall_4w,
                    "campaigns_per_s": len(specs) / wall_4w,
                    "speedup": speedup,
                },
            ],
            precision=3,
        ),
    )

    if not FAST or os.environ.get("REPRO_BENCH_RECORD_JOBS"):
        # A host that cannot run 4 truly parallel workers measures queueing,
        # not scaling; mark its record so the regression gate skips it.
        mode = "fast" if FAST else ("full" if cpus >= 4 else "full-limited")
        path = record_trend(
            {
                "benchmark": "service_jobs",
                "mode": mode,
                "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
                "campaigns": len(specs),
                "shards": shards,
                "grid_per_campaign": specs[0].grid_size,
                "cpus": cpus,
                "wall_1_worker_seconds": round(wall_1w, 6),
                "wall_4_workers_seconds": round(wall_4w, 6),
                "workers4_speedup": round(speedup, 3),
                "campaigns_per_second_4_workers": round(len(specs) / wall_4w, 3),
                "python": platform.python_version(),
                "platform": platform.platform(),
            },
            default_path=DEFAULT_RECORD_PATH,
            env_var="REPRO_BENCH_RECORD_JOBS",
        )
        print(f"trend record appended to {path}")


def test_resubmission_is_near_free():
    """Submitting an already-stored campaign costs lookups, not evaluation."""
    spec = ExperimentSpec(
        networks=(NETWORKS[0],),
        devices=(DEVICES[0],),
        sweeps=(SWEEP,) if FAST else (SweepSpec(m_values=(2, 3, 4)),),
        name="jobs-bench-resume",
    )

    async def scenario():
        """First run evaluates; the resubmission must skip every shard."""
        with tempfile.TemporaryDirectory() as root:
            store = ResultStore(root)
            manager = JobManager(store, workers=1, max_entries_per_shard=SHARD_ENTRIES)
            try:
                first = await manager.submit(spec)
                await first.wait(timeout=600)
                started = time.perf_counter()
                second = await manager.submit(spec)
                await second.wait(timeout=600)
                resubmit_seconds = time.perf_counter() - started
                counts = second.shard_counts()
                assert counts["skipped"] == counts["total"]
                assert second.key == first.key
                return resubmit_seconds
            finally:
                await manager.close()

    resubmit_seconds = asyncio.run(scenario())
    emit(
        "Resubmission of a stored campaign",
        f"completed in {resubmit_seconds * 1e3:.2f} ms with zero evaluations",
    )


# --------------------------------------------------------------------- #
# Fleet scaling: real worker subprocesses over real HTTP.
# --------------------------------------------------------------------- #

SRC_ROOT = Path(__file__).resolve().parent.parent / "src"

if FAST:
    FLEET_CAMPAIGNS = 1
    FLEET_SWEEP = SweepSpec(
        m_values=(2, 3, 4),
        multiplier_budgets=(256, 512),
        frequencies_mhz=(150.0, 200.0),
    )
    FLEET_DEVICES = ("xc7vx485t",)
    FLEET_SHARD_ENTRIES = 6
else:
    FLEET_CAMPAIGNS = 3
    FLEET_SWEEP = SweepSpec(
        m_values=(2, 3, 4, 5, 6),
        multiplier_budgets=(256, 512, 1024),
        frequencies_mhz=(150.0, 200.0, 250.0),
    )
    FLEET_DEVICES = ("xc7vx485t", "xc7vx690t")
    FLEET_SHARD_ENTRIES = 12


def build_fleet_specs() -> list:
    """Distinct fleet campaigns (unique names => no store dedup between them)."""
    specs = []
    for index in range(FLEET_CAMPAIGNS):
        pair = (NETWORKS[index % len(NETWORKS)], NETWORKS[(index + 1) % len(NETWORKS)])
        specs.append(
            ExperimentSpec(
                networks=pair,
                devices=FLEET_DEVICES,
                sweeps=(FLEET_SWEEP,),
                name=f"fleet-bench-{index}",
            )
        )
    return specs


def spawn_fleet_worker(port: int, worker_id: str) -> subprocess.Popen:
    """One real ``python -m repro worker`` subprocess against ``port``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(SRC_ROOT), env.get("PYTHONPATH", "")])
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--server",
            f"http://127.0.0.1:{port}",
            "--worker-id",
            worker_id,
            "--poll-s",
            "0.05",
            "-q",
        ],
        env=env,
    )


def run_fleet_batch(specs, fleet_size: int, store_root: str):
    """Run ``specs`` through a fleet-only server with ``fleet_size`` workers.

    The server has ``workers=0`` (pure coordinator): every shard is
    executed by the worker subprocesses, over real HTTP.  Worker startup
    (interpreter boot, imports) and a warmup campaign happen outside the
    measured window; the measurement is submission-to-last-assembly for
    the whole batch, matching the in-process benchmark above.
    """
    store = ResultStore(store_root)
    loop = asyncio.new_event_loop()
    server = ResultServer(
        store,
        port=0,
        workers=0,
        shard_entries=FLEET_SHARD_ENTRIES,
        lease_ttl_s=30.0,
        quiet=True,
    )
    started = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10.0)
    client = ServiceClient(port=server.port)
    workers = [
        spawn_fleet_worker(server.port, f"bench-w{i}") for i in range(fleet_size)
    ]
    try:
        warmup = ExperimentSpec(
            networks=(NETWORKS[0],),
            devices=(FLEET_DEVICES[0],),
            sweeps=(SweepSpec(m_values=(2, 3), multiplier_budgets=(256,)),),
            name=f"fleet-bench-warmup-{fleet_size}",
        )
        job = client.submit_job(warmup)
        client.wait_for_job(job["id"], timeout=300)

        started_at = time.perf_counter()
        jobs = [client.submit_job(spec) for spec in specs]
        finals = [client.wait_for_job(job["id"], timeout=1200) for job in jobs]
        wall = time.perf_counter() - started_at
        for final in finals:
            assert final["state"] == "completed", (
                f"{final['id']}: {final['state']} ({final['error']})"
            )
        return wall, [final["key"] for final in finals], store
    finally:
        for proc in workers:
            proc.send_signal(signal.SIGTERM)
        for proc in workers:
            proc.wait(timeout=60)
        asyncio.run_coroutine_threadsafe(server.close(), loop).result(30.0)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10.0)


def test_fleet_scaling_two_workers():
    """Same campaign batch through a 1-worker fleet vs a 2-worker fleet."""
    specs = build_fleet_specs()

    # Ground truth for bit-identity, computed in-process.
    reference = run_experiment(specs[0])

    def normalize(point):
        """A point as persistence sees it (engine provenance dropped)."""
        return pickle.dumps(point_from_dict(point_to_dict(point)))

    with tempfile.TemporaryDirectory() as root_1w:
        wall_1w, keys_1w, store_1w = run_fleet_batch(specs, 1, root_1w)
        fleet_result = store_1w.get(keys_1w[0])
        assert [pickle.dumps(p) for p in fleet_result.points] == [
            normalize(p) for p in reference.points
        ], "fleet-executed result must be bit-identical to the single-host path"
        assert fleet_result.evaluations == reference.evaluations

    with tempfile.TemporaryDirectory() as root_2w:
        wall_2w, keys_2w, _store_2w = run_fleet_batch(specs, 2, root_2w)
        assert keys_2w == keys_1w, "fleet size must not change stored result keys"

    speedup = wall_1w / wall_2w
    cpus = os.cpu_count() or 1

    emit(
        f"Worker-fleet scaling ({len(specs)} campaigns, grid "
        f"{specs[0].grid_size} each, {cpus} CPUs)",
        format_table(
            [
                {
                    "fleet": "1 worker process",
                    "wall_s": wall_1w,
                    "campaigns_per_s": len(specs) / wall_1w,
                    "speedup": 1.0,
                },
                {
                    "fleet": "2 worker processes",
                    "wall_s": wall_2w,
                    "campaigns_per_s": len(specs) / wall_2w,
                    "speedup": speedup,
                },
            ],
            precision=3,
        ),
    )

    if not FAST or os.environ.get("REPRO_BENCH_RECORD_JOBS"):
        # Two worker processes cannot overlap on a single CPU; mark such
        # records so the regression gate only binds where scaling is real.
        mode = "fast" if FAST else ("full" if cpus >= 2 else "full-limited")
        path = record_trend(
            {
                "benchmark": "service_worker_fleet",
                "mode": mode,
                "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
                "campaigns": len(specs),
                "grid_per_campaign": specs[0].grid_size,
                "cpus": cpus,
                "wall_1_worker_seconds": round(wall_1w, 6),
                "wall_2_workers_seconds": round(wall_2w, 6),
                "fleet_workers2_speedup": round(speedup, 3),
                "campaigns_per_second_2_workers": round(len(specs) / wall_2w, 3),
                "python": platform.python_version(),
                "platform": platform.platform(),
            },
            default_path=DEFAULT_RECORD_PATH,
            env_var="REPRO_BENCH_RECORD_JOBS",
        )
        print(f"trend record appended to {path}")

"""Table I — resource utilisation for 19 PEs of F(4x4, 3x3) (E5).

Regenerates the Table I comparison between a design based on [3] (data
transform replicated in every PE) and the proposed design (single shared data
transform) at m = 4 with 19 parallel PEs on the Virtex-7, and prints modelled
vs. published LUT/register/DSP/multiplier counts.
"""

import pytest

from conftest import emit
from repro.baselines import TABLE1_PUBLISHED, VIRTEX7_AVAILABLE
from repro.core.comparison import resource_table
from repro.hw import virtex7_485t
from repro.reporting import format_table


def _table1_rows(network):
    table = resource_table(network, m=4)
    device = virtex7_485t()
    rows = []
    for key, label in (("reference_design", "Design based on [3]"), ("proposed_design", "Proposed design")):
        point = table[key]
        published = TABLE1_PUBLISHED[key]
        rows.append(
            {
                "design": label,
                "registers": point.resources.registers,
                "registers_paper": published["registers"],
                "luts": point.resources.luts,
                "luts_paper": published["luts"],
                "dsp": point.resources.dsp_slices,
                "dsp_paper": published["dsp_slices"],
                "multipliers": point.multipliers,
                "multipliers_paper": published["multipliers"],
            }
        )
    rows.append(
        {
            "design": "Available resources",
            "registers": device.registers,
            "registers_paper": VIRTEX7_AVAILABLE["registers"],
            "luts": device.luts,
            "luts_paper": VIRTEX7_AVAILABLE["luts"],
            "dsp": device.dsp_slices,
            "dsp_paper": VIRTEX7_AVAILABLE["dsp_slices"],
            "multipliers": device.dsp_slices // 4,
            "multipliers_paper": VIRTEX7_AVAILABLE["multipliers"],
        }
    )
    return rows


def test_table1_reproduction(vgg16, benchmark):
    rows = benchmark(_table1_rows, vgg16)
    emit("Table I — resource utilisation for 19 PEs, F(4x4, 3x3)", format_table(rows, precision=0))

    reference, proposed, available = rows
    # DSP and multiplier columns are exact (4 DSP48 slices per fp32 multiplier).
    assert reference["dsp"] == reference["dsp_paper"] == 2736
    assert proposed["multipliers"] == proposed["multipliers_paper"] == 684
    assert available["luts"] == available["luts_paper"]
    # LUT / register columns are calibrated analytical estimates: ordering and
    # savings must match; absolute values within the documented tolerance.
    assert proposed["luts"] < reference["luts"]
    assert proposed["registers"] < reference["registers"]
    assert reference["luts"] == pytest.approx(reference["luts_paper"], rel=0.35)
    assert proposed["luts"] == pytest.approx(proposed["luts_paper"], rel=0.35)


def test_table1_lut_savings_claim(vgg16, benchmark):
    """The paper's 53.6% slice-LUT reduction claim (abstract, Section V-A)."""

    def savings():
        table = resource_table(vgg16, m=4)
        return 100.0 * (
            1 - table["proposed_design"].resources.luts / table["reference_design"].resources.luts
        )

    measured = benchmark(savings)
    published = 100.0 * (
        1 - TABLE1_PUBLISHED["proposed_design"]["luts"] / TABLE1_PUBLISHED["reference_design"]["luts"]
    )
    emit(
        "Table I — LUT savings of the shared data transform",
        f"measured {measured:.1f}%   paper {published:.1f}%",
    )
    assert measured == pytest.approx(published, abs=10.0)
    assert measured > 40.0


def test_table1_per_pe_lut_slope(vgg16, benchmark):
    """Section V-A: ~12224 LUTs per additional PE for the reference design vs
    ~5312 for the proposed design.  The model must preserve the >2x gap."""

    def slopes():
        table = resource_table(vgg16, m=4)
        return (
            table["reference_design"].engine.luts_per_pe,
            table["proposed_design"].engine.luts_per_pe,
        )

    reference_slope, proposed_slope = benchmark(slopes)
    emit(
        "Table I — incremental LUTs per PE",
        f"reference {reference_slope:.0f} (paper ~12224)   proposed {proposed_slope:.0f} (paper ~5312)",
    )
    assert reference_slope / proposed_slope > 1.8

"""Worker-fleet lease protocol: the JobManager side, no HTTP involved.

The acceptance-critical pair:

* ``test_fleet_only_completion_bit_identical`` — a job executed entirely
  by remote claimants assembles to the same pickled bytes as the serial
  ``run_experiment`` path;
* ``test_dead_worker_lease_expiry_requeues`` — a worker that acquires and
  vanishes loses its lease to the expiry sweep and the *same submitted
  job* re-executes the shard to completion, no resubmission involved.

Around them, the chaos edges the ISSUE names: duplicate completion is
idempotent, completion after expiry/cancel is rejected and the store stays
consistent, heartbeats genuinely extend leases, ``fail(requeue=)`` takes
both exits, and a shard whose leases keep expiring fails the job instead
of spinning forever.
"""

from __future__ import annotations

import asyncio
import pickle

import pytest

from repro.core.design_space import SweepSpec
from repro.experiments import ExperimentSpec, run_experiment
from repro.experiments.persistence import point_from_dict, point_to_dict
from repro.service import JobManager, ResultStore, execute_shard

SPEC = ExperimentSpec(
    networks=("vgg16-d", "alexnet"),
    devices=("xc7vx485t",),
    sweeps=(
        SweepSpec(
            m_values=(2, 3, 4),
            multiplier_budgets=(256, 512),
            frequencies_mhz=(150.0, 200.0),
        ),
    ),
    name="fleet-test",
)

TERMINAL = ("completed", "skipped", "failed", "cancelled")


def normalize(point):
    """A point as the wire sees it: persistence round trip (engine=None)."""
    return pickle.dumps(point_from_dict(point_to_dict(point)))


def run_async(coro, timeout=120.0):
    """Run a coroutine on a fresh loop with a hard safety timeout."""

    async def bounded():
        return await asyncio.wait_for(coro, timeout)

    return asyncio.run(bounded())


async def fleet_drain(manager, job, worker="fleet-w", batch=8):
    """Act as a remote worker: acquire, execute, complete, until done."""
    loop = asyncio.get_running_loop()
    completions = 0
    while not job.done:
        leases = await manager.acquire_leases(worker, count=batch)
        if not leases:
            await asyncio.sleep(0.02)
            continue
        for lease in leases:
            payload = await loop.run_in_executor(
                None, execute_shard, lease["shard"]["spec"]
            )
            response = await manager.complete_lease(lease["id"], payload, 0.01)
            assert response["accepted"], response
            completions += 1
    await job.wait(60)
    return completions


@pytest.fixture()
def reference():
    """The campaign run single-thread, in-process (the ground truth)."""
    return run_experiment(SPEC)


# --------------------------------------------------------------------- #
# Fleet-only execution
# --------------------------------------------------------------------- #
def test_fleet_only_completion_bit_identical(tmp_path, reference):
    """workers=0: every shard runs via leases; bytes match the serial run."""

    async def scenario():
        store = ResultStore(tmp_path)
        manager = JobManager(store, workers=0, max_entries_per_shard=5)
        try:
            job = await manager.submit(SPEC)
            completions = await fleet_drain(manager, job)
            assert job.state == "completed", job.error
            counts = job.shard_counts()
            assert completions == counts["total"] == counts["completed"]
            assert all(shard.worker == "fleet-w" for shard in job.shards)
            return store.get(job.key)
        finally:
            await manager.close()

    result = run_async(scenario())
    assert [pickle.dumps(p) for p in result.points] == [
        normalize(p) for p in reference.points
    ]
    assert result.evaluations == reference.evaluations == SPEC.grid_size


def test_workers_zero_waits_for_fleet(tmp_path):
    """With no local pool and no fleet, a job just waits (never fails)."""

    async def scenario():
        store = ResultStore(tmp_path)
        manager = JobManager(store, workers=0, max_entries_per_shard=5)
        try:
            job = await manager.submit(SPEC)
            await asyncio.sleep(0.3)
            assert not job.done
            counts = job.shard_counts()
            assert counts["pending"] == counts["total"]
            await fleet_drain(manager, job)
            assert job.state == "completed"
        finally:
            await manager.close()

    run_async(scenario())


def test_lease_payload_carries_runnable_spec(tmp_path):
    """A granted lease contains everything a stranger needs to execute."""

    async def scenario():
        store = ResultStore(tmp_path)
        manager = JobManager(store, workers=0, max_entries_per_shard=5)
        try:
            job = await manager.submit(SPEC)
            await asyncio.sleep(0.05)
            [lease] = await manager.acquire_leases("w1", count=1)
            shard = lease["shard"]
            spec = ExperimentSpec.from_dict(shard["spec"])
            assert spec.fingerprint() == shard["fingerprint"]
            assert spec.grid_size == shard["entries"]
            assert lease["deadline"] > lease["ttl_s"] > 0
            run = job.shards[shard["index"]]
            assert run.state == "leased" and run.worker == "w1"
            assert run.attempts == 1
        finally:
            await manager.close()

    run_async(scenario())


def test_acquire_on_empty_queue_returns_nothing(tmp_path):
    async def scenario():
        manager = JobManager(ResultStore(tmp_path), workers=0)
        try:
            assert await manager.acquire_leases("w1", count=4) == []
        finally:
            await manager.close()

    run_async(scenario())


# --------------------------------------------------------------------- #
# Expiry, re-queue, idempotence
# --------------------------------------------------------------------- #
def test_dead_worker_lease_expiry_requeues(tmp_path, reference):
    """A vanished worker's shards re-run to completion on the SAME job."""

    async def scenario():
        store = ResultStore(tmp_path)
        manager = JobManager(
            store, workers=0, max_entries_per_shard=5, lease_ttl_s=0.3
        )
        try:
            job = await manager.submit(SPEC)
            await asyncio.sleep(0.05)
            # The doomed worker grabs two shards and is never heard from.
            doomed = await manager.acquire_leases("doomed", count=2)
            assert len(doomed) == 2
            doomed_indices = {lease["shard"]["index"] for lease in doomed}
            # Expiry sweep fires within ~ttl + sweep interval.
            deadline = asyncio.get_running_loop().time() + 10.0
            while any(
                job.shards[i].state == "leased" for i in doomed_indices
            ):
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.05)
            for index in doomed_indices:
                assert job.shards[index].state == "pending"
                assert job.shards[index].attempts == 1
            # A healthy worker drains everything — including the re-queued
            # shards — with no resubmission.
            await fleet_drain(manager, job, worker="healthy")
            assert job.state == "completed", job.error
            stats = manager.ledger.stats()
            assert stats["expired"] >= 2 and stats["requeued"] >= 2
            for index in doomed_indices:
                assert job.shards[index].state == "completed"
                assert job.shards[index].worker == "healthy"
                assert job.shards[index].attempts == 2
            # A dangling complete from the dead worker is rejected.
            late = await manager.complete_lease(
                doomed[0]["id"], {"schema": "bogus"}, None
            )
            assert late == {
                "accepted": False,
                "duplicate": False,
                "reason": "expired",
                "key": None,
            }
            return store.get(job.key)
        finally:
            await manager.close()

    result = run_async(scenario())
    assert [pickle.dumps(p) for p in result.points] == [
        normalize(p) for p in reference.points
    ]


def test_duplicate_completion_is_idempotent(tmp_path):
    """Completing the same lease twice answers the same key, stores once."""

    async def scenario():
        store = ResultStore(tmp_path)
        manager = JobManager(store, workers=0, max_entries_per_shard=5)
        try:
            job = await manager.submit(SPEC)
            await asyncio.sleep(0.05)
            [lease] = await manager.acquire_leases("w1", count=1)
            loop = asyncio.get_running_loop()
            payload = await loop.run_in_executor(
                None, execute_shard, lease["shard"]["spec"]
            )
            first = await manager.complete_lease(lease["id"], payload, 0.01)
            assert first["accepted"] and not first["duplicate"]
            stored_after_first = len(store)
            second = await manager.complete_lease(lease["id"], payload, 0.01)
            assert second == {
                "accepted": True,
                "duplicate": True,
                "key": first["key"],
            }
            assert len(store) == stored_after_first
            assert job.shards[lease["shard"]["index"]].state == "completed"
        finally:
            await manager.close()

    run_async(scenario())


def test_heartbeat_keeps_lease_alive_past_ttl(tmp_path):
    """A heartbeating worker holds a lease far beyond one TTL."""

    async def scenario():
        store = ResultStore(tmp_path)
        manager = JobManager(
            store, workers=0, max_entries_per_shard=5, lease_ttl_s=0.3
        )
        try:
            job = await manager.submit(SPEC)
            await asyncio.sleep(0.05)
            [lease] = await manager.acquire_leases("w1", count=1)
            for _ in range(12):  # ~1.2 s, four TTLs
                await asyncio.sleep(0.1)
                answer = await manager.heartbeat_lease(lease["id"])
                assert answer["alive"], answer
            run = job.shards[lease["shard"]["index"]]
            assert run.state == "leased" and run.attempts == 1
            loop = asyncio.get_running_loop()
            payload = await loop.run_in_executor(
                None, execute_shard, lease["shard"]["spec"]
            )
            response = await manager.complete_lease(lease["id"], payload, 1.2)
            assert response["accepted"]
        finally:
            await manager.close()

    run_async(scenario())

    # Unknown lease ids answer dead, not 500.
    async def unknown():
        manager = JobManager(ResultStore(tmp_path), workers=0)
        try:
            answer = await manager.heartbeat_lease("lease-nope")
            assert answer == {"alive": False, "reason": "unknown-lease"}
        finally:
            await manager.close()

    run_async(unknown())


def test_max_lease_attempts_fails_poisoned_shard(tmp_path):
    """A shard that kills every claimant fails the job, not the fleet."""

    async def scenario():
        store = ResultStore(tmp_path)
        manager = JobManager(
            store,
            workers=0,
            max_entries_per_shard=100,  # one shard per network cell
            lease_ttl_s=0.25,
            max_lease_attempts=2,
        )
        try:
            job = await manager.submit(SPEC)
            await asyncio.sleep(0.05)
            # Lease and abandon until the attempts budget is spent.
            deadline = asyncio.get_running_loop().time() + 20.0
            while not job.done:
                assert asyncio.get_running_loop().time() < deadline
                await manager.acquire_leases("crashy", count=4)
                await asyncio.sleep(0.1)
            assert job.state == "failed"
            assert "lease expired after 2 grants" in (job.error or "")
            failed = [s for s in job.shards if s.state == "failed"]
            assert failed and all(s.attempts == 2 for s in failed)
        finally:
            await manager.close()

    run_async(scenario())


# --------------------------------------------------------------------- #
# fail_lease and validation
# --------------------------------------------------------------------- #
def test_fail_lease_requeue_hands_shard_back(tmp_path):
    async def scenario():
        store = ResultStore(tmp_path)
        manager = JobManager(store, workers=0, max_entries_per_shard=5)
        try:
            job = await manager.submit(SPEC)
            await asyncio.sleep(0.05)
            [lease] = await manager.acquire_leases("w1", count=1)
            index = lease["shard"]["index"]
            response = await manager.fail_lease(
                lease["id"], "shutting down", requeue=True
            )
            assert response == {"accepted": True, "reason": None, "requeued": True}
            assert job.shards[index].state == "pending"
            # The shard is immediately claimable again.
            again = await manager.acquire_leases("w2", count=20)
            assert index in {item["shard"]["index"] for item in again}
            assert job.shards[index].attempts == 2
        finally:
            await manager.close()

    run_async(scenario())


def test_fail_lease_fatal_fails_job_like_local_error(tmp_path):
    async def scenario():
        store = ResultStore(tmp_path)
        manager = JobManager(store, workers=0, max_entries_per_shard=5)
        try:
            job = await manager.submit(SPEC)
            await asyncio.sleep(0.05)
            [lease] = await manager.acquire_leases("w1", count=1)
            response = await manager.fail_lease(
                lease["id"], "RuntimeError: device exploded", requeue=False
            )
            assert response["accepted"] and not response["requeued"]
            failed_index = lease["shard"]["index"]
            assert job.shards[failed_index].state == "failed"
            # Like the local pool, the job settles once every shard does:
            # drain the survivors, then the job reports the failure.
            loop = asyncio.get_running_loop()
            while not job.done:
                for other in await manager.acquire_leases("w2", count=4):
                    payload = await loop.run_in_executor(
                        None, execute_shard, other["shard"]["spec"]
                    )
                    await manager.complete_lease(other["id"], payload, 0.01)
                await asyncio.sleep(0.02)
            assert job.state == "failed"
            assert "device exploded" in job.error
        finally:
            await manager.close()

    run_async(scenario())


def test_invalid_completion_payload_requeues_shard(tmp_path):
    """A wrong-shard or garbage payload is rejected; the shard re-queues."""

    async def scenario():
        store = ResultStore(tmp_path)
        manager = JobManager(store, workers=0, max_entries_per_shard=5)
        try:
            job = await manager.submit(SPEC)
            await asyncio.sleep(0.05)
            first, second = await manager.acquire_leases("w1", count=2)
            loop = asyncio.get_running_loop()
            # Execute shard B but try to complete lease A with it.
            wrong = await loop.run_in_executor(
                None, execute_shard, second["shard"]["spec"]
            )
            with pytest.raises(ValueError, match="fingerprints to"):
                await manager.complete_lease(first["id"], wrong, 0.01)
            index = first["shard"]["index"]
            assert job.shards[index].state == "pending"
            assert len(store) == 0  # nothing bogus was stored
            # Garbage payloads are equally rejected.
            [retry] = await manager.acquire_leases("w1", count=1)
            with pytest.raises(ValueError):
                await manager.complete_lease(retry["id"], {"schema": "junk"}, None)
        finally:
            await manager.close()

    run_async(scenario())


# --------------------------------------------------------------------- #
# Cancel + store consistency, resume, mixed pools
# --------------------------------------------------------------------- #
def test_cancel_revokes_leases_and_store_stays_consistent(tmp_path):
    """Cancel mid-fleet-run: leases revoked, late results discarded."""

    async def scenario():
        store = ResultStore(tmp_path)
        manager = JobManager(store, workers=0, max_entries_per_shard=5)
        try:
            job = await manager.submit(SPEC)
            await asyncio.sleep(0.05)
            leases = await manager.acquire_leases("w1", count=2)
            loop = asyncio.get_running_loop()
            # Complete one shard before the cancel: it stays stored.
            done_payload = await loop.run_in_executor(
                None, execute_shard, leases[0]["shard"]["spec"]
            )
            await manager.complete_lease(leases[0]["id"], done_payload, 0.01)
            stored_before = len(store)
            assert stored_before == 1
            assert await manager.cancel(job.id)
            assert job.state == "cancelled"
            assert manager.ledger.stats()["active_leases"] == 0
            # The in-flight worker pushes its result after the cancel:
            # rejected, and nothing new lands in the store.
            late_payload = await loop.run_in_executor(
                None, execute_shard, leases[1]["shard"]["spec"]
            )
            late = await manager.complete_lease(leases[1]["id"], late_payload, 0.01)
            assert late["accepted"] is False
            assert late["reason"] == "cancelled"
            assert len(store) == stored_before
            # Nothing is claimable from a cancelled job.
            assert await manager.acquire_leases("w2", count=8) == []
            # Every stored record is a valid, loadable result.
            for key in store.keys():
                assert store.get(key) is not None
        finally:
            await manager.close()

    run_async(scenario())


def test_resubmit_after_partial_fleet_run_skips_stored_shards(tmp_path):
    """Shards a dead fleet finished persist; resubmission reuses them."""

    async def scenario():
        store = ResultStore(tmp_path)
        manager = JobManager(store, workers=0, max_entries_per_shard=5)
        try:
            job = await manager.submit(SPEC)
            await asyncio.sleep(0.05)
            leases = await manager.acquire_leases("w1", count=2)
            loop = asyncio.get_running_loop()
            finished = set()
            for lease in leases:
                payload = await loop.run_in_executor(
                    None, execute_shard, lease["shard"]["spec"]
                )
                await manager.complete_lease(lease["id"], payload, 0.01)
                finished.add(lease["shard"]["fingerprint"])
            await manager.cancel(job.id)  # the "crash"
        finally:
            await manager.close()

        # A brand-new manager over the same store: the fleet's partial
        # progress survives as skipped shards.
        manager = JobManager(store, workers=0, max_entries_per_shard=5)
        try:
            job = await manager.submit(SPEC)
            await asyncio.sleep(0.05)
            skipped = {
                s.plan.fingerprint for s in job.shards if s.state == "skipped"
            }
            assert skipped == finished
            await fleet_drain(manager, job, worker="w2")
            assert job.state == "completed", job.error
            counts = job.shard_counts()
            assert counts["skipped"] == len(finished)
            assert counts["completed"] == counts["total"] - len(finished)
        finally:
            await manager.close()

    run_async(scenario())


def test_local_pool_and_fleet_cooperate(tmp_path, reference):
    """workers=1 plus a fleet worker: same bytes, both claimants valid."""

    async def scenario():
        store = ResultStore(tmp_path)
        manager = JobManager(store, workers=1, max_entries_per_shard=3)
        try:
            job = await manager.submit(SPEC)
            loop = asyncio.get_running_loop()
            while not job.done:
                leases = await manager.acquire_leases("remote", count=1)
                for lease in leases:
                    payload = await loop.run_in_executor(
                        None, execute_shard, lease["shard"]["spec"]
                    )
                    response = await manager.complete_lease(
                        lease["id"], payload, 0.01
                    )
                    assert response["accepted"], response
                await asyncio.sleep(0.01)
            await job.wait(60)
            assert job.state == "completed", job.error
            assert all(
                s.worker in ("local", "remote") for s in job.shards
            ), [s.worker for s in job.shards]
            return store.get(job.key)
        finally:
            await manager.close()

    result = run_async(scenario())
    assert [pickle.dumps(p) for p in result.points] == [
        normalize(p) for p in reference.points
    ]

"""Trace-id propagation across processes: client -> server -> worker.

The acceptance criterion made literal: a trace id bound in the submitting
client's context must show up in the *server* process's structured log
(the ``http.request`` line for the submission) and in the *worker*
process's structured log (the ``lease.acquired`` / ``shard.completed``
lines for the shard that job produced) — three processes, one id.

The campaign is a single-entry grid so the whole round trip stays fast
enough for the default test tier.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import time

import pytest

from repro.core.design_space import SweepSpec
from repro.experiments import ExperimentSpec
from repro.obs.tracing import trace_context
from repro.service import ServiceClient

SPEC = ExperimentSpec(
    networks=("alexnet",),
    devices=("xc7vx485t",),
    sweeps=(
        SweepSpec(
            m_values=(2,), multiplier_budgets=(256,), frequencies_mhz=(200.0,)
        ),
    ),
    name="trace-e2e",
)

TRACE_ID = "trace-e2e-0123456789abcdef"


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def spawn(*argv: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.abspath("src"), env.get("PYTHONPATH", "")])
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *argv],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )


def structured_records(stderr_text: str) -> list:
    """Every parseable single-line JSON record in a captured stderr stream."""
    records = []
    for line in stderr_text.splitlines():
        if not line.startswith("{"):
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return records


def wait_until_serving(client: ServiceClient, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while True:
        try:
            client.health()
            return
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.1)


def test_trace_id_spans_client_server_and_worker_processes(tmp_path):
    port = free_port()
    server = spawn(
        "serve", "--store", str(tmp_path / "store"),
        "--port", str(port), "--workers", "0",
    )
    worker = None
    try:
        client = ServiceClient(port=port)
        wait_until_serving(client)
        with trace_context(TRACE_ID):
            job = client.submit_job(SPEC)
        worker = spawn(
            "worker", "--server", f"http://127.0.0.1:{port}",
            "--worker-id", "trace-w1", "--max-shards", "1",
            "--poll-s", "0.1", "-q",
        )
        final = client.wait_for_job(job["id"], timeout=90)
        assert final["state"] == "completed", final
        assert final["trace_id"] == TRACE_ID  # the job record kept the id
        worker_stderr = worker.communicate(timeout=60)[1]
        assert worker.returncode == 0
    finally:
        if worker is not None and worker.poll() is None:
            worker.kill()
            worker.communicate()
        server.terminate()
        server_stderr = server.communicate(timeout=30)[1]

    server_records = structured_records(server_stderr)
    submission = [
        record
        for record in server_records
        if record["event"] == "http.request"
        and record.get("route") == "/v1/jobs"
        and record.get("method") == "POST"
    ]
    assert submission, server_records
    assert any(record.get("trace_id") == TRACE_ID for record in submission)

    worker_records = structured_records(worker_stderr)
    acquired = [r for r in worker_records if r["event"] == "lease.acquired"]
    completed = [r for r in worker_records if r["event"] == "shard.completed"]
    assert acquired and completed, worker_records
    assert acquired[0]["trace_id"] == TRACE_ID
    assert completed[0]["trace_id"] == TRACE_ID
    assert completed[0]["worker"] == "trace-w1"
    assert completed[0]["job_id"] == job["id"]


def test_worker_completion_request_reuses_the_lease_trace(tmp_path):
    """The worker's complete call hits the server under the same id."""
    port = free_port()
    server = spawn(
        "serve", "--store", str(tmp_path / "store"),
        "--port", str(port), "--workers", "0",
    )
    worker = None
    try:
        client = ServiceClient(port=port)
        wait_until_serving(client)
        with trace_context(TRACE_ID):
            job = client.submit_job(SPEC)
        worker = spawn(
            "worker", "--server", f"http://127.0.0.1:{port}",
            "--worker-id", "trace-w2", "--max-shards", "1",
            "--poll-s", "0.1", "-q",
        )
        final = client.wait_for_job(job["id"], timeout=90)
        assert final["state"] == "completed", final
        worker.communicate(timeout=60)
    finally:
        if worker is not None and worker.poll() is None:
            worker.kill()
            worker.communicate()
        server.terminate()
        server_stderr = server.communicate(timeout=30)[1]

    completions = [
        record
        for record in structured_records(server_stderr)
        if record["event"] == "http.request"
        and record.get("route", "").endswith("/complete")
    ]
    assert completions
    assert any(record.get("trace_id") == TRACE_ID for record in completions)

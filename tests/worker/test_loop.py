"""Worker-side units: the lease state machine and loop plumbing."""

from __future__ import annotations

import pytest

from repro.service import ServiceClient
from repro.worker import InvalidLeaseTransition, WorkerLease, WorkerLoop
from repro.worker.leases import (
    LEASE_STATES,
    TERMINAL_LEASE_STATES,
    VALID_TRANSITIONS,
)
from repro.worker.loop import parse_server_url


def make_lease(state="acquired"):
    lease = WorkerLease(
        id="lease-000001-abcdef",
        job_id="job-000001-abcdef",
        shard_index=0,
        fingerprint="f" * 64,
        entries=5,
        spec_payload={"schema": "spec"},
        ttl_s=60.0,
        deadline=1.0,
    )
    lease.state = state
    return lease


class TestLeaseStateMachine:
    def test_happy_path(self):
        lease = make_lease()
        for state in ("running", "completing", "completed"):
            lease.advance(state)
        assert lease.terminal

    def test_every_state_is_mapped(self):
        assert set(VALID_TRANSITIONS) == set(LEASE_STATES)
        for state in TERMINAL_LEASE_STATES:
            assert VALID_TRANSITIONS[state] == ()

    def test_lost_reachable_from_every_non_terminal_state(self):
        for state in LEASE_STATES:
            if state in TERMINAL_LEASE_STATES:
                continue
            lease = make_lease(state)
            lease.advance("lost")
            assert lease.state == "lost"

    @pytest.mark.parametrize(
        ("current", "target"),
        [
            ("acquired", "completing"),  # must run first
            ("acquired", "completed"),
            ("running", "completed"),  # must go through completing
            ("running", "released"),  # running shards finish, not release
            ("completed", "running"),  # terminal states are final
            ("lost", "completed"),
            ("failed", "running"),
            ("released", "running"),
            ("completing", "failed"),  # the result exists; it can only land or lose
        ],
    )
    def test_illegal_transitions_raise(self, current, target):
        lease = make_lease(current)
        with pytest.raises(InvalidLeaseTransition, match=current):
            lease.advance(target)
        assert lease.state == current  # unchanged on rejection

    def test_unknown_state_raises(self):
        with pytest.raises(InvalidLeaseTransition):
            make_lease().advance("banana")

    def test_from_payload_round_trip(self):
        payload = {
            "id": "lease-000002-aa",
            "job_id": "job-000009-bb",
            "ttl_s": 2.5,
            "deadline": 100.0,
            "shard": {
                "index": 3,
                "fingerprint": "abc",
                "entries": 7,
                "networks": ["vgg16-d"],
                "devices": ["xc7vx485t"],
                "spec": {"name": "x"},
            },
        }
        lease = WorkerLease.from_payload(payload)
        assert lease.id == "lease-000002-aa"
        assert lease.shard_index == 3
        assert lease.entries == 7
        assert lease.spec_payload == {"name": "x"}
        assert lease.ttl_s == 2.5
        assert lease.state == "acquired"


class TestParseServerUrl:
    @pytest.mark.parametrize(
        ("url", "expected"),
        [
            ("http://127.0.0.1:8787", ("127.0.0.1", 8787)),
            ("http://example.com", ("example.com", 8787)),
            ("localhost:9000", ("localhost", 9000)),
            ("10.0.0.5", ("10.0.0.5", 8787)),
        ],
    )
    def test_accepted_forms(self, url, expected):
        assert parse_server_url(url) == expected

    def test_non_http_scheme_rejected(self):
        with pytest.raises(ValueError, match="http"):
            parse_server_url("https://example.com")


class TestWorkerLoopValidation:
    def test_bad_arguments_rejected(self):
        client = ServiceClient(port=1)
        with pytest.raises(ValueError, match="concurrency"):
            WorkerLoop(client, concurrency=0)
        with pytest.raises(ValueError, match="poll_s"):
            WorkerLoop(client, poll_s=0)
        with pytest.raises(ValueError, match="max_shards"):
            WorkerLoop(client, max_shards=0)

    def test_stop_flag(self):
        loop = WorkerLoop(ServiceClient(port=1), worker_id="w")
        assert not loop.stopping
        loop.request_stop()
        assert loop.stopping

    def test_default_worker_id_is_host_and_pid(self):
        import os
        import socket

        loop = WorkerLoop(ServiceClient(port=1))
        assert loop.worker_id == f"{socket.gethostname()}-{os.getpid()}"

    def test_client_retries_validation(self):
        with pytest.raises(ValueError, match="retries"):
            ServiceClient(port=1, retries=-1)

"""The fleet over real HTTP: live server, real WorkerLoop, chaos kills.

The server here runs ``workers=0`` — no local pool at all — so every
completed job in this module is proof the lease protocol alone can carry
a campaign.  The chaos test is the acceptance criterion made literal: a
worker process acquires leases and is ``os._exit``-killed mid-shard (the
``REPRO_WORKER_CHAOS`` hook), and the *same submitted job* still runs to
completion — via lease expiry and re-queue — under a healthy worker,
with no client-side resubmission.
"""

from __future__ import annotations

import asyncio
import dataclasses
import os
import pickle
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.core.design_space import SweepSpec
from repro.experiments import ExperimentSpec, run_experiment
from repro.experiments.persistence import point_from_dict, point_to_dict
from repro.service import ResultServer, ResultStore, ServiceClient
from repro.worker import WorkerLoop

SPEC = ExperimentSpec(
    networks=("vgg16-d", "alexnet"),
    devices=("xc7vx485t",),
    sweeps=(
        SweepSpec(
            m_values=(2, 3, 4),
            multiplier_budgets=(256, 512),
            frequencies_mhz=(150.0, 200.0),
        ),
    ),
    name="fleet-http",
)

#: Short lease TTL so chaos recovery happens in test time, with heartbeats
#: (ttl/3) still frequent enough that healthy workers never lose leases.
LEASE_TTL_S = 1.0


def named(name: str) -> ExperimentSpec:
    """SPEC under a different name => different fingerprints, fresh shards."""
    return dataclasses.replace(SPEC, name=name)


def normalize(point):
    """A point as the wire sees it: persistence round trip (engine=None)."""
    return pickle.dumps(point_from_dict(point_to_dict(point)))


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """A live fleet-only server (workers=0) + client, over a socket."""
    store = ResultStore(tmp_path_factory.mktemp("fleet-store"))
    loop = asyncio.new_event_loop()
    server = ResultServer(
        store,
        port=0,
        batch_window_ms=1.0,
        workers=0,
        shard_entries=5,
        lease_ttl_s=LEASE_TTL_S,
        quiet=True,
    )
    started = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10.0)
    client = ServiceClient(port=server.port)
    yield server, client, store
    asyncio.run_coroutine_threadsafe(server.close(), loop).result(30.0)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(10.0)


def run_worker_thread(port: int, **kwargs) -> "tuple[WorkerLoop, threading.Thread]":
    """A WorkerLoop running on a daemon thread against the live server."""
    loop = WorkerLoop(
        ServiceClient(port=port),
        quiet=True,
        poll_s=0.05,
        **kwargs,
    )
    thread = threading.Thread(target=loop.run, daemon=True)
    thread.start()
    return loop, thread


def spawn_worker_process(port: int, worker_id: str, chaos: str = "") -> subprocess.Popen:
    """A real ``python -m repro worker`` subprocess (optionally chaos-armed)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.abspath("src"), env.get("PYTHONPATH", "")])
    )
    if chaos:
        env["REPRO_WORKER_CHAOS"] = chaos
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--server",
            f"http://127.0.0.1:{port}",
            "--worker-id",
            worker_id,
            "--poll-s",
            "0.1",
            "--concurrency",
            "2",
            "-q",
        ],
        env=env,
    )


@pytest.mark.campaign
def test_fleet_carries_job_end_to_end_bit_identical(service):
    """workers=0 server + one WorkerLoop: completion and byte equality."""
    server, client, store = service
    spec = named("fleet-http-e2e")
    job = client.submit_job(spec)
    loop, thread = run_worker_thread(server.port, worker_id="loop-w1")
    try:
        final = client.wait_for_job(job["id"], timeout=120)
    finally:
        loop.request_stop()
        thread.join(30.0)
    assert final["state"] == "completed", final
    counts = final["shards"]
    assert counts["completed"] == counts["total"] > 1
    assert loop.counters["completed"] == counts["total"]
    assert loop.counters["failed"] == loop.counters["lost"] == 0

    reference = run_experiment(spec)
    result = store.get(final["key"])
    assert [pickle.dumps(p) for p in result.points] == [
        normalize(p) for p in reference.points
    ]
    assert result.evaluations == reference.evaluations

    # Fleet observability reflects the run.
    health = client.health()
    fleet = health["jobs"]["fleet"]
    assert fleet["completed"] >= counts["total"]
    assert fleet["workers_seen"] >= 1
    assert client.leases()["leases"] == []  # nothing outstanding

    # Per-shard attribution names the fleet worker.
    status = client.job_status(job["id"])
    assert {s["worker"] for s in status["shard_states"]} == {"loop-w1"}


@pytest.mark.campaign
def test_killed_worker_mid_shard_is_requeued_to_completion(service):
    """Chaos: kill a worker holding leases; the SAME job still completes."""
    server, client, store = service
    spec = named("fleet-http-chaos")
    job = client.submit_job(spec)

    # The doomed worker: os._exit(17) right after acquiring leases, i.e.
    # mid-shard with leases held and no fail/release call — a power cut.
    doomed = spawn_worker_process(server.port, "doomed", chaos="exit-after-acquire")
    assert doomed.wait(timeout=60) == 17

    status = client.job_status(job["id"])
    assert status["state"] == "running"
    leased = [s for s in status["shard_states"] if s["state"] == "leased"]
    assert leased, "the chaos worker must die holding leases"

    # A healthy worker joins; expiry re-queues the dead worker's shards.
    loop, thread = run_worker_thread(server.port, worker_id="healthy")
    try:
        final = client.wait_for_job(job["id"], timeout=120)
    finally:
        loop.request_stop()
        thread.join(30.0)
    assert final["state"] == "completed", final
    assert final["shards"]["completed"] == final["shards"]["total"]

    # The re-queued shards ran on their second (or later) grant.
    status = client.job_status(job["id"])
    retried = [s for s in status["shard_states"] if s["attempts"] >= 2]
    assert retried, "expiry must have re-granted the dead worker's shards"
    assert all(s["worker"] == "healthy" for s in status["shard_states"])
    fleet = client.health()["jobs"]["fleet"]
    assert fleet["expired"] >= len(leased)
    assert fleet["requeued"] >= len(leased)

    # And the bytes still match a single-host run.
    reference = run_experiment(spec)
    result = store.get(final["key"])
    assert [pickle.dumps(p) for p in result.points] == [
        normalize(p) for p in reference.points
    ]


@pytest.mark.campaign
def test_sigterm_worker_finishes_inflight_shard_and_exits_zero(service):
    """Graceful shutdown: SIGTERM mid-run completes the held shard."""
    server, client, store = service
    spec = named("fleet-http-sigterm")
    job = client.submit_job(spec)
    worker = spawn_worker_process(server.port, "graceful")
    # Wait until the worker actually holds shards, then SIGTERM it.
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        status = client.job_status(job["id"])
        if status["state"] == "completed" or any(
            s["state"] == "leased" for s in status["shard_states"]
        ):
            break
        time.sleep(0.05)
    worker.send_signal(signal.SIGTERM)
    assert worker.wait(timeout=60) == 0
    # Whatever it held, it completed before exiting — nothing is leased
    # and at least one shard landed with its name on it.
    status = client.job_status(job["id"])
    assert all(s["state"] != "leased" for s in status["shard_states"])
    finished = [s for s in status["shard_states"] if s["state"] == "completed"]
    assert finished and all(s["worker"] == "graceful" for s in finished)

    # Another worker finishes the remainder — no resubmission needed.
    loop, thread = run_worker_thread(server.port, worker_id="finisher")
    try:
        final = client.wait_for_job(job["id"], timeout=120)
    finally:
        loop.request_stop()
        thread.join(30.0)
    assert final["state"] == "completed", final


def test_idle_worker_sigterm_exits_zero_quickly(service):
    """An idle worker (nothing claimable) stops promptly on SIGTERM."""
    server, _client, _store = service
    worker = spawn_worker_process(server.port, "idle")
    time.sleep(1.0)  # let it reach the idle acquire/poll loop
    worker.send_signal(signal.SIGTERM)
    assert worker.wait(timeout=30) == 0


def test_lease_endpoints_validate_input(service):
    """Protocol-level 400s: bad acquire bodies, bad completion payloads."""
    from repro.service import ServiceError

    server, client, _store = service
    with pytest.raises(ServiceError) as excinfo:
        client._request("POST", "/v1/leases", {"count": 1})
    assert excinfo.value.status == 400  # worker id is required
    with pytest.raises(ServiceError) as excinfo:
        client._request("POST", "/v1/leases", {"worker": "w", "count": 0})
    assert excinfo.value.status == 400
    with pytest.raises(ServiceError) as excinfo:
        client._request("POST", "/v1/leases", {"worker": "w", "ttl_s": -1})
    assert excinfo.value.status == 400
    # Unknown lease ids answer protocol-shaped bodies, not errors.
    assert client.heartbeat_lease("lease-nope") == {
        "alive": False,
        "reason": "unknown-lease",
    }
    answer = client.complete_lease("lease-nope", {"schema": "junk"})
    assert answer["accepted"] is False and answer["reason"] == "unknown-lease"
    answer = client.fail_lease("lease-nope", "boom")
    assert answer["accepted"] is False and answer["reason"] == "unknown-lease"
    # A complete body without a result object is a 400.
    with pytest.raises(ServiceError) as excinfo:
        client._request("POST", "/v1/leases/lease-nope/complete", {"result": 3})
    assert excinfo.value.status == 400

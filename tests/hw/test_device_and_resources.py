"""Tests for the device library and resource accounting."""

import pytest

from repro.hw.device import DEVICES, get_device, stratix_v_gt, virtex7_485t, virtex7_690t, zynq_7045
from repro.hw.resources import ResourceEstimate, utilization


class TestDevices:
    def test_table1_available_row(self):
        device = virtex7_485t()
        assert device.luts == 303_600
        assert device.registers == 607_200
        assert device.dsp_slices == 2_800

    def test_registry(self):
        assert set(DEVICES) >= {"xc7vx485t", "xc7vx690t", "xc7z045", "stratix-v-gt"}
        assert get_device("xc7z045").name == "xc7z045"

    def test_unknown_device(self):
        with pytest.raises(KeyError):
            get_device("artix-unknown")

    def test_bram_bytes(self):
        device = zynq_7045()
        assert device.bram_bytes == device.bram_kbits * 128

    def test_relative_sizes(self):
        assert virtex7_690t().luts > virtex7_485t().luts
        assert zynq_7045().dsp_slices < virtex7_485t().dsp_slices
        assert stratix_v_gt().luts > 0


class TestResourceEstimate:
    def test_addition(self):
        a = ResourceEstimate(luts=100, registers=50, dsp_slices=4, multipliers=1)
        b = ResourceEstimate(luts=10, registers=5, dsp_slices=8, bram_kbits=36, multipliers=2)
        total = a + b
        assert total.luts == 110
        assert total.dsp_slices == 12
        assert total.bram_kbits == 36
        assert total.multipliers == 3

    def test_scaled(self):
        a = ResourceEstimate(luts=10, registers=20, dsp_slices=4, multipliers=1)
        scaled = a.scaled(19)
        assert scaled.luts == 190
        assert scaled.multipliers == 19

    def test_scaled_negative(self):
        with pytest.raises(ValueError):
            ResourceEstimate().scaled(-1)

    def test_fits(self):
        device = virtex7_485t()
        assert ResourceEstimate(luts=1000, dsp_slices=100).fits(device)
        assert not ResourceEstimate(luts=device.luts + 1).fits(device)
        assert not ResourceEstimate(dsp_slices=device.dsp_slices + 1).fits(device)

    def test_as_dict(self):
        estimate = ResourceEstimate(luts=1, registers=2, dsp_slices=3, bram_kbits=4, multipliers=5)
        assert estimate.as_dict() == {
            "luts": 1,
            "registers": 2,
            "dsp_slices": 3,
            "bram_kbits": 4,
            "multipliers": 5,
        }


class TestUtilization:
    def test_percentages(self):
        device = virtex7_485t()
        estimate = ResourceEstimate(
            luts=device.luts / 2, registers=device.registers / 4, dsp_slices=device.dsp_slices
        )
        util = utilization(estimate, device)
        assert util.luts_pct == pytest.approx(50.0)
        assert util.registers_pct == pytest.approx(25.0)
        assert util.dsp_pct == pytest.approx(100.0)
        assert util.bottleneck == "dsp_slices"
        assert util.feasible

    def test_infeasible(self):
        device = virtex7_485t()
        util = utilization(ResourceEstimate(luts=device.luts * 2), device)
        assert not util.feasible
        assert util.bottleneck == "luts"

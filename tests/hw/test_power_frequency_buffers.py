"""Tests for the power, frequency and buffer/bandwidth models."""

import pytest

from repro.hw.buffers import BufferConfig, required_bandwidth_gbps, size_buffers
from repro.hw.calibration import PowerCalibration
from repro.hw.engine import EngineConfig, build_engine
from repro.hw.frequency import achievable_frequency, estimate_fmax
from repro.hw.power import PowerModel
from repro.hw.resources import ResourceEstimate
from repro.nn.layers import ConvLayer


class TestPowerModel:
    def test_breakdown_sums(self):
        model = PowerModel()
        resources = ResourceEstimate(luts=50_000, registers=40_000, dsp_slices=1000, bram_kbits=2000)
        breakdown = model.breakdown(resources, 200.0)
        assert breakdown.total_watts == pytest.approx(
            breakdown.static_watts + breakdown.dynamic_watts
        )
        assert breakdown.dynamic_watts > 0

    def test_scales_with_frequency(self):
        model = PowerModel()
        resources = ResourceEstimate(luts=10_000, dsp_slices=100)
        low = model.total_watts(resources, 100.0)
        high = model.total_watts(resources, 200.0)
        static = model.calibration.static_watts
        assert (high - static) == pytest.approx(2 * (low - static))

    def test_power_grows_with_resources(self):
        model = PowerModel()
        small = model.total_watts(ResourceEstimate(luts=10_000), 200.0)
        large = model.total_watts(ResourceEstimate(luts=100_000), 200.0)
        assert large > small

    def test_power_efficiency(self):
        model = PowerModel()
        resources = ResourceEstimate(luts=50_000)
        efficiency = model.power_efficiency(500.0, resources, 200.0)
        assert efficiency == pytest.approx(500.0 / model.total_watts(resources, 200.0))

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            PowerModel().total_watts(ResourceEstimate(), 0.0)

    def test_proposed_designs_power_ordering(self):
        """Power grows with m for the paper's designs (Table II trend)."""
        model = PowerModel()
        watts = []
        for m, pes in ((2, 43), (3, 28), (4, 19)):
            engine = build_engine(EngineConfig(m=m, parallel_pes=pes))
            watts.append(model.total_watts(engine.resources, 200.0))
        assert watts[0] < watts[1] < watts[2]

    def test_custom_calibration(self):
        calibration = PowerCalibration(static_watts=5.0, watts_per_kilo_lut=0.0)
        model = PowerModel(calibration)
        assert model.total_watts(ResourceEstimate(luts=1e6), 200.0) == pytest.approx(
            5.0, abs=1e-6
        )


class TestFrequency:
    def test_fmax_decreases_with_depth(self):
        assert estimate_fmax(2).fmax_mhz > estimate_fmax(10).fmax_mhz

    def test_supports(self):
        timing = estimate_fmax(4)
        assert timing.supports(timing.fmax_mhz - 1)
        assert not timing.supports(timing.fmax_mhz + 1)

    def test_achievable_frequency_for_engines(self):
        engine = build_engine(EngineConfig(m=2, parallel_pes=4))
        stages = list(engine.pe.stages.values())
        timing = achievable_frequency(stages)
        # A pipelined fp datapath on Virtex-7 should close 200 MHz comfortably.
        assert timing.fmax_mhz > 100.0


class TestBuffers:
    @pytest.fixture()
    def layer(self):
        return ConvLayer("conv2_1", 64, 128, 112, 112, padding=1)

    def test_sizes_positive_and_consistent(self, layer):
        estimate = size_buffers(layer, m=4, parallel_pes=19)
        assert estimate.total_kbits == pytest.approx(
            estimate.image_kbits + estimate.kernel_kbits + estimate.accumulator_kbits
        )
        assert estimate.bram_blocks_36k > 0

    def test_double_buffering_doubles_image(self, layer):
        double = size_buffers(layer, m=4, parallel_pes=8, config=BufferConfig(double_buffered=True))
        single = size_buffers(layer, m=4, parallel_pes=8, config=BufferConfig(double_buffered=False))
        assert double.image_kbits == pytest.approx(2 * single.image_kbits)

    def test_invalid_args(self, layer):
        with pytest.raises(ValueError):
            size_buffers(layer, m=0, parallel_pes=4)
        with pytest.raises(ValueError):
            size_buffers(layer, m=2, parallel_pes=0)

    def test_as_resources(self, layer):
        estimate = size_buffers(layer, m=2, parallel_pes=4)
        assert estimate.as_resources().bram_kbits == pytest.approx(estimate.total_kbits)

    def test_bandwidth_positive_and_scales_with_frequency(self, layer):
        low = required_bandwidth_gbps(layer, m=4, parallel_pes=19, frequency_mhz=100)
        high = required_bandwidth_gbps(layer, m=4, parallel_pes=19, frequency_mhz=200)
        assert high == pytest.approx(2 * low)
        assert low > 0

    def test_bandwidth_reuse_flag(self, layer):
        shared = required_bandwidth_gbps(layer, 4, 19, 200, reuse_input_across_kernels=True)
        replicated = required_bandwidth_gbps(layer, 4, 19, 200, reuse_input_across_kernels=False)
        assert replicated > shared

    def test_bandwidth_invalid_frequency(self, layer):
        with pytest.raises(ValueError):
            required_bandwidth_gbps(layer, 2, 4, 0)

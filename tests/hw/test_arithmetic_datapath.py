"""Tests for operator costs and datapath construction."""

import pytest

from repro.hw.arithmetic import OperatorLibrary, Precision
from repro.hw.datapath import adder_tree_depth, datapath_from_network, datapath_from_op_count
from repro.winograd.matrices import get_transform
from repro.winograd.op_count import OpCount
from repro.winograd.strength_reduction import matvec_network


class TestPrecision:
    def test_factories(self):
        assert Precision.float32().bits == 32
        assert Precision.fixed16().bits == 16
        assert Precision.float32().is_float
        assert not Precision.fixed16().is_float

    def test_from_name(self):
        assert Precision.from_name("float32").name == "float32"
        with pytest.raises(ValueError):
            Precision.from_name("bfloat16")


class TestOperatorLibrary:
    def test_fp32_multiplier_uses_4_dsps(self):
        # Derived from Table I: 2736 DSPs / 684 multipliers.
        cost = OperatorLibrary().multiplier()
        assert cost.dsp_slices == 4
        assert cost.is_multiplier

    def test_fixed16_multiplier_uses_1_dsp(self):
        cost = OperatorLibrary(Precision.fixed16()).multiplier()
        assert cost.dsp_slices == 1

    def test_transform_ops_use_no_dsps(self):
        library = OperatorLibrary()
        assert library.adder().dsp_slices == 0
        assert library.shifter().dsp_slices == 0
        assert library.constant_multiplier().dsp_slices == 0

    def test_shift_is_nearly_free(self):
        library = OperatorLibrary()
        assert library.shifter().luts < library.adder().luts

    def test_costs_dictionary(self):
        costs = OperatorLibrary().costs()
        assert set(costs) == {"add", "sub", "accumulate", "shift", "cmul", "mul"}

    def test_fixed16_cheaper_than_fp32(self):
        fp32 = OperatorLibrary(Precision.float32()).adder().luts
        fixed = OperatorLibrary(Precision.fixed16()).adder().luts
        assert fixed < fp32


class TestAdderTreeDepth:
    @pytest.mark.parametrize("terms,depth", [(1, 0), (2, 1), (3, 2), (4, 2), (8, 3), (9, 4)])
    def test_depths(self, terms, depth):
        assert adder_tree_depth(terms) == depth


class TestDatapathFromOpCount:
    def test_resources_scale_with_ops(self):
        small = datapath_from_op_count("s", OpCount(additions=10))
        large = datapath_from_op_count("l", OpCount(additions=100))
        assert large.resources.luts == pytest.approx(10 * small.resources.luts)

    def test_multipliers_counted(self):
        stage = datapath_from_op_count("m", OpCount(general_multiplications=36))
        assert stage.resources.multipliers == 36
        assert stage.resources.dsp_slices == 36 * 4

    def test_empty_stage(self):
        stage = datapath_from_op_count("empty", OpCount())
        assert stage.resources.luts == 0
        assert stage.pipeline_depth == 0
        assert stage.operator_count == 0

    def test_depth_hint_respected(self):
        stage = datapath_from_op_count("d", OpCount(additions=50), depth_hint=7)
        assert stage.pipeline_depth == 7


class TestDatapathFromNetwork:
    def test_matches_network_counts(self):
        transform = get_transform(2, 3)
        network = matvec_network([list(row) for row in transform.bt_exact])
        stage = datapath_from_network("bt", [network])
        assert stage.operator_count == (
            network.adder_count + network.shift_count + network.multiplier_count
        )
        assert stage.pipeline_depth >= 1

    def test_depth_is_longest_chain(self):
        transform = get_transform(4, 3)
        network = matvec_network([list(row) for row in transform.bt_exact])
        stage = datapath_from_network("bt", [network])
        # F(4,3) B^T rows have up to 4 terms -> at least 3 chained additions.
        assert stage.pipeline_depth >= 3

    def test_multiple_networks_accumulate(self):
        transform = get_transform(2, 3)
        one = matvec_network([list(row) for row in transform.bt_exact])
        stage_single = datapath_from_network("single", [one])
        stage_double = datapath_from_network("double", [one, one])
        assert stage_double.resources.luts == pytest.approx(2 * stage_single.resources.luts)
        assert stage_double.pipeline_depth == stage_single.pipeline_depth

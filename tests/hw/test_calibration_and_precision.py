"""Tests for the calibration constants and precision-dependent design points.

The calibration module is the documented bridge between the paper's synthesis
results and this reproduction's analytical models; these tests pin the
evidence-derived constants (so accidental edits are caught) and exercise the
fixed-point precision path that models Qiu-style 16-bit accelerators.
"""

import pytest

from repro.core.design_point import evaluate_design
from repro.hw.arithmetic import Precision
from repro.hw.calibration import (
    Calibration,
    DEFAULT_CALIBRATION,
    PowerCalibration,
    ResourceCalibration,
)
from repro.hw.engine import EngineConfig, build_engine


class TestCalibrationConstants:
    def test_dsps_per_multiplier_from_table1(self):
        """Table I: 2736 DSP slices / 684 multipliers = 4 — the one constant
        that is directly derivable from published data and must never drift."""
        assert DEFAULT_CALIBRATION.resources.dsps_per_multiplier == 4

    def test_transform_ops_never_use_dsps(self):
        assert DEFAULT_CALIBRATION.resources.dsps_per_constant_mult == 0

    def test_power_calibrated_at_200mhz(self):
        assert DEFAULT_CALIBRATION.power.calibration_frequency_mhz == pytest.approx(200.0)

    def test_all_coefficients_positive(self):
        resources = DEFAULT_CALIBRATION.resources
        for name in (
            "luts_per_transform_add",
            "luts_per_constant_mult",
            "luts_per_multiplier",
            "luts_per_accumulator",
            "registers_per_word",
        ):
            assert getattr(resources, name) > 0, name
        power = DEFAULT_CALIBRATION.power
        for name in ("static_watts", "watts_per_kilo_lut", "watts_per_dsp"):
            assert getattr(power, name) > 0, name

    def test_bundle_defaults(self):
        bundle = Calibration()
        assert isinstance(bundle.resources, ResourceCalibration)
        assert isinstance(bundle.power, PowerCalibration)

    def test_custom_calibration_changes_estimates(self):
        cheap = Calibration(resources=ResourceCalibration(luts_per_transform_add=1.0))
        default_engine = build_engine(EngineConfig(m=4, parallel_pes=4))
        cheap_engine = build_engine(EngineConfig(m=4, parallel_pes=4), calibration=cheap)
        assert cheap_engine.resources.luts < default_engine.resources.luts


class TestPrecisionVariants:
    def test_fixed16_engine_uses_quarter_of_the_dsps(self):
        fp32 = build_engine(EngineConfig(m=2, parallel_pes=16))
        fixed = build_engine(
            EngineConfig(m=2, parallel_pes=16, precision=Precision.fixed16())
        )
        assert fixed.resources.dsp_slices == fp32.resources.dsp_slices // 4
        assert fixed.resources.luts < fp32.resources.luts

    def test_fixed16_fits_more_pes_on_small_devices(self):
        """On a DSP-limited device a 16-bit datapath hosts ~4x the PEs —
        the architectural reason [12]-class accelerators use fixed point."""
        from repro.hw.device import zynq_7045

        device = zynq_7045()
        budget_fp32 = device.dsp_slices // 4
        budget_fixed = device.dsp_slices // 1
        from repro.hw.engine import max_parallel_pes

        assert max_parallel_pes(2, 3, budget_fixed) >= 4 * max_parallel_pes(2, 3, budget_fp32) - 3

    def test_design_point_records_precision(self, vgg16):
        point = evaluate_design(vgg16, m=2, parallel_pes=8)
        assert point.precision == "float32"

    def test_throughput_independent_of_precision_at_fixed_pes(self, vgg16):
        """Throughput depends only on P, m and f (Eq. 10); precision affects
        resources and power, not the ideal cycle count."""
        fp32 = evaluate_design(vgg16, m=2, parallel_pes=16, include_pipeline_depth=False)
        config = EngineConfig(m=2, parallel_pes=16, precision=Precision.fixed16())
        fixed_engine = build_engine(config)
        assert fixed_engine.outputs_per_cycle == 16 * 4
        assert fp32.throughput_gops == pytest.approx(2 * 9 * 16 * 4 * 0.2, rel=1e-6)

"""Tests for the PE and engine resource models."""

import pytest

from repro.hw.device import zynq_7045
from repro.hw.engine import EngineConfig, build_engine, max_parallel_pes
from repro.hw.pe import build_pe


class TestPEModel:
    @pytest.mark.parametrize("m,expected", [(2, 16), (3, 25), (4, 36)])
    def test_multipliers_per_pe(self, m, expected):
        assert build_pe(m).multipliers == expected

    def test_reference_pe_larger_than_proposed(self):
        proposed = build_pe(4, include_data_transform=False)
        reference = build_pe(4, include_data_transform=True)
        assert reference.resources.luts > proposed.resources.luts
        assert "data_transform" in reference.stages
        assert "data_transform" not in proposed.stages

    def test_outputs_per_cycle(self):
        assert build_pe(3).outputs_per_cycle == 9

    def test_stage_names(self):
        pe = build_pe(2)
        assert set(pe.stages) == {"ewise_mult", "inverse_transform", "accumulate"}

    def test_pe_resources_grow_with_m(self):
        luts = [build_pe(m).resources.luts for m in (2, 3, 4)]
        assert luts[0] < luts[1] < luts[2]

    def test_dsp_count_matches_multipliers(self):
        pe = build_pe(4)
        assert pe.resources.dsp_slices == 36 * 4
        assert pe.resources.multipliers == 36


class TestMaxParallelPEs:
    def test_eq8_values(self):
        assert max_parallel_pes(2, 3, 256) == 16
        assert max_parallel_pes(3, 3, 700) == 28
        assert max_parallel_pes(4, 3, 700) == 19
        assert max_parallel_pes(4, 3, 684) == 19

    def test_zero_budget(self):
        assert max_parallel_pes(2, 3, 0) == 0

    def test_negative_budget(self):
        with pytest.raises(ValueError):
            max_parallel_pes(2, 3, -1)


class TestEngineConfig:
    def test_defaults(self):
        config = EngineConfig(m=4)
        assert config.r == 3
        assert config.multipliers_per_pe == 36
        assert config.shared_data_transform

    def test_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(m=0)
        with pytest.raises(ValueError):
            EngineConfig(m=2, parallel_pes=0)
        with pytest.raises(ValueError):
            EngineConfig(m=2, frequency_mhz=0)


class TestEngineModel:
    def test_table1_configuration(self):
        engine = build_engine(EngineConfig(m=4, parallel_pes=19))
        assert engine.total_multipliers == 684
        assert engine.resources.dsp_slices == 2736
        assert engine.parallel_pes == 19

    def test_pe_count_from_device_budget(self):
        engine = build_engine(EngineConfig(m=4))
        # Virtex-7: 2800 DSPs / 4 per multiplier = 700 multipliers -> 19 PEs.
        assert engine.parallel_pes == 19

    def test_shared_transform_saves_luts(self):
        shared = build_engine(EngineConfig(m=4, parallel_pes=19, shared_data_transform=True))
        replicated = build_engine(EngineConfig(m=4, parallel_pes=19, shared_data_transform=False))
        assert shared.resources.luts < replicated.resources.luts
        savings = 1 - shared.resources.luts / replicated.resources.luts
        # The paper reports 53.6% LUT savings; the model must land in that regime.
        assert 0.35 < savings < 0.65

    def test_shared_stage_present_only_when_shared(self):
        shared = build_engine(EngineConfig(m=3, parallel_pes=4))
        replicated = build_engine(EngineConfig(m=3, parallel_pes=4, shared_data_transform=False))
        assert shared.shared_stage is not None
        assert replicated.shared_stage is None

    def test_outputs_per_cycle(self):
        engine = build_engine(EngineConfig(m=3, parallel_pes=28))
        assert engine.outputs_per_cycle == 28 * 9

    def test_utilization_and_fit(self):
        engine = build_engine(EngineConfig(m=4, parallel_pes=19))
        util = engine.device_utilization()
        assert engine.fits_device()
        assert 0 < util.luts_pct < 100
        assert util.dsp_pct == pytest.approx(100 * 2736 / 2800)

    def test_too_small_device_rejected(self):
        from repro.hw.device import FpgaDevice

        tiny = FpgaDevice(name="tiny", luts=10_000, registers=20_000, dsp_slices=64, bram_kbits=100)
        with pytest.raises(ValueError):
            build_engine(EngineConfig(m=4), device=tiny)

    def test_small_device_hosts_few_pes(self):
        # Zynq-7045: 900 DSPs -> 225 fp32 multipliers -> 2 F(7x7,3x3) PEs.
        engine = build_engine(EngineConfig(m=7), device=zynq_7045())
        assert engine.parallel_pes == 2

    def test_pipeline_depth_positive(self):
        engine = build_engine(EngineConfig(m=2, parallel_pes=8))
        assert engine.pipeline_depth >= 3

    def test_luts_per_pe_scaling(self):
        """Engine LUTs grow linearly in P with slope = per-PE cost."""
        small = build_engine(EngineConfig(m=4, parallel_pes=10))
        large = build_engine(EngineConfig(m=4, parallel_pes=19))
        slope = (large.resources.luts - small.resources.luts) / 9
        assert slope == pytest.approx(large.luts_per_pe, rel=1e-6)

"""Sharded campaign job scheduler: planning, identity, lifecycle edges.

The acceptance-critical test is
``test_job_results_bit_identical_to_single_thread``: the assembled result
of a sharded job — thread or process pool — must be byte-for-byte the
single-thread ``run_experiment`` result (after both sides pass through the
persistence round trip, which drops only the non-persisted ``engine``
provenance).  The lifecycle suite covers the edges the ISSUE names: cancel
mid-campaign leaves the store consistent, resubmit-after-crash skips
completed shards, a saturated pool queues instead of rejecting, and
unknown job ids 404 cleanly over HTTP.
"""

from __future__ import annotations

import asyncio
import pickle
import threading

import pytest

from repro.core.design_space import SweepSpec
from repro.experiments import ExperimentSpec, run_experiment
from repro.experiments.persistence import point_from_dict, point_to_dict
from repro.service import (
    JobManager,
    ResultServer,
    ResultStore,
    ServiceClient,
    ServiceError,
    plan_shards,
)

SPEC = ExperimentSpec(
    networks=("vgg16-d", "alexnet"),
    devices=("xc7vx485t",),
    sweeps=(
        SweepSpec(
            m_values=(2, 3, 4),
            multiplier_budgets=(256, 512),
            frequencies_mhz=(150.0, 200.0),
        ),
    ),
    name="jobs-test",
)

#: Enough shards that a cancel lands mid-campaign, not after the fact.
WIDE_SPEC = ExperimentSpec(
    networks=("vgg16-d", "alexnet"),
    devices=("xc7vx485t",),
    sweeps=(
        SweepSpec(
            m_values=(2, 3, 4),
            multiplier_budgets=(256, 512, None),
            frequencies_mhz=(150.0, 200.0, 250.0),
        ),
    ),
    name="jobs-wide",
)


def normalize(point):
    """A point as the wire sees it: persistence round trip (engine=None)."""
    return pickle.dumps(point_from_dict(point_to_dict(point)))


def run_async(coro):
    """Run a coroutine to completion on a fresh event loop."""
    return asyncio.run(coro)


# --------------------------------------------------------------------- #
# Shard planning
# --------------------------------------------------------------------- #
class TestPlanning:
    def test_shards_cover_grid_in_serial_order(self):
        """Concatenated shard entries reproduce the spec's canonical grid."""
        shards = plan_shards(SPEC, max_entries_per_shard=5)
        expected = [
            (network, device, entry)
            for network in SPEC.networks
            for device in SPEC.devices
            for sweep in SPEC.sweeps
            for entry in sweep.configurations()
        ]
        actual = []
        for shard in shards:
            assert len(shard.networks) == 1 and len(shard.devices) == 1
            for sweep in shard.spec.sweeps:
                for entry in sweep.configurations():
                    actual.append((shard.networks[0], shard.devices[0], entry))
        assert actual == expected
        assert [shard.index for shard in shards] == list(range(len(shards)))
        assert all(shard.entries <= 5 for shard in shards)

    def test_plan_is_deterministic(self):
        """Same spec + shard size => same shard fingerprints, always."""
        first = plan_shards(SPEC, max_entries_per_shard=5)
        second = plan_shards(SPEC, max_entries_per_shard=5)
        assert [s.fingerprint for s in first] == [s.fingerprint for s in second]
        assert [s.spec for s in first] == [s.spec for s in second]

    def test_shard_size_changes_fingerprints_not_final_result(self):
        coarse = plan_shards(SPEC, max_entries_per_shard=100)
        fine = plan_shards(SPEC, max_entries_per_shard=3)
        assert len(coarse) < len(fine)
        assert {s.fingerprint for s in coarse}.isdisjoint(
            {s.fingerprint for s in fine}
        )

    def test_non_grid_strategy_is_one_whole_spec_shard(self):
        spec = SPEC.with_strategy("random", samples=8, seed=7)
        shards = plan_shards(spec, max_entries_per_shard=2)
        assert len(shards) == 1
        assert shards[0].spec == spec
        assert shards[0].fingerprint == spec.fingerprint()

    def test_shard_specs_are_valid_json_artifacts(self):
        """Every shard spec round-trips like any hand-written spec file."""
        for shard in plan_shards(SPEC, max_entries_per_shard=7):
            assert ExperimentSpec.from_dict(shard.spec.to_dict()) == shard.spec


# --------------------------------------------------------------------- #
# Bit identity and resumption
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def reference():
    """The campaign run single-thread, in-process (the ground truth)."""
    return run_experiment(SPEC)


@pytest.mark.parametrize("workers", [1, 2], ids=["thread", "processes"])
def test_job_results_bit_identical_to_single_thread(tmp_path, reference, workers):
    """Sharded results must be pickled-bytes identical to the serial path."""

    async def scenario():
        store = ResultStore(tmp_path)
        manager = JobManager(store, workers=workers, max_entries_per_shard=5)
        try:
            job = await manager.submit(SPEC)
            await job.wait(timeout=120)
            assert job.state == "completed", job.error
            return store.get(job.key)
        finally:
            await manager.close()

    result = run_async(scenario())
    assert [pickle.dumps(p) for p in result.points] == [
        normalize(p) for p in reference.points
    ]
    assert result.evaluations == reference.evaluations == SPEC.grid_size
    assert result.spec == SPEC


def test_shards_stream_into_store_and_resubmit_skips(tmp_path, reference):
    """Completed shards persist individually; resubmission reuses them."""

    async def scenario():
        store = ResultStore(tmp_path)
        manager = JobManager(store, workers=1, max_entries_per_shard=5)
        try:
            job = await manager.submit(SPEC)
            await job.wait(timeout=120)
            assert job.state == "completed"
            shard_keys = {s.key for s in job.shards}
            # Every shard is its own queryable stored result + the assembly.
            assert shard_keys <= set(store.keys())
            assert len(store) == len(job.shards) + 1

            again = await manager.submit(SPEC)
            await again.wait(timeout=120)
            counts = again.shard_counts()
            assert counts["skipped"] == counts["total"]
            assert counts["completed"] == 0
            assert again.key == job.key
            assert len(store) == len(job.shards) + 1  # nothing duplicated
        finally:
            await manager.close()

    run_async(scenario())


def test_resubmit_after_crash_skips_completed_shards(tmp_path, reference):
    """A fresh manager over the same store resumes from stored shards.

    Simulates a crash-restart: shard results were stored, the assembled
    result was not.  The new manager must skip exactly the stored shards,
    evaluate the rest and assemble the identical final result.
    """
    store = ResultStore(tmp_path)
    shards = plan_shards(SPEC, max_entries_per_shard=5)
    # "Crash" after two shards: persist their results out-of-band.
    for plan in shards[:2]:
        store.put(run_experiment(plan.spec))

    async def scenario():
        manager = JobManager(store, workers=1, max_entries_per_shard=5)
        try:
            job = await manager.submit(SPEC)
            await job.wait(timeout=120)
            assert job.state == "completed"
            counts = job.shard_counts()
            assert counts["skipped"] == 2
            assert counts["completed"] == len(shards) - 2
            return store.get(job.key)
        finally:
            await manager.close()

    result = run_async(scenario())
    assert [pickle.dumps(p) for p in result.points] == [
        normalize(p) for p in reference.points
    ]


def test_cancel_mid_campaign_leaves_store_consistent(tmp_path):
    """Cancelling mid-run stops pending shards; the store stays sound."""

    async def scenario():
        store = ResultStore(tmp_path)
        manager = JobManager(store, workers=1, max_entries_per_shard=1)
        try:
            job = await manager.submit(WIDE_SPEC)
            while job.shard_counts()["completed"] < 1 and not job.done:
                await asyncio.sleep(0.005)
            await manager.cancel(job.id)
            return job
        finally:
            await manager.close()

    job = run_async(scenario())
    if job.state == "completed":  # machine outran the cancel — nothing to check
        pytest.skip("job completed before cancellation landed")
    assert job.state == "cancelled"
    counts = job.shard_counts()
    assert counts["cancelled"] >= 1
    assert counts["pending"] == counts["running"] == 0
    assert job.finished is not None

    # The store holds only whole, loadable shard results — every shard the
    # job counted completed, plus at most writes that were already in
    # flight when the cancel landed (those are valid results too; a
    # resubmission reuses them).  A cold reopen rebuilds the same index.
    fresh = ResultStore(tmp_path)
    assert len(fresh) >= counts["completed"]
    assert fresh.rebuild_index() == len(fresh)
    for key in fresh.keys():
        reloaded = fresh.get(key)
        assert reloaded.points or reloaded.evaluations


def test_cancelled_job_resumes_from_its_completed_shards(tmp_path):
    """After a cancel, resubmission reuses every shard that finished."""

    async def scenario():
        store = ResultStore(tmp_path)
        manager = JobManager(store, workers=1, max_entries_per_shard=1)
        try:
            job = await manager.submit(WIDE_SPEC)
            while job.shard_counts()["completed"] < 2 and not job.done:
                await asyncio.sleep(0.005)
            await manager.cancel(job.id)
            completed = job.shard_counts()["completed"]

            resumed = await manager.submit(WIDE_SPEC)
            await resumed.wait(timeout=240)
            assert resumed.state == "completed"
            assert resumed.shard_counts()["skipped"] >= completed
            return store.get(resumed.key)
        finally:
            await manager.close()

    result = run_async(scenario())
    reference = run_experiment(WIDE_SPEC)
    assert [pickle.dumps(p) for p in result.points] == [
        normalize(p) for p in reference.points
    ]


def test_saturated_pool_queues_jobs_instead_of_rejecting(tmp_path):
    """More jobs than workers: all accepted immediately, all complete."""

    async def scenario():
        store = ResultStore(tmp_path)
        manager = JobManager(store, workers=1, max_entries_per_shard=5)
        try:
            specs = [
                ExperimentSpec(
                    networks=("vgg16-d",),
                    sweeps=SPEC.sweeps,
                    name=f"queued-{index}",
                )
                for index in range(3)
            ]
            jobs = []
            for spec in specs:
                job = await manager.submit(spec)  # returns without blocking
                assert job.state in ("queued", "running")
                jobs.append(job)
            await asyncio.gather(*(job.wait(timeout=240) for job in jobs))
            assert all(job.state == "completed" for job in jobs)
            assert len({job.key for job in jobs}) == 3  # distinct results
        finally:
            await manager.close()

    run_async(scenario())


def test_failed_shard_fails_the_job_with_the_scalar_error(tmp_path):
    """An infeasible entry under skip_infeasible=False fails cleanly."""
    spec = ExperimentSpec(
        networks=("vgg16-d",),
        sweeps=(SweepSpec(m_values=(6,), multiplier_budgets=(1,)),),
        skip_infeasible=False,
        name="jobs-failing",
    )

    async def scenario():
        store = ResultStore(tmp_path)
        manager = JobManager(store, workers=1)
        try:
            job = await manager.submit(spec)
            await job.wait(timeout=60)
            return job
        finally:
            await manager.close()

    job = run_async(scenario())
    assert job.state == "failed"
    assert "multiplier budget 1" in job.error
    assert job.key is None


# --------------------------------------------------------------------- #
# HTTP job API
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """A live server (workers=1, small shards) + client, over a socket."""
    store = ResultStore(tmp_path_factory.mktemp("job-store"))
    loop = asyncio.new_event_loop()
    server = ResultServer(
        store, port=0, batch_window_ms=1.0, workers=1, shard_entries=5, quiet=True
    )
    started = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10.0)
    client = ServiceClient(port=server.port)
    yield server, client, store
    asyncio.run_coroutine_threadsafe(server.close(), loop).result(30.0)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(10.0)


class TestJobHttpApi:
    def test_submit_status_wait_roundtrip(self, service, reference):
        _, client, store = service
        job = client.submit_job(SPEC)
        assert job["state"] in ("queued", "running")
        assert job["shards"]["total"] == len(plan_shards(SPEC, 5))
        final = client.wait_for_job(job["id"], timeout=240)
        assert final["state"] == "completed"
        assert final["progress"] == 1.0
        assert {shard["state"] for shard in final["shard_states"]} <= {
            "completed",
            "skipped",
        }
        result = store.get(final["key"])
        assert [pickle.dumps(p) for p in result.points] == [
            normalize(p) for p in reference.points
        ]

    def test_campaign_wrapper_returns_job_backed_receipt(self, service, reference):
        _, client, _ = service
        receipt = client.submit_campaign(SPEC)
        assert receipt["feasible"] == reference.feasible
        assert receipt["evaluations"] == reference.evaluations
        assert receipt["fingerprint"] == SPEC.fingerprint()
        assert receipt["job_id"].startswith("job-")

    def test_unknown_job_id_is_clean_404_json(self, service):
        _, client, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.job_status("job-does-not-exist")
        assert excinfo.value.status == 404
        assert "job-does-not-exist" in excinfo.value.message
        with pytest.raises(ServiceError) as excinfo:
            client.cancel_job("job-does-not-exist")
        assert excinfo.value.status == 404

    def test_wrong_method_is_405(self, service):
        _, client, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client._request("DELETE", "/v1/evaluate")
        assert excinfo.value.status == 405

    def test_invalid_spec_is_400(self, service):
        _, client, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/v1/jobs", {"spec": {"nope": True}})
        assert excinfo.value.status == 400

    def test_jobs_listing_includes_submissions(self, service):
        _, client, _ = service
        listed = client.jobs()
        assert listed, "previous tests submitted jobs"
        assert all("id" in job and "state" in job for job in listed)

    def test_health_reports_job_stats(self, service):
        _, client, _ = service
        payload = client.health()
        assert payload["jobs"]["workers"] == 1
        assert payload["jobs"]["jobs"] >= 1

"""Columnar store: migration bit-identity, JSONL equivalence, cursors, compaction.

The contract under test is the tentpole one: the binary columnar format
is an *internal* representation — every externally visible behaviour
(payload round trips, query/pareto/best pages, pagination cursors,
compaction) must be indistinguishable from the legacy JSONL store, with
the JSONL path kept as the import/migration route.
"""

from __future__ import annotations

import copy
import json
import random

import pytest

np = pytest.importorskip("numpy")

from repro.core.design_space import SweepSpec
from repro.experiments import ExperimentSpec, run_experiment
from repro.experiments.persistence import result_to_dict
from repro.service import QuerySpec, ResultStore
from repro.service.query import ColumnarEngine, ReferenceEngine


def tiny_spec(name, networks=("vgg16-d",), devices=("xc7vx485t",)):
    return ExperimentSpec(
        networks=networks,
        devices=devices,
        sweeps=(
            SweepSpec(
                m_values=(2, 3),
                multiplier_budgets=(256, 512),
                frequencies_mhz=(150.0, 200.0),
            ),
        ),
        name=name,
    )


@pytest.fixture(scope="module")
def payload_a():
    return result_to_dict(
        run_experiment(tiny_spec("col-a", networks=("vgg16-d", "alexnet")))
    )


@pytest.fixture(scope="module")
def payload_b():
    return result_to_dict(
        run_experiment(tiny_spec("col-b", networks=("alexnet",), devices=("xc7vx690t",)))
    )


@pytest.fixture()
def dual(tmp_path, payload_a, payload_b):
    """The same two results stored twice: legacy JSONL and columnar."""
    jsonl = ResultStore(tmp_path / "jsonl", format="jsonl")
    col = ResultStore(tmp_path / "col", format="columnar")
    for payload in (payload_a, payload_b):
        assert jsonl.put_payload(payload) == col.put_payload(payload)
    return jsonl, col


def canon(value):
    """Byte-level comparison form (dict order significant via JSON dump)."""
    return json.dumps(value, sort_keys=False)


def page_shape(page):
    """A page minus the cursor token (tokens embed format-specific segment names)."""
    return {
        "key": page.key,
        "rows": page.rows,
        "total": page.total,
        "has_more": page.next_cursor is not None,
    }


def drain(store, spec):
    """All pages of a query, following cursors; returns (rows, totals)."""
    rows, totals, cursor = [], [], None
    while True:
        page = store.query_page(
            QuerySpec(**{**spec.to_dict(), "cursor": cursor}) if cursor else spec
        )
        rows.extend(page.rows)
        totals.append(page.total)
        cursor = page.next_cursor
        if cursor is None:
            return rows, totals


class TestMigration:
    def test_jsonl_to_columnar_bit_identical(self, tmp_path, payload_a, payload_b):
        store = ResultStore(tmp_path, format="jsonl")
        keys = [store.put_payload(p) for p in (payload_a, payload_b)]
        before = {key: canon(store.get_payload(key)) for key in keys}

        stats = store.migrate()
        assert stats == {"kept": 2, "dropped": 0, "format": "columnar"}
        assert store.format == "columnar"
        segments = sorted(p.name for p in (tmp_path / "segments").glob("segment-*"))
        assert segments and all(name.endswith(".col") for name in segments)
        # Same keys, byte-identical payloads (including dict field order).
        assert sorted(store.keys()) == sorted(keys)
        assert {key: canon(store.get_payload(key)) for key in keys} == before

    def test_reopen_auto_detects_columnar(self, tmp_path, payload_a):
        store = ResultStore(tmp_path, format="jsonl")
        key = store.put_payload(payload_a)
        store.migrate()
        del store
        reopened = ResultStore(tmp_path)  # no explicit format
        assert reopened.format == "columnar"
        assert canon(reopened.get_payload(key)) == canon(payload_a)

    def test_migrate_back_to_jsonl(self, tmp_path, payload_a):
        store = ResultStore(tmp_path, format="columnar")
        key = store.put_payload(payload_a)
        stats = store.migrate(format="jsonl")
        assert stats["format"] == "jsonl"
        segments = sorted(p.name for p in (tmp_path / "segments").glob("segment-*"))
        assert segments and all(name.endswith(".jsonl") for name in segments)
        assert canon(store.get_payload(key)) == canon(payload_a)

    def test_unknown_format_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError, match="unknown store format"):
            store.migrate(format="parquet")

    def test_engine_kinds_match_storage(self, dual, payload_a):
        from repro.service.store import result_key

        jsonl, col = dual
        key = result_key(payload_a)
        assert isinstance(jsonl._engine_for(key), ReferenceEngine)
        assert isinstance(col._engine_for(key), ColumnarEngine)


NUMERIC_METRICS = (
    "throughput_gops",
    "total_latency_ms",
    "power_efficiency",
    "multiplier_efficiency",
    "resources.dsp_slices",
    "latency.pipeline_depth",
    "multiplication_saving_factor",
)


class TestJsonlEquivalence:
    """Seeded property tests: columnar answers == JSONL reference answers."""

    def test_random_queries_identical(self, dual, payload_a):
        jsonl, col = dual
        rng = random.Random(0xC01)
        points = payload_a["points"]
        networks = sorted({p["workload_name"] for p in points})

        def value_of(point, metric):
            node = point
            for part in metric.replace("total_latency_ms", "latency.total_latency_ms").split("."):
                node = node[part]
            return node

        for _ in range(120):
            fields = {}
            if rng.random() < 0.5:
                fields["network"] = rng.choice(networks)
            if rng.random() < 0.3:
                fields["name"] = "col-a"  # experiment name: pins the record
            metric = rng.choice(NUMERIC_METRICS + (None,))
            if metric:
                fields["metric"] = metric
                if rng.random() < 0.5:
                    fields["maximize"] = rng.random() < 0.5
                if rng.random() < 0.5:
                    fields["top_k"] = rng.randint(1, len(points))
            if rng.random() < 0.4:
                where_metric = rng.choice(NUMERIC_METRICS[:4])
                if where_metric == "multiplication_saving_factor":
                    threshold = 1.5
                else:
                    sample = [value_of(p, where_metric) for p in points]
                    threshold = sorted(sample)[len(sample) // 2]
                fields["where"] = [
                    [where_metric, rng.choice(["<", "<=", ">", ">=", "==", "!="]), threshold]
                ]
            if rng.random() < 0.4:
                fields["select"] = rng.sample(NUMERIC_METRICS, rng.randint(1, 3))
            if rng.random() < 0.6:
                fields["limit"] = rng.randint(1, len(points) + 2)

            spec = QuerySpec(**fields)
            assert canon(page_shape(jsonl.query_page(spec))) == canon(
                page_shape(col.query_page(spec))
            ), fields
            # Full drain through cursors must agree page-for-page too.
            assert canon(drain(jsonl, spec)) == canon(drain(col, spec)), fields

    def test_pareto_identical(self, dual):
        jsonl, col = dual
        objective_sets = (
            None,  # result's own campaign objectives
            [["throughput_gops", True], ["power_watts", False]],
            [["total_latency_ms", False], ["resources.dsp_slices", False], ["throughput_gops", True]],
        )
        for objectives in objective_sets:
            for network in (None, "vgg16-d"):
                for limit in (None, 1, 3, 1000):
                    spec = QuerySpec(network=network, objectives=objectives, limit=limit)
                    left, right = jsonl.pareto(spec), col.pareto(spec)
                    assert canon(left.objectives) == canon(right.objectives)
                    assert canon(left.fronts) == canon(right.fronts)
                    assert left.total == right.total
                    assert (left.next_cursor is None) == (right.next_cursor is None)

    def test_best_identical(self, dual):
        jsonl, col = dual
        for metric in NUMERIC_METRICS:
            for maximize in (None, True, False):
                spec = QuerySpec(metric=metric, maximize=maximize)
                left, right = jsonl.best(spec), col.best(spec)
                assert (left.key, left.metric, left.value) == (
                    right.key,
                    right.metric,
                    right.value,
                )
                assert canon(left.row) == canon(right.row)

    def test_error_parity(self, dual):
        jsonl, col = dual
        for spec in (
            QuerySpec(network="not-a-network"),
            QuerySpec(key="0" * 16),
        ):
            errors = []
            for store in dual:
                with pytest.raises(KeyError) as excinfo:
                    store.query_page(spec)
                errors.append(str(excinfo.value))
            assert errors[0] == errors[1]


class TestCursors:
    def test_cursor_stable_across_appends(self, tmp_path, payload_a, payload_b):
        store = ResultStore(tmp_path)
        store.put_payload(payload_a)
        spec = QuerySpec(
            name="col-a", metric="throughput_gops", maximize=True, limit=5
        )
        baseline, _ = drain(store, spec)

        first = store.query_page(spec)
        assert len(first.rows) == 5 and first.next_cursor is not None
        # A new result lands between pages; the cursor pins the original.
        store.put_payload(payload_b)
        rest, _ = drain(store, QuerySpec(cursor=first.next_cursor, limit=5,
                                         metric="throughput_gops", maximize=True))
        assert canon(first.rows + rest) == canon(baseline)

    def test_cursor_bound_to_query_shape(self, tmp_path, payload_a):
        store = ResultStore(tmp_path)
        store.put_payload(payload_a)
        page = store.query_page(QuerySpec(metric="throughput_gops", limit=2))
        with pytest.raises(ValueError, match="issued for a different query"):
            store.query_page(
                QuerySpec(metric="power_watts", limit=2, cursor=page.next_cursor)
            )

    def test_cursor_bound_to_result(self, tmp_path, payload_a, payload_b):
        store = ResultStore(tmp_path)
        key_a = store.put_payload(payload_a)
        key_b = store.put_payload(payload_b)
        page = store.query_page(QuerySpec(key=key_a, metric="throughput_gops", limit=2))
        with pytest.raises(ValueError, match="belongs to a different result"):
            store.query_page(
                QuerySpec(key=key_b, metric="throughput_gops", limit=2,
                          cursor=page.next_cursor)
            )

    def test_limit_slices_totals(self, tmp_path, payload_a):
        store = ResultStore(tmp_path)
        store.put_payload(payload_a)
        total = store.query_page(QuerySpec()).total
        page = store.query_page(QuerySpec(limit=3))
        assert len(page.rows) == 3
        assert page.total == total
        rows, totals = drain(store, QuerySpec(limit=3))
        assert len(rows) == total
        assert set(totals) == {total}


class TestCompactReaderSafety:
    def test_compact_while_memmap_reader_paginated(self, tmp_path, payload_a, payload_b):
        """The satellite bugfix: compaction must not yank segments from
        under a reader holding memory-mapped blocks mid-pagination."""
        store = ResultStore(tmp_path, format="columnar", segment_max_records=1)
        key = store.put_payload(payload_a)
        store.put_payload(payload_b)

        spec = QuerySpec(key=key, metric="throughput_gops", limit=4)
        baseline, _ = drain(store, spec)

        # A reader mid-iteration: first page fetched, engine (and its
        # memory map) live in the cache, old segment inode mapped.
        engine = store._engine_for(key)
        assert isinstance(engine, ColumnarEngine)
        first = store.query_page(spec)
        assert first.next_cursor is not None

        stats = store.compact()
        assert stats["kept"] == 2

        # The held engine still reads the (unlinked) old inode.
        assert engine.name_at(0) == payload_a["points"][0]["name"]
        assert len(engine.match_indices(QuerySpec())) == len(payload_a["points"])

        # Continuing the pagination re-resolves by key and agrees byte-
        # for-byte with the pre-compaction drain.
        rest, _ = drain(
            store,
            QuerySpec(key=key, metric="throughput_gops", limit=4,
                      cursor=first.next_cursor),
        )
        assert canon(first.rows + rest) == canon(baseline)

    def test_trash_drained_on_reopen(self, tmp_path, payload_a):
        store = ResultStore(tmp_path)
        store.put_payload(payload_a)
        trash = tmp_path / "segments" / ".trash"
        trash.mkdir()
        (trash / "segment-000099.col").write_bytes(b"leftover")
        del store
        reopened = ResultStore(tmp_path)
        assert list(trash.iterdir()) == []
        assert len(reopened) == 1

    def test_compact_drops_superseded_and_renumbers(self, tmp_path, payload_a, payload_b):
        store = ResultStore(tmp_path, format="columnar", segment_max_records=1)
        keys = [store.put_payload(p) for p in (payload_a, payload_b)]
        before = {key: canon(store.get_payload(key)) for key in keys}
        stats = store.compact()
        assert stats == {"kept": 2, "dropped": 0}
        segments = sorted(p.name for p in (tmp_path / "segments").glob("segment-*"))
        assert segments == ["segment-000001.col", "segment-000002.col"]
        assert {key: canon(store.get_payload(key)) for key in keys} == before


class TestRobustness:
    def test_opaque_fallback_round_trips(self, tmp_path, payload_a, payload_b):
        # A payload the strict column encoder cannot represent (a point
        # with a non-canonical key) must still round-trip bit-identically
        # and answer queries exactly like the JSONL reference.
        payload = copy.deepcopy(payload_a)
        payload["points"][0]["custom_annotation"] = {"note": "hand-edited"}

        col = ResultStore(tmp_path / "col", format="columnar")
        jsonl = ResultStore(tmp_path / "jsonl", format="jsonl")
        key = col.put_payload(payload)
        assert jsonl.put_payload(payload) == key
        assert canon(col.get_payload(key)) == canon(payload)

        # Opaque storage falls back to the reference engine transparently.
        assert isinstance(col._engine_for(key), ReferenceEngine)
        spec = QuerySpec(key=key, metric="throughput_gops", top_k=3)
        assert canon(page_shape(col.query_page(spec))) == canon(
            page_shape(jsonl.query_page(spec))
        )

    def test_torn_block_tail_skipped_and_healed(self, tmp_path, payload_a, payload_b):
        store = ResultStore(tmp_path, format="columnar")
        key = store.put_payload(payload_a)
        segment = next((tmp_path / "segments").glob("segment-*.col"))
        with segment.open("ab") as handle:
            handle.write(b"\x00\x01torn-partial-block")
        del store

        reopened = ResultStore(tmp_path)
        assert reopened.keys() == [key]
        assert canon(reopened.get_payload(key)) == canon(payload_a)
        # Appending after a torn tail rolls over; nothing is overwritten.
        key_b = reopened.put_payload(payload_b)
        assert sorted(reopened.keys()) == sorted([key, key_b])
        assert canon(reopened.get_payload(key)) == canon(payload_a)
        assert canon(reopened.get_payload(key_b)) == canon(payload_b)

    def test_bulk_ingest_deferred_flush_heals(self, tmp_path, payload_a, payload_b):
        store = ResultStore(tmp_path)
        store.put_payload(payload_a, flush_index=False)
        store.put_payload(payload_b, flush_index=False)
        # Crash before flush_index(): the on-disk index is stale; a fresh
        # open must detect the mismatch and recover both records.
        del store
        reopened = ResultStore(tmp_path)
        assert len(reopened) == 2

"""Observability surface over live HTTP: /metrics, /v1/stats, tracing, 429s.

Three servers, each a module fixture:

* ``service`` — workers=0, unbounded: metric families, the JSON stats
  twin, trace-header echo, and jobs/leases pagination (fleet shards stay
  claimable forever because nothing executes them locally);
* ``bounded`` — ``max_pending_evals=1`` with a long batch window and
  ``max_pending_jobs=1``: saturation must answer 429 with ``Retry-After``
  and count rejections in the metrics;
* ``bare`` — ``metrics=False``: the endpoints 404 and nothing else breaks.
"""

from __future__ import annotations

import asyncio
import dataclasses
import http.client
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.design_space import SweepSpec
from repro.experiments import ExperimentSpec
from repro.obs.tracing import TRACE_HEADER, TRACE_ID_PATTERN, trace_context
from repro.service import ResultServer, ResultStore, ServiceClient, ServiceError

SPEC = ExperimentSpec(
    networks=("alexnet",),
    devices=("xc7vx485t",),
    sweeps=(
        SweepSpec(
            m_values=(2,), multiplier_budgets=(256,), frequencies_mhz=(200.0,)
        ),
    ),
    name="obs-test",
)


def named(name: str) -> ExperimentSpec:
    """SPEC under a different name => different fingerprint, a fresh job."""
    return dataclasses.replace(SPEC, name=name)


def start_server(tmp_path_factory, **kwargs):
    """A live server on a background event loop; returns (server, client, stop)."""
    store = ResultStore(tmp_path_factory.mktemp("obs-store"))
    loop = asyncio.new_event_loop()
    server = ResultServer(store, port=0, quiet=True, **kwargs)
    started = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10.0)

    def stop() -> None:
        asyncio.run_coroutine_threadsafe(server.close(), loop).result(30.0)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10.0)

    return server, ServiceClient(port=server.port), stop


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """Fleet-only (workers=0) server: shards stay pending until leased."""
    server, client, stop = start_server(
        tmp_path_factory, batch_window_ms=1.0, workers=0
    )
    yield server, client
    stop()


@pytest.fixture(scope="module")
def bounded(tmp_path_factory):
    """Tight admission bounds: 1 pending eval (long window), 1 active job."""
    server, client, stop = start_server(
        tmp_path_factory,
        batch_window_ms=300.0,
        workers=0,
        max_pending_evals=1,
        max_pending_jobs=1,
    )
    yield server, client
    stop()


@pytest.fixture(scope="module")
def bare(tmp_path_factory):
    """Metrics disabled (the ``serve --no-metrics`` configuration)."""
    server, client, stop = start_server(
        tmp_path_factory, batch_window_ms=1.0, metrics=False
    )
    yield server, client
    stop()


# --------------------------------------------------------------------- #
# /metrics and /v1/stats
# --------------------------------------------------------------------- #
class TestMetricsEndpoint:
    def test_exposition_covers_the_service_stack(self, service):
        _, client = service
        client.health()  # guarantee at least one observed request
        client.evaluate("alexnet", m=2, multiplier_budget=256)
        text = client.metrics_text()
        for family in (
            "repro_http_requests_total",
            "repro_http_request_seconds_bucket",
            "repro_http_rejected_total",
            "repro_batcher_occupancy",
            "repro_batcher_requests_total",
            "repro_store_results",
            "repro_store_segments",
            "repro_jobs_tracked",
            "repro_job_shards",
            "repro_fleet_active_leases",
            "repro_fleet_leases",
            "repro_eval_cache_hit_rate",
            "repro_uptime_seconds",
        ):
            assert f"# TYPE {family.removesuffix('_bucket')}" in text, family
        # Per-route request counting with status labels, non-zero.
        assert 'route="/health"' in text
        assert 'repro_http_request_seconds_count{route="/v1/evaluate"} 1' in text

    def test_content_type_is_prometheus_text(self, service):
        server, _ = service
        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == (
                "text/plain; version=0.0.4; charset=utf-8"
            )
            response.read()
        finally:
            connection.close()

    def test_unrouted_paths_share_one_label(self, service):
        _, client = service
        for path in ("/v1/nope-1", "/v1/nope-2", "/totally/elsewhere"):
            with pytest.raises(ServiceError):
                client._request("GET", path)
        text = client.metrics_text()
        assert 'route="(unrouted)"' in text
        assert "nope-1" not in text  # unbounded label cardinality is a leak

    def test_stats_json_twin_has_percentiles(self, service):
        _, client = service
        client.health()
        stats = client.stats()
        assert stats["repro_uptime_seconds"]["samples"][0]["value"] > 0
        latency = stats["repro_http_request_seconds"]
        assert latency["type"] == "histogram"
        sample = next(
            s for s in latency["samples"] if s["labels"]["route"] == "/health"
        )
        assert sample["count"] >= 1
        assert sample["p50"] is not None and sample["p99"] >= sample["p50"]

    def test_disabled_metrics_404(self, bare):
        _, client = bare
        assert client.health()["status"] == "ok"
        with pytest.raises(ServiceError) as excinfo:
            client.metrics_text()
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client.stats()
        assert excinfo.value.status == 404


# --------------------------------------------------------------------- #
# Trace-id propagation over the wire
# --------------------------------------------------------------------- #
class TestTraceHeader:
    def echo(self, port: int, headers: dict) -> tuple:
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            connection.request("GET", "/health", headers=headers)
            response = connection.getresponse()
            response.read()
            return response.status, response.getheader(TRACE_HEADER)
        finally:
            connection.close()

    def test_client_supplied_id_is_echoed(self, service):
        server, _ = service
        status, echoed = self.echo(server.port, {TRACE_HEADER: "my-trace-0001"})
        assert status == 200
        assert echoed == "my-trace-0001"

    def test_missing_id_gets_minted(self, service):
        server, _ = service
        _, echoed = self.echo(server.port, {})
        assert echoed and TRACE_ID_PATTERN.match(echoed)

    def test_malformed_id_is_replaced_not_reflected(self, service):
        # A header that fails validation must never be echoed back
        # verbatim (header-injection hygiene): the server mints instead.
        server, _ = service
        bad = "spaces are invalid"
        _, echoed = self.echo(server.port, {TRACE_HEADER: bad})
        assert echoed != bad
        assert TRACE_ID_PATTERN.match(echoed)

    def test_service_client_sends_ambient_context(self, service):
        _, client = service
        with trace_context("ctx-trace-42"):
            client.health()
        text = client.metrics_text()
        assert text  # the request above went through with the bound id
        # The binding is what _request_once sends; the echo test above
        # verified the server round-trips it, so here it is enough that
        # the call succeeded under an ambient context.


# --------------------------------------------------------------------- #
# Backpressure: 429 + Retry-After
# --------------------------------------------------------------------- #
class TestBackpressure:
    def test_saturated_batcher_answers_429_with_retry_after(self, bounded):
        server, client = bounded

        def one(_index: int):
            try:
                return client.evaluate_raw(
                    network="alexnet", m=2, multiplier_budget=256
                )
            except ServiceError as error:
                return error

        with ThreadPoolExecutor(max_workers=6) as pool:
            outcomes = list(pool.map(one, range(6)))
        rejected = [o for o in outcomes if isinstance(o, ServiceError)]
        served = [o for o in outcomes if isinstance(o, dict)]
        assert served, "the one admitted request must still be answered"
        assert rejected, "max_pending_evals=1 under 6 concurrent calls must shed"
        for error in rejected:
            assert error.status == 429
            assert error.retry_after_s is not None and error.retry_after_s >= 1
        assert server.batcher.stats.rejected >= len(rejected)
        text = client.metrics_text()
        assert 'repro_http_rejected_total{queue="evaluate"}' in text
        assert "repro_batcher_rejected_total 0" not in text

    def test_full_job_queue_answers_429(self, bounded):
        _, client = bounded
        first = client.submit_job(named("obs-backpressure-1"))
        assert first["state"] in ("queued", "running")
        with pytest.raises(ServiceError) as excinfo:
            client.submit_job(named("obs-backpressure-2"))
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after_s is not None
        assert "active job" in excinfo.value.message
        # /v1/campaign shares the same admission bound.
        with pytest.raises(ServiceError) as excinfo:
            client.submit_campaign(named("obs-backpressure-3"))
        assert excinfo.value.status == 429
        text = client.metrics_text()
        assert 'repro_http_rejected_total{queue="jobs"}' in text


# --------------------------------------------------------------------- #
# Jobs / leases pagination
# --------------------------------------------------------------------- #
class TestListingPagination:
    @pytest.fixture(scope="class")
    def jobs(self, service):
        """Five fleet-only jobs (never executed: workers=0, no workers)."""
        _, client = service
        return [
            client.submit_job(named(f"obs-page-{index}")) for index in range(5)
        ]

    def test_jobs_pages_follow_cursor_to_the_full_listing(self, service, jobs):
        _, client = service
        everything = client.jobs_page()
        assert everything["total"] >= 5
        assert everything["next_cursor"] is None

        pages = [client.jobs_page(limit=2)]
        while pages[-1]["next_cursor"]:
            pages.append(client.jobs_page(limit=2, cursor=pages[-1]["next_cursor"]))
        assert all(page["count"] <= 2 for page in pages)
        assert [job["id"] for page in pages for job in page["jobs"]] == [
            job["id"] for job in everything["jobs"]
        ]

    def test_iter_jobs_drains_and_matches(self, service, jobs):
        _, client = service
        drained = [job["id"] for job in client.iter_jobs(page_size=2)]
        assert drained == [job["id"] for job in client.jobs_page()["jobs"]]
        assert {job["id"] for job in jobs} <= set(drained)

    def test_leases_pages_follow_cursor(self, service, jobs):
        _, client = service
        grants = client.acquire_leases("obs-pager", count=4)["leases"]
        assert len(grants) == 4  # one shard per job, five jobs queued
        first = client.leases(limit=3)
        assert first["count"] == 3
        assert first["total"] >= 4
        assert "fleet" in first
        second = client.leases(limit=3, cursor=first["next_cursor"])
        ids = [row["id"] for row in first["leases"] + second["leases"]]
        assert len(ids) == len(set(ids))
        assert {grant["id"] for grant in grants} <= set(ids)

    def test_bad_cursor_400(self, service, jobs):
        _, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.jobs_page(cursor="not-a-cursor")
        assert excinfo.value.status == 400
        assert "invalid cursor" in excinfo.value.message

    def test_foreign_cursor_rejected(self, service, jobs):
        # A leases cursor on /v1/jobs (and vice versa) is a 400, not a
        # silently wrong page.
        _, client = service
        client.acquire_leases("obs-pager-2", count=1)
        lease_cursor = client.leases(limit=1)["next_cursor"]
        assert lease_cursor
        with pytest.raises(ServiceError) as excinfo:
            client.jobs_page(cursor=lease_cursor)
        assert excinfo.value.status == 400
        job_cursor = client.jobs_page(limit=1)["next_cursor"]
        with pytest.raises(ServiceError) as excinfo:
            client.leases(limit=1, cursor=job_cursor)
        assert excinfo.value.status == 400

    def test_bad_limit_400(self, service, jobs):
        _, client = service
        for bad in ("0", "-3", "abc"):
            with pytest.raises(ServiceError) as excinfo:
                client._request("GET", f"/v1/jobs?limit={bad}")
            assert excinfo.value.status == 400

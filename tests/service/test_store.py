"""ResultStore: content addressing, querying, index self-healing, compaction."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.core.design_space import SweepSpec
from repro.experiments import ExperimentSpec, run_experiment
from repro.service import ResultStore
from repro.service.store import ENVELOPE_SCHEMA


def tiny_spec(name: str = "tiny", networks=("vgg16-d",), devices=("xc7vx485t",)) -> ExperimentSpec:
    return ExperimentSpec(
        networks=networks,
        devices=devices,
        sweeps=(
            SweepSpec(
                m_values=(2, 3),
                multiplier_budgets=(256, 512),
                frequencies_mhz=(150.0, 200.0),
            ),
        ),
        name=name,
    )


@pytest.fixture(scope="module")
def result():
    return run_experiment(tiny_spec())


@pytest.fixture(scope="module")
def other_result():
    return run_experiment(tiny_spec(name="other", networks=("alexnet",), devices=("xc7vx690t",)))


class TestPutGet:
    def test_round_trip(self, tmp_path, result):
        store = ResultStore(tmp_path)
        key = store.put(result)
        loaded = store.get(key)
        # A store read equals a CampaignResult.save()/load() round trip
        # bit-for-bit (same persistence schema underneath).
        result.save(tmp_path / "ref.json")
        reference = type(result).load(tmp_path / "ref.json")
        assert [pickle.dumps(point) for point in loaded.points] == [
            pickle.dumps(point) for point in reference.points
        ]
        assert loaded.spec == result.spec
        assert loaded.evaluations == result.evaluations

    def test_content_addressing_dedups(self, tmp_path, result):
        store = ResultStore(tmp_path, format="jsonl")
        key = store.put(result)
        assert store.put(result) == key
        assert len(store) == 1
        segments = list((tmp_path / "segments").glob("*.jsonl"))
        lines = [
            line
            for path in segments
            for line in path.read_text().splitlines()
            if line.strip()
        ]
        assert len(lines) == 1

    def test_rerun_of_same_spec_dedups(self, tmp_path, result):
        # A fresh evaluation of the same spec differs only in run
        # provenance (timings, cache stats), which the content key
        # excludes — so the second put is a no-op.
        store = ResultStore(tmp_path)
        key = store.put(result)
        rerun = run_experiment(result.spec)
        assert rerun.elapsed_seconds != result.elapsed_seconds
        assert store.put(rerun) == key
        assert len(store) == 1

    def test_rerun_under_other_executor_dedups(self, tmp_path, result):
        # Executor modes are bit-identical, so the same search computed
        # by a different engine dedups too (execution tuning is excluded
        # from the content key and the fingerprint).
        import dataclasses

        from repro.dse import ExecutorConfig

        store = ResultStore(tmp_path)
        key = store.put(result)
        vectorized_spec = dataclasses.replace(
            result.spec, executor=ExecutorConfig(mode="vectorized")
        )
        rerun = run_experiment(vectorized_spec)
        assert vectorized_spec.fingerprint() == result.spec.fingerprint()
        assert store.put(rerun) == key
        assert len(store) == 1

    def test_distinct_results_distinct_keys(self, tmp_path, result, other_result):
        store = ResultStore(tmp_path)
        first = store.put(result)
        second = store.put(other_result)
        assert first != second
        assert len(store) == 2
        assert store.keys() == [first, second]

    def test_get_unknown_key_raises(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(KeyError):
            store.get("no-such-key")

    def test_envelope_schema_tag(self, tmp_path, result):
        store = ResultStore(tmp_path, format="jsonl")
        store.put(result)
        segment = next((tmp_path / "segments").glob("*.jsonl"))
        envelope = json.loads(segment.read_text().splitlines()[0])
        assert envelope["schema"] == ENVELOPE_SCHEMA
        assert envelope["meta"]["fingerprint"] == result.spec.fingerprint()


class TestQuery:
    def test_filters(self, tmp_path, result, other_result):
        store = ResultStore(tmp_path)
        first = store.put(result)
        second = store.put(other_result)
        assert [r.key for r in store.query(network="vgg16-d")] == [first]
        assert [r.key for r in store.query(device="xc7vx690t")] == [second]
        assert [r.key for r in store.query(name="other")] == [second]
        assert [r.key for r in store.query(fingerprint=result.spec.fingerprint())] == [first]
        assert store.query(network="resnet18") == []
        assert len(store.query()) == 2

    def test_latest_prefers_newest(self, tmp_path, result, other_result):
        store = ResultStore(tmp_path)
        store.put(result)
        store.put(other_result)
        assert store.latest().spec.name == "other"
        assert store.latest(network="vgg16-d").spec.name == "tiny"
        assert store.latest(network="resnet18") is None


class TestIndexSelfHealing:
    def test_reopen_uses_index(self, tmp_path, result):
        key = ResultStore(tmp_path).put(result)
        reopened = ResultStore(tmp_path)
        assert reopened.keys() == [key]
        assert reopened.get(key).evaluations == result.evaluations

    def test_missing_index_rebuilds(self, tmp_path, result):
        key = ResultStore(tmp_path).put(result)
        (tmp_path / "index.json").unlink()
        reopened = ResultStore(tmp_path)
        assert reopened.keys() == [key]
        assert (tmp_path / "index.json").exists()

    def test_corrupt_index_rebuilds(self, tmp_path, result):
        key = ResultStore(tmp_path).put(result)
        (tmp_path / "index.json").write_text("{not json")
        reopened = ResultStore(tmp_path)
        assert reopened.keys() == [key]

    def test_crash_orphaned_envelope_recovered(self, tmp_path, result, other_result):
        """A put whose index write was lost (crash) must be recovered.

        The envelope hit the segment but index.json predates it; the
        count-validation on open must detect the divergence, rebuild and
        surface the orphan — and compact() must keep it.
        """
        store = ResultStore(tmp_path)
        first = store.put(result)
        index_before = (tmp_path / "index.json").read_bytes()
        second = store.put(other_result)
        # Simulate the crash: the second put's index write never landed.
        (tmp_path / "index.json").write_bytes(index_before)
        reopened = ResultStore(tmp_path)
        assert sorted(reopened.keys()) == sorted([first, second])
        assert reopened.get(second).points
        stats = reopened.compact()
        assert stats["kept"] == 2
        assert sorted(reopened.keys()) == sorted([first, second])

    def test_torn_segment_line_skipped(self, tmp_path, result, other_result):
        store = ResultStore(tmp_path, format="jsonl")
        first = store.put(result)
        # Simulate a crash mid-append: a truncated JSON line at the tail.
        segment = next((tmp_path / "segments").glob("*.jsonl"))
        with segment.open("a") as handle:
            handle.write('{"schema": "repro.result-store/1", "meta": {"key": "torn')
        (tmp_path / "index.json").unlink()
        reopened = ResultStore(tmp_path)
        assert reopened.keys() == [first]
        assert reopened.put(other_result) != first
        assert len(reopened) == 2

    def test_append_after_torn_tail_is_not_lost(self, tmp_path, result, other_result):
        """A put onto a segment with a torn (newline-less) tail must start
        a fresh line — otherwise the new envelope merges into the torn one
        and a later rebuild permanently drops it."""
        store = ResultStore(tmp_path, format="jsonl")
        first = store.put(result)
        segment = next((tmp_path / "segments").glob("*.jsonl"))
        with segment.open("a") as handle:
            handle.write('{"torn": tr')  # no trailing newline
        reopened = ResultStore(tmp_path)
        second = reopened.put(other_result)
        assert reopened.get(second).points
        # The new envelope survives a full rescan.
        rebuilt = ResultStore(tmp_path)
        rebuilt.rebuild_index()
        assert sorted(rebuilt.keys()) == sorted([first, second])
        assert rebuilt.get(second).points


class TestCompaction:
    def test_compact_drops_dead_weight(self, tmp_path, result, other_result):
        store = ResultStore(tmp_path, segment_max_records=1, format="jsonl")
        first = store.put(result)
        second = store.put(other_result)
        # Duplicate the first envelope manually (a superseded copy) plus junk.
        segment = next((tmp_path / "segments").glob("*.jsonl"))
        content = segment.read_text()
        with segment.open("a") as handle:
            handle.write("not json at all\n")
        (tmp_path / "segments" / "segment-000099.jsonl").write_text(content)
        store.rebuild_index()
        stats = store.compact()
        assert stats["kept"] == 2
        assert stats["dropped"] >= 1
        assert sorted(store.keys()) == sorted([first, second])
        # Segments are renumbered from 1 and contain only live envelopes.
        segments = sorted((tmp_path / "segments").glob("*.jsonl"))
        assert [path.name for path in segments] == [
            "segment-000001.jsonl",
            "segment-000002.jsonl",
        ]
        assert store.get(first).evaluations == result.evaluations
        assert ResultStore(tmp_path).keys() == store.keys()

    def test_segment_rollover(self, tmp_path, result, other_result):
        store = ResultStore(tmp_path, segment_max_records=1)
        store.put(result)
        store.put(other_result)
        assert len(list((tmp_path / "segments").glob("segment-*"))) == 2

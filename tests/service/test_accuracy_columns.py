"""Accuracy columns across the service surface.

``bit_width`` / ``max_rel_error`` / ``mean_rel_error`` must flow from the
evaluator through the columnar store and out of every read endpoint —
and results written *before* those columns existed must stay loadable
and queryable (schema evolution by appended columns).
"""

from __future__ import annotations

import asyncio
import threading

import pytest

np = pytest.importorskip("numpy")

from repro.core.design_space import SweepSpec
from repro.dse import EXCEEDS_ERROR_BUDGET, ExecutorConfig, iter_explore
from repro.experiments import ExperimentSpec, run_experiment
from repro.experiments.persistence import point_to_dict, result_to_dict
from repro.service import (
    InfeasibleDesignError,
    QuerySpec,
    ResultServer,
    ResultStore,
    ServiceClient,
)
from repro.service import columnar
from repro.service.columnar import ColumnarBlock, encode_block, iter_blocks
from repro.service.query import ColumnarEngine, ReferenceEngine
from repro.winograd.quantized import calibrated_error

SPEC = ExperimentSpec(
    networks=("vgg16-d",),
    devices=("xc7vx485t",),
    sweeps=(SweepSpec(m_values=(2, 3, 4), bit_widths=(None, 8, 12, 16)),),
    name="accuracy-columns",
)

#: The three legacy point/scalar layouts: everything before the accuracy
#: columns were appended.
OLD_POINT_KEYS = columnar.POINT_KEYS[:-3]
OLD_SCALAR_PATHS = columnar._SCALAR_PATHS[:-3]


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """A live server over a columnar store + a client."""
    store = ResultStore(tmp_path_factory.mktemp("store"), format="columnar")
    loop = asyncio.new_event_loop()
    server = ResultServer(store, port=0, batch_window_ms=1.0, quiet=True)
    started = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10.0)
    client = ServiceClient(port=server.port)
    yield server, client, store
    asyncio.run_coroutine_threadsafe(server.close(), loop).result(10.0)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(10.0)


@pytest.fixture(scope="module")
def stored(service):
    _, client, _ = service
    return client.submit_campaign(SPEC)


class TestEvaluateEndpoint:
    def test_point_carries_accuracy_fields(self, service):
        _, client, _ = service
        point = client.evaluate("vgg16-d", m=4, bit_width=8)
        assert point.bit_width == 8
        assert point.name.endswith("-Q8")
        stats = calibrated_error(4, 3, 8)
        assert point.max_rel_error == stats.max_rel
        assert point.mean_rel_error == stats.mean_rel

    def test_float_default_unchanged(self, service):
        _, client, _ = service
        point = client.evaluate("vgg16-d", m=4)
        assert point.bit_width is None
        assert not point.name.endswith("-Q8")
        assert 0.0 < point.max_rel_error < 1e-6

    def test_error_budget_rejection_carries_scalar_message(self, service):
        _, client, _ = service
        with pytest.raises(InfeasibleDesignError) as excinfo:
            client.evaluate("vgg16-d", m=4, bit_width=8, error_budget=1e-9)
        stats = calibrated_error(4, 3, 8)
        assert str(excinfo.value) == EXCEEDS_ERROR_BUDGET.format(
            error=stats.max_rel, budget=1e-9
        )

    def test_invalid_bit_width_is_an_infeasible_outcome(self, service):
        _, client, _ = service
        payload = client.evaluate_raw(network="vgg16-d", m=4, bit_width=99)
        assert payload["feasible"] is False
        assert "bit_width must be None or an integer" in payload["error"]


class TestQueryEndpoints:
    def test_where_filters_on_bit_width(self, service, stored):
        _, client, _ = service
        rows = client.query(
            key=stored["key"],
            where=[["bit_width", "==", 8]],
            select=["name", "bit_width", "max_rel_error"],
        )
        assert rows
        assert all(row["bit_width"] == 8 for row in rows)
        assert all(row["name"].endswith("-Q8") for row in rows)

    def test_select_returns_none_for_float_points(self, service, stored):
        _, client, _ = service
        rows = client.query(
            key=stored["key"], select=["name", "bit_width", "max_rel_error"]
        )
        float_rows = [row for row in rows if not row["name"].endswith(
            ("-Q8", "-Q12", "-Q16"))]
        assert float_rows
        assert all(row["bit_width"] is None for row in float_rows)
        assert all(row["max_rel_error"] > 0.0 for row in rows)

    def test_sort_by_accuracy_metric(self, service, stored):
        _, client, _ = service
        rows = client.query(
            key=stored["key"],
            metric="max_rel_error",
            maximize=False,
            select=["max_rel_error"],
        )
        errors = [row["max_rel_error"] for row in rows]
        assert errors == sorted(errors)

    def test_three_objective_pareto_front(self, service, stored):
        _, client, _ = service
        payload = client.pareto(
            key=stored["key"],
            objectives=[
                ["throughput_gops", True],
                ["resources.luts", False],
                ["max_rel_error", False],
            ],
        )
        front = payload["vgg16-d"]
        assert front
        # The float datapath is the accuracy anchor: its tiny float32
        # error is pareto-optimal on the accuracy axis, so at least one
        # non-quantized design must survive; quantized points survive on
        # the throughput/resource axes.
        assert any(point.bit_width is None for point in front)

    def test_errors_reproducible_from_calibration(self, service, stored):
        _, client, _ = service
        rows = client.query(
            key=stored["key"],
            where=[["bit_width", "==", 16]],
            select=["m", "r", "max_rel_error", "mean_rel_error"],
        )
        assert rows
        for row in rows:
            stats = calibrated_error(row["m"], row["r"], 16)
            assert row["max_rel_error"] == stats.max_rel
            assert row["mean_rel_error"] == stats.mean_rel


def _legacy_payload():
    """A campaign payload as code before the accuracy columns wrote it."""
    payload = result_to_dict(
        run_experiment(
            ExperimentSpec(
                networks=("vgg16-d",),
                sweeps=(SweepSpec(m_values=(2, 3)),),
                name="legacy",
            )
        )
    )
    for point in payload["points"]:
        for key in ("bit_width", "max_rel_error", "mean_rel_error"):
            point.pop(key)
    return payload


def _write_legacy_block(tmp_path, payload, monkeypatch):
    """Encode ``payload`` exactly as the pre-accuracy encoder did."""
    with monkeypatch.context() as patch:
        patch.setattr(columnar, "POINT_KEYS", OLD_POINT_KEYS)
        patch.setattr(columnar, "_SCALAR_PATHS", OLD_SCALAR_PATHS)
        block_bytes = encode_block({"key": "legacy"}, payload)
    segment = tmp_path / "segment-000000.col"
    segment.write_bytes(block_bytes)
    (offset, _header), = iter_blocks(segment)
    return ColumnarBlock.read_at(segment, offset)


class TestSchemaEvolution:
    def test_old_columnar_block_still_loads(self, tmp_path, monkeypatch):
        payload = _legacy_payload()
        block = _write_legacy_block(tmp_path, payload, monkeypatch)
        assert not block.opaque
        assert "bit_width" not in block.columns()
        assert block.payload() == payload

    def test_missing_column_query_rejected_identically(self, tmp_path, monkeypatch):
        payload = _legacy_payload()
        block = _write_legacy_block(tmp_path, payload, monkeypatch)
        columnar_engine = ColumnarEngine(block)
        reference_engine = ReferenceEngine(payload)
        spec = QuerySpec(where=(("bit_width", "==", 8),))
        errors = []
        for engine in (columnar_engine, reference_engine):
            with pytest.raises(ValueError) as excinfo:
                engine.match_indices(spec)
            errors.append(str(excinfo.value))
        assert errors[0] == errors[1] == (
            "column 'bit_width' is not stored in this result"
        )

    def test_old_and_new_blocks_coexist_in_one_store(self, tmp_path):
        store = ResultStore(tmp_path / "mixed", format="columnar")
        legacy = _legacy_payload()
        key_old = store.put_payload(legacy)
        new_payload = result_to_dict(
            run_experiment(
                ExperimentSpec(
                    networks=("vgg16-d",),
                    sweeps=(SweepSpec(m_values=(2,), bit_widths=(8,)),),
                    name="modern",
                )
            )
        )
        key_new = store.put_payload(new_payload)
        assert store.get_payload(key_old) == legacy
        assert store.get_payload(key_new) == new_payload


class TestEngineParityOnNulls:
    """Nullable bit_width: both engines agree on filters, sorts, selects."""

    @pytest.fixture(scope="class")
    def payload(self):
        return result_to_dict(
            run_experiment(
                ExperimentSpec(
                    networks=("vgg16-d",),
                    sweeps=(SweepSpec(m_values=(2, 3, 4), bit_widths=(None, 8, 16)),),
                    name="nulls",
                )
            )
        )

    @pytest.fixture(scope="class")
    def engines(self, tmp_path_factory, payload):
        tmp_path = tmp_path_factory.mktemp("nulls")
        segment = tmp_path / "segment-000000.col"
        segment.write_bytes(encode_block({"key": "nulls"}, payload))
        (offset, _header), = iter_blocks(segment)
        block = ColumnarBlock.read_at(segment, offset)
        assert block.columns()["bit_width"] == "optint"
        return ColumnarEngine(block), ReferenceEngine(payload)

    @pytest.mark.parametrize(
        "clause",
        [
            ("bit_width", "==", 8),
            ("bit_width", "!=", 8),
            ("bit_width", ">=", 12),
            ("max_rel_error", "<", 1e-3),
        ],
    )
    def test_filters_agree(self, engines, clause):
        columnar_engine, reference_engine = engines
        spec = QuerySpec(where=(clause,))
        assert (
            columnar_engine.match_indices(spec).tolist()
            == reference_engine.match_indices(spec)
        )

    @pytest.mark.parametrize("maximize", [True, False])
    def test_sort_on_nullable_column_agrees(self, engines, maximize):
        columnar_engine, reference_engine = engines
        all_rows = list(range(columnar_engine.rows))
        assert (
            columnar_engine.sort_rows(
                np.array(all_rows, dtype=np.int64), "bit_width", maximize
            ).tolist()
            == reference_engine.sort_rows(all_rows, "bit_width", maximize)
        )

    def test_select_materializes_null_identically(self, engines):
        columnar_engine, reference_engine = engines
        select = ("name", "bit_width", "mean_rel_error")
        rows = list(range(columnar_engine.rows))
        assert (
            columnar_engine.materialize(np.array(rows, dtype=np.int64), select)
            == reference_engine.materialize(rows, select)
        )

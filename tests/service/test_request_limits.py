"""HTTP body-size bounding: oversized uploads get a 413, not buffered."""

from __future__ import annotations

import asyncio
import http.client
import json
import threading

import pytest

from repro.service import ResultServer, ResultStore, ServiceClient, ServiceError


@pytest.fixture(scope="module")
def tiny_body_service(tmp_path_factory):
    """A live server capped at a 2 KiB request body."""
    store = ResultStore(tmp_path_factory.mktemp("limit-store"))
    loop = asyncio.new_event_loop()
    server = ResultServer(
        store, port=0, batch_window_ms=1.0, max_body_bytes=2048, quiet=True
    )
    started = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10.0)
    yield server
    asyncio.run_coroutine_threadsafe(server.close(), loop).result(30.0)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(10.0)


def test_oversized_body_is_refused_with_413_json(tiny_body_service):
    """A body past the cap answers 413 + JSON error and closes the socket."""
    connection = http.client.HTTPConnection("127.0.0.1", tiny_body_service.port, timeout=10)
    try:
        big = json.dumps({"spec": "x" * 4096})
        connection.request(
            "POST", "/v1/jobs", body=big, headers={"Content-Type": "application/json"}
        )
        response = connection.getresponse()
        assert response.status == 413
        assert response.getheader("Connection") == "close"
        payload = json.loads(response.read())
        assert "2048-byte limit" in payload["error"]
    finally:
        connection.close()


def test_oversized_body_is_never_read(tiny_body_service):
    """The 413 arrives before the body is sent — nothing gets buffered."""
    # Send headers declaring a huge body, but no body bytes at all: the
    # server must answer from the Content-Length header alone.
    connection = http.client.HTTPConnection("127.0.0.1", tiny_body_service.port, timeout=10)
    try:
        connection.putrequest("POST", "/v1/jobs")
        connection.putheader("Content-Type", "application/json")
        connection.putheader("Content-Length", str(1 << 30))  # 1 GiB, never sent
        connection.endheaders()
        response = connection.getresponse()
        assert response.status == 413
    finally:
        connection.close()


def test_server_stays_healthy_after_413(tiny_body_service):
    """Refusing one oversized request doesn't wedge later connections."""
    client = ServiceClient(port=tiny_body_service.port)
    with pytest.raises(ServiceError) as excinfo:
        client._request("POST", "/v1/jobs", {"spec": "x" * 4096})
    assert excinfo.value.status == 413
    assert client.health()["status"] == "ok"


def test_bodies_under_the_cap_flow_normally(tiny_body_service):
    """Requests under the cap behave exactly as before (here: a 400)."""
    client = ServiceClient(port=tiny_body_service.port)
    with pytest.raises(ServiceError) as excinfo:
        client._request("POST", "/v1/jobs", {"spec": "tiny"})
    assert excinfo.value.status == 400  # parsed and rejected on content


def test_max_body_bytes_validation():
    store = ResultStore.__new__(ResultStore)  # never touched before raise
    with pytest.raises(ValueError, match="max_body_bytes"):
        ResultServer(store, max_body_bytes=0)

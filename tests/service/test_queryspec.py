"""QuerySpec: validation, JSON round trip, cursor codec, binding hash."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.service.queryspec import (
    DERIVED_METRICS,
    METRIC_ALIASES,
    SCALAR_COLUMNS,
    QuerySpec,
    decode_cursor,
    encode_cursor,
    resolve_metric,
)


class TestValidation:
    def test_defaults_are_empty(self):
        spec = QuerySpec()
        assert spec.to_dict() == {}

    def test_frozen(self):
        spec = QuerySpec(metric="throughput_gops")
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.metric = "power_watts"

    def test_listy_fields_normalized_to_tuples(self):
        spec = QuerySpec(
            where=[["throughput_gops", ">", 1.0]],
            objectives=[["throughput_gops", True]],
            select=["throughput_gops", "power_watts"],
        )
        assert spec.where == (("throughput_gops", ">", 1.0),)
        assert spec.objectives == (("throughput_gops", True),)
        assert spec.select == ("throughput_gops", "power_watts")
        assert hash(spec) == hash(QuerySpec(**spec.to_dict()))

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown metric 'nope'"):
            QuerySpec(metric="nope")

    def test_metric_alias_resolves(self):
        path, kind = resolve_metric("total_latency_ms")
        assert path == METRIC_ALIASES["total_latency_ms"]
        assert kind == "num"

    def test_derived_metric_resolves(self):
        assert "multiplication_saving_factor" in DERIVED_METRICS
        path, kind = resolve_metric("multiplication_saving_factor")
        assert kind == "num"

    def test_every_scalar_column_resolves(self):
        for path, kind in SCALAR_COLUMNS:
            got_path, got_kind = resolve_metric(path)
            assert got_path == path
            assert got_kind == kind

    def test_maximize_without_metric_rejected(self):
        with pytest.raises(ValueError, match="maximize requires a metric"):
            QuerySpec(maximize=True)

    def test_top_k_and_limit_must_be_positive(self):
        with pytest.raises(ValueError, match="top_k must be >= 1"):
            QuerySpec(top_k=0)
        with pytest.raises(ValueError, match="limit must be >= 1"):
            QuerySpec(limit=-1)
        with pytest.raises(ValueError, match="must be int"):
            QuerySpec(limit=True)

    def test_where_validation(self):
        with pytest.raises(ValueError, match="triples"):
            QuerySpec(where=[["throughput_gops", ">"]])
        with pytest.raises(ValueError, match="unknown where operator"):
            QuerySpec(where=[["throughput_gops", "~", 1.0]])
        with pytest.raises(ValueError, match="must be a number"):
            QuerySpec(where=[["throughput_gops", ">", "fast"]])
        with pytest.raises(ValueError, match="requires a numeric metric"):
            QuerySpec(where=[["name", ">", "a"]])
        with pytest.raises(ValueError, match="must be a string"):
            QuerySpec(where=[["name", "==", 3]])
        with pytest.raises(ValueError, match="must be a boolean"):
            QuerySpec(where=[["shared_data_transform", "==", 1]])
        # Valid forms of each kind.
        QuerySpec(where=[["throughput_gops", ">=", 2]])
        QuerySpec(where=[["name", "!=", "m2"]])
        QuerySpec(where=[["shared_data_transform", "==", True]])

    def test_objectives_require_bool_direction(self):
        with pytest.raises(ValueError, match="maximize-bool"):
            QuerySpec(objectives=[["throughput_gops", 1]])
        with pytest.raises(ValueError, match="maximize-bool"):
            QuerySpec(objectives=[["throughput_gops"]])

    def test_select_entries_validated(self):
        with pytest.raises(ValueError, match="unknown metric"):
            QuerySpec(select=["throughput_gops", "bogus"])


class TestRoundTrip:
    def test_to_dict_from_dict_round_trips(self):
        spec = QuerySpec(
            fingerprint="abc",
            network="vgg16-d",
            where=[["throughput_gops", ">", 10.0], ["name", "==", "m2"]],
            metric="total_latency_ms",
            maximize=False,
            select=["total_latency_ms", "throughput_gops"],
            top_k=5,
            limit=2,
        )
        data = spec.to_dict()
        assert json.loads(json.dumps(data)) == data  # JSON-clean
        assert QuerySpec.from_dict(data) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown query fields \\['nope'\\]"):
            QuerySpec.from_dict({"nope": 1})

    def test_from_dict_rejects_non_mapping(self):
        with pytest.raises(ValueError, match="must be a mapping"):
            QuerySpec.from_dict([1, 2])

    def test_from_dict_rejects_scalar_where(self):
        with pytest.raises(ValueError, match="where must be a list"):
            QuerySpec.from_dict({"where": "throughput_gops > 1"})
        with pytest.raises(ValueError, match="select must be a list"):
            QuerySpec.from_dict({"select": "throughput_gops"})


class TestCursorCodec:
    def test_round_trip(self):
        token = encode_cursor("deadbeef", "segment-000001.col", 42, "b" * 16)
        decoded = decode_cursor(token)
        assert decoded == {
            "v": 1,
            "k": "deadbeef",
            "s": "segment-000001.col",
            "o": 42,
            "q": "b" * 16,
        }

    def test_token_is_url_safe(self):
        token = encode_cursor("k", "s", 7, "q")
        assert "=" not in token
        assert all(c.isalnum() or c in "-_" for c in token)

    @pytest.mark.parametrize(
        "bad", ["", "!!!", "bm90IGpzb24", encode_cursor("k", "s", 1, "q")[:-4] + "AAAA"]
    )
    def test_garbage_rejected(self, bad):
        with pytest.raises(ValueError, match="invalid cursor"):
            decode_cursor(bad)

    def test_wrong_version_rejected(self):
        import base64

        raw = json.dumps({"v": 99, "k": "k", "s": "s", "o": 0, "q": "q"}).encode()
        token = base64.urlsafe_b64encode(raw).decode().rstrip("=")
        with pytest.raises(ValueError, match="unsupported cursor version"):
            decode_cursor(token)

    def test_negative_offset_rejected(self):
        import base64

        raw = json.dumps({"v": 1, "k": "k", "s": "s", "o": -1, "q": "q"}).encode()
        token = base64.urlsafe_b64encode(raw).decode().rstrip("=")
        with pytest.raises(ValueError, match="bad row offset"):
            decode_cursor(token)


class TestBindingHash:
    def test_ordering_fields_bind(self):
        base = QuerySpec(metric="throughput_gops")
        assert base.binding_hash("query") == QuerySpec(
            metric="throughput_gops"
        ).binding_hash("query")
        # Anything that reshapes the row ordering must change the hash.
        assert base.binding_hash("query") != base.binding_hash("pareto")
        assert (
            base.binding_hash("query")
            != QuerySpec(metric="power_watts").binding_hash("query")
        )
        assert (
            base.binding_hash("query")
            != QuerySpec(metric="throughput_gops", maximize=False).binding_hash("query")
        )
        assert (
            base.binding_hash("query")
            != QuerySpec(metric="throughput_gops", top_k=3).binding_hash("query")
        )
        assert (
            base.binding_hash("query")
            != QuerySpec(
                metric="throughput_gops", where=[["power_watts", "<", 5]]
            ).binding_hash("query")
        )

    def test_pagination_fields_do_not_bind(self):
        # limit and cursor only slice the ordering; a cursor minted at one
        # page size must stay valid when the client changes limit.
        a = QuerySpec(metric="throughput_gops", limit=2)
        b = QuerySpec(metric="throughput_gops", limit=500)
        assert a.binding_hash("query") == b.binding_hash("query")

    def test_key_does_not_bind(self):
        # Result identity travels in the cursor's "k" slot, not the hash.
        a = QuerySpec(key="aaaa", metric="throughput_gops")
        b = QuerySpec(key="bbbb", metric="throughput_gops")
        assert a.binding_hash("query") == b.binding_hash("query")

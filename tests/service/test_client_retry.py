"""ServiceClient retry/backoff against a deliberately flaky fake server.

The fake is a raw TCP listener that hard-closes its first N connections
(a connection *error*, not an HTTP error response) and then serves a
canned JSON answer — exactly the blip pattern a restarting server or a
dropping proxy produces.  The contract under test: retries are opt-in,
GET-only, backoff actually waits, and HTTP error responses are never
retried.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.service import ServiceClient


class FlakyServer:
    """A TCP server that resets its first ``failures`` connections.

    After the budget is spent, every connection gets a minimal valid
    HTTP/1.1 JSON response (status configurable).  ``connections`` counts
    every accepted socket, so tests can assert exactly how many attempts
    a client made.
    """

    def __init__(self, failures: int, status: int = 200, body: dict | None = None):
        self.failures = failures
        self.status = status
        self.body = {"status": "ok"} if body is None else body
        self.connections = 0
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.port = self._listener.getsockname()[1]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        self._listener.settimeout(0.1)
        while not self._stop.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with conn:
                self.connections += 1
                if self.connections <= self.failures:
                    # Hard reset: SO_LINGER 0 makes close() send RST, the
                    # unambiguous "connection error" a dead server gives.
                    conn.setsockopt(
                        socket.SOL_SOCKET,
                        socket.SO_LINGER,
                        b"\x01\x00\x00\x00\x00\x00\x00\x00",
                    )
                    continue
                try:
                    conn.settimeout(5.0)
                    conn.recv(65536)  # drain the request; content ignored
                    data = json.dumps(self.body).encode()
                    conn.sendall(
                        (
                            f"HTTP/1.1 {self.status} X\r\n"
                            "Content-Type: application/json\r\n"
                            f"Content-Length: {len(data)}\r\n"
                            "Connection: close\r\n\r\n"
                        ).encode()
                        + data
                    )
                except OSError:
                    pass

    def close(self) -> None:
        self._stop.set()
        self._thread.join(5.0)
        self._listener.close()


@pytest.fixture()
def flaky():
    servers = []

    def make(failures: int, status: int = 200, body: dict | None = None) -> FlakyServer:
        server = FlakyServer(failures, status=status, body=body)
        servers.append(server)
        return server

    yield make
    for server in servers:
        server.close()


def test_no_retries_by_default(flaky):
    """retries=0 (the default): the first connection error propagates."""
    server = flaky(failures=1)
    client = ServiceClient(port=server.port, timeout=5.0)
    with pytest.raises(OSError):
        client.health()
    assert server.connections == 1


def test_get_retries_through_transient_failures(flaky):
    """retries=3 survives 3 resets and returns the 4th, real, answer."""
    server = flaky(failures=3)
    client = ServiceClient(port=server.port, timeout=5.0, retries=3, backoff_s=0.01)
    assert client.health() == {"status": "ok"}
    assert server.connections == 4


def test_retries_exhausted_raises_the_connection_error(flaky):
    server = flaky(failures=10)
    client = ServiceClient(port=server.port, timeout=5.0, retries=2, backoff_s=0.01)
    with pytest.raises(OSError):
        client.health()
    assert server.connections == 3  # 1 try + 2 retries, then give up


def test_post_is_never_auto_retried(flaky):
    """Non-idempotent requests fail fast even with retries enabled."""
    server = flaky(failures=1)
    client = ServiceClient(port=server.port, timeout=5.0, retries=5, backoff_s=0.01)
    with pytest.raises(OSError):
        client._request("POST", "/v1/jobs", {"spec": {}})
    assert server.connections == 1


def test_http_error_responses_are_not_retried(flaky):
    """A 500 is an answer, not a blip: no retry, raised as ServiceError."""
    from repro.service import ServiceError

    server = flaky(failures=0, status=500, body={"error": "boom"})
    client = ServiceClient(port=server.port, timeout=5.0, retries=5, backoff_s=0.01)
    with pytest.raises(ServiceError) as excinfo:
        client.health()
    assert excinfo.value.status == 500
    assert server.connections == 1


def test_backoff_actually_waits_and_grows(flaky):
    """Two retries at backoff_s=0.1 must take >= 0.05 + 0.1 jittered-min."""
    server = flaky(failures=2)
    client = ServiceClient(port=server.port, timeout=5.0, retries=2, backoff_s=0.1)
    started = time.monotonic()
    assert client.health() == {"status": "ok"}
    elapsed = time.monotonic() - started
    # Jitter scales each delay into [0.5, 1.0]×: minimum 0.05 + 0.1.
    assert elapsed >= 0.15
    assert server.connections == 3

"""End-to-end HTTP tests: ResultServer + ServiceClient over a real socket.

The server runs on an ephemeral port inside a background event-loop
thread; the client is the ordinary synchronous :class:`ServiceClient`.
The acceptance-critical test is ``test_evaluate_bit_identical_to_serial``:
HTTP ``evaluate`` responses must be byte-for-byte the serial
``iter_explore`` results (after both sides pass through the persistence
round trip, which drops only the non-persisted ``engine`` provenance).
"""

from __future__ import annotations

import asyncio
import pickle
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.design_space import SweepSpec
from repro.dse import ExecutorConfig, iter_explore
from repro.experiments import ExperimentSpec, run_experiment
from repro.experiments.persistence import point_from_dict, point_to_dict
from repro.reporting import campaign_report_payload
from repro.service import (
    InfeasibleDesignError,
    ResultServer,
    ResultStore,
    ServiceClient,
    ServiceError,
)

SPEC = ExperimentSpec(
    networks=("vgg16-d", "alexnet"),
    devices=("xc7vx485t",),
    sweeps=(
        SweepSpec(
            m_values=(2, 3, 4),
            multiplier_budgets=(256, 512),
            frequencies_mhz=(150.0, 200.0),
        ),
    ),
    name="server-test",
)


def normalize(point):
    """A point as the wire sees it: persistence round trip (engine=None)."""
    return point_from_dict(point_to_dict(point))


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """A live server on an ephemeral port + a client + the backing store."""
    store = ResultStore(tmp_path_factory.mktemp("store"))
    loop = asyncio.new_event_loop()
    server = ResultServer(store, port=0, batch_window_ms=1.0, quiet=True)
    started = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10.0)
    client = ServiceClient(port=server.port)
    yield server, client, store
    asyncio.run_coroutine_threadsafe(server.close(), loop).result(10.0)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(10.0)


@pytest.fixture(scope="module")
def stored(service):
    """The test campaign submitted through the HTTP API."""
    _, client, _ = service
    receipt = client.submit_campaign(SPEC)
    return receipt


@pytest.fixture(scope="module")
def reference():
    """The same campaign run in-process."""
    return run_experiment(SPEC)


class TestHealthAndErrors:
    def test_health(self, service):
        _, client, store = service
        payload = client.health()
        assert payload["status"] == "ok"
        assert payload["store"]["results"] == len(store)
        assert "batcher" in payload

    def test_unknown_route_404(self, service):
        _, client, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/v1/nope")
        assert excinfo.value.status == 404

    def test_unknown_result_404(self, service):
        _, client, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.result("does-not-exist")
        assert excinfo.value.status == 404

    def test_bad_json_400(self, service):
        server, _, _ = service
        import http.client

        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            connection.request(
                "POST", "/v1/evaluate", body="{broken",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            assert b"not valid JSON" in response.read()
        finally:
            connection.close()

    def test_unknown_evaluate_field_400(self, service):
        _, client, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.evaluate_raw(network="vgg16-d", m=3, bogus=1)
        assert excinfo.value.status == 400
        assert "bogus" in excinfo.value.message

    def test_unknown_network_400(self, service):
        _, client, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.evaluate_raw(network="not-a-net", m=3)
        assert excinfo.value.status == 400

    def test_non_finite_frequency_400(self, service):
        # json.loads accepts the non-standard NaN/Infinity tokens; they
        # must be rejected, not fed to the batch math as poison values.
        server, _, _ = service
        import http.client

        for token in ("NaN", "Infinity"):
            connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
            try:
                connection.request(
                    "POST", "/v1/evaluate",
                    body='{"network": "vgg16-d", "m": 3, "frequency_mhz": %s}' % token,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                assert response.status == 400
                assert b"finite" in response.read()
            finally:
                connection.close()

    def test_campaign_wrongly_typed_spec_400(self, service):
        # from_dict raises TypeError for this shape; still a client error.
        _, client, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.submit_campaign({"networks": 5})
        assert excinfo.value.status == 400

    def test_bad_content_length_drops_cleanly(self, service):
        server, client, _ = service
        import http.client

        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            connection.putrequest("POST", "/v1/evaluate", skip_accept_encoding=True)
            connection.putheader("Content-Length", "abc")
            connection.endheaders()
            with pytest.raises((http.client.HTTPException, OSError)):
                connection.getresponse().read()
        finally:
            connection.close()
        # The server survives the malformed request.
        assert client.health()["status"] == "ok"


class TestEvaluate:
    def test_evaluate_bit_identical_to_serial(self, service):
        """Acceptance criterion: HTTP responses == iter_explore, pickled."""
        _, client, _ = service
        sweep = SPEC.sweeps[0]
        serial = [
            pickle.dumps(normalize(point))
            for point in iter_explore(
                "vgg16-d",
                sweep,
                devices="xc7vx485t",
                executor=ExecutorConfig(mode="serial"),
                cache=False,
            )
        ]
        served = []
        for entry in sweep.configurations():
            try:
                point = client.evaluate(
                    "vgg16-d",
                    m=entry.m,
                    r=entry.r,
                    multiplier_budget=entry.multiplier_budget,
                    frequency_mhz=entry.frequency_mhz,
                    shared_data_transform=entry.shared_data_transform,
                    device="xc7vx485t",
                )
            except InfeasibleDesignError:
                continue
            served.append(pickle.dumps(point))
        assert served == serial

    def test_concurrent_evaluates_coalesce_and_match(self, service):
        server, client, _ = service
        sweep = SPEC.sweeps[0]
        entries = list(sweep.configurations())
        batches_before = server.batcher.stats.batches

        def one(entry):
            return client.evaluate_raw(
                network="alexnet",
                m=entry.m,
                r=entry.r,
                multiplier_budget=entry.multiplier_budget,
                frequency_mhz=entry.frequency_mhz,
                shared_data_transform=entry.shared_data_transform,
                device="xc7vx485t",
            )

        with ThreadPoolExecutor(max_workers=8) as pool:
            payloads = list(pool.map(one, entries))

        serial = {
            pickle.dumps(normalize(point))
            for point in iter_explore(
                "alexnet",
                sweep,
                devices="xc7vx485t",
                executor=ExecutorConfig(mode="serial"),
                cache=False,
            )
        }
        served = {
            pickle.dumps(point_from_dict(payload["point"]))
            for payload in payloads
            if payload["feasible"]
        }
        assert served == serial
        # The 12 concurrent requests arrived inside shared windows.
        assert server.batcher.stats.batches - batches_before < len(entries)

    def test_infeasible_raises_with_message(self, service):
        _, client, _ = service
        with pytest.raises(InfeasibleDesignError, match="cannot host one"):
            client.evaluate("vgg16-d", m=4, multiplier_budget=16)

    def test_oversized_tile_rejected_400(self, service):
        # An unbounded m would wedge the single evaluation worker on
        # transform generation for tens of seconds; the server must stop
        # it before it reaches the batcher.
        _, client, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.evaluate_raw(network="vgg16-d", m=128)
        assert excinfo.value.status == 400
        assert "exceeds the evaluate limit" in excinfo.value.message
        # Degenerate m still flows through as an ordinary per-entry error.
        payload = client.evaluate_raw(network="vgg16-d", m=0)
        assert payload["feasible"] is False


class TestStoredQueries:
    def test_campaign_receipt(self, stored, reference):
        assert stored["fingerprint"] == SPEC.fingerprint()
        assert stored["evaluations"] == reference.evaluations
        assert stored["feasible"] == reference.feasible
        assert stored["summary"]

    def test_results_listing(self, service, stored):
        _, client, _ = service
        records = client.results(network="vgg16-d")
        assert any(record["key"] == stored["key"] for record in records)
        assert client.results(network="resnet18") == []

    def test_full_result_fetch(self, service, stored, reference):
        _, client, _ = service
        payload = client.result(stored["key"])
        assert payload["evaluations"] == reference.evaluations
        assert len(payload["points"]) == reference.feasible

    def test_pareto_matches_in_process(self, service, stored, reference):
        _, client, _ = service
        fronts = client.pareto(key=stored["key"])
        expected = reference.pareto_fronts()
        assert set(fronts) == set(expected)
        for name, front in expected.items():
            assert [pickle.dumps(point) for point in fronts[name]] == [
                pickle.dumps(normalize(point)) for point in front
            ]

    def test_pareto_by_fingerprint(self, service, reference):
        _, client, _ = service
        fronts = client.pareto(fingerprint=SPEC.fingerprint())
        assert set(fronts) == set(reference.pareto_fronts())

    def test_query_top_k(self, service, stored, reference):
        _, client, _ = service
        top = client.query(
            key=stored["key"], network="vgg16-d", metric="throughput_gops", top_k=3
        )
        expected = sorted(
            reference.select(network="vgg16-d"),
            key=lambda point: point.throughput_gops,
            reverse=True,
        )[:3]
        assert [pickle.dumps(point) for point in top] == [
            pickle.dumps(normalize(point)) for point in expected
        ]

    def test_best(self, service, stored, reference):
        _, client, _ = service
        best = client.best("power_efficiency", key=stored["key"])
        assert pickle.dumps(best) == pickle.dumps(
            normalize(reference.best("power_efficiency"))
        )

    def test_report(self, service, stored, reference):
        _, client, _ = service
        report = client.report(stored["key"], metric="throughput_gops")
        expected = campaign_report_payload(reference, "throughput_gops")
        assert report["summary"] == expected["summary"]
        assert report["comparison"] == expected["comparison"]

    def test_query_unknown_metric_400(self, service, stored):
        _, client, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.query(key=stored["key"], metric="nonsense")
        assert excinfo.value.status == 400

    def test_report_unknown_metric_400(self, service, stored):
        _, client, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.report(stored["key"], metric="nonsense")
        assert excinfo.value.status == 400

    def test_pareto_non_bool_maximize_400(self, service, stored):
        # A truthy non-bool ("min") must not silently maximize.
        _, client, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.pareto(key=stored["key"], objectives=[["total_latency_ms", "min"]])
        assert excinfo.value.status == 400
        assert "maximize-bool" in excinfo.value.message

    def test_no_match_404(self, service):
        _, client, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.best("throughput_gops", fingerprint="f" * 64)
        assert excinfo.value.status == 404

    def test_campaign_bad_spec_400(self, service):
        _, client, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.submit_campaign({"networks": ["vgg16-d"], "bogus_field": 1})
        assert excinfo.value.status == 400
        assert "bogus_field" in excinfo.value.message

    def test_resubmit_dedups_to_same_key(self, service, stored):
        # Evaluation is deterministic and the content key excludes run
        # provenance (timings, cache stats), so re-running the same spec
        # dedups to the already-stored result: computed once, served
        # forever.
        _, client, store = service
        before = len(store)
        receipt = client.submit_campaign(SPEC)
        assert receipt["key"] == stored["key"]
        assert receipt["fingerprint"] == stored["fingerprint"]
        assert len(store) == before


class TestQuerySpecSurface:
    """The unified QuerySpec vocabulary over HTTP: where/select/pagination."""

    def test_where_filters_rows(self, service, stored, reference):
        _, client, _ = service
        points = client.query(
            key=stored["key"],
            where=[["m", "==", 2], ["throughput_gops", ">", 0]],
        )
        expected = [p for p in reference.points if p.m == 2 and p.throughput_gops > 0]
        assert [pickle.dumps(p) for p in points] == [
            pickle.dumps(normalize(p)) for p in expected
        ]

    def test_select_projects_flat_rows(self, service, stored, reference):
        _, client, _ = service
        rows = client.query(
            key=stored["key"],
            metric="throughput_gops",
            top_k=2,
            select=["name", "throughput_gops", "multiplication_saving_factor"],
        )
        expected = sorted(
            reference.points, key=lambda p: p.throughput_gops, reverse=True
        )[:2]
        assert rows == [
            {
                "name": p.name,
                "throughput_gops": p.throughput_gops,
                "multiplication_saving_factor": p.multiplication_saving_factor,
            }
            for p in expected
        ]

    def test_query_page_and_cursor(self, service, stored):
        _, client, _ = service
        first = client.query_page(key=stored["key"], metric="throughput_gops", limit=5)
        assert first["count"] == 5
        assert len(first["points"]) == 5
        assert first["total"] > 5
        assert first["next_cursor"]

        # Follow cursors to the end: page sizes honour limit, the union
        # is exactly the unpaginated ordering, and the last page has no
        # continuation.
        pages = [first]
        while pages[-1]["next_cursor"]:
            pages.append(
                client.query_page(
                    key=stored["key"],
                    metric="throughput_gops",
                    limit=5,
                    cursor=pages[-1]["next_cursor"],
                )
            )
        assert all(page["count"] <= 5 for page in pages)
        assert pages[-1]["next_cursor"] is None
        everything = client.query_page(key=stored["key"], metric="throughput_gops")
        assert [row for page in pages for row in page["points"]] == everything["points"]

    def test_default_limit_is_applied(self, service, stored):
        _, client, _ = service
        page = client.query_page(key=stored["key"])
        assert page["count"] == page["total"]  # small store: one page
        assert page["next_cursor"] is None

    def test_iter_query_drains_all_pages(self, service, stored, reference):
        _, client, _ = service
        points = list(
            client.iter_query(
                key=stored["key"], metric="throughput_gops", maximize=True, limit=3
            )
        )
        expected = sorted(
            reference.points, key=lambda p: p.throughput_gops, reverse=True
        )
        assert [pickle.dumps(p) for p in points] == [
            pickle.dumps(normalize(p)) for p in expected
        ]

    def test_pareto_pagination_merges_to_full_fronts(self, service, stored, reference):
        _, client, _ = service
        full = client.pareto(key=stored["key"])  # cursors followed internally

        # Drain raw pages by hand and merge: must reassemble the exact
        # same per-network fronts the one-shot call returned.
        merged = {}
        cursor = None
        while True:
            page = client.pareto_page(key=stored["key"], limit=2, cursor=cursor)
            assert sum(len(front) for front in page["fronts"].values()) <= 2
            for network, front in page["fronts"].items():
                merged.setdefault(network, []).extend(front)
            cursor = page["next_cursor"]
            if cursor is None:
                break
        assert set(merged) == set(full)
        for network in full:
            assert [point_from_dict(row) for row in merged[network]] == full[network]

        # An explicit limit on the legacy shim means exactly one page.
        one_page = client.pareto(key=stored["key"], limit=2)
        assert sum(len(front) for front in one_page.values()) == 2

    def test_bad_cursor_400(self, service, stored):
        _, client, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.query_page(key=stored["key"], cursor="not-a-cursor")
        assert excinfo.value.status == 400
        assert "invalid cursor" in excinfo.value.message

    def test_cursor_query_shape_mismatch_400(self, service, stored):
        _, client, _ = service
        first = client.query_page(key=stored["key"], metric="throughput_gops", limit=2)
        with pytest.raises(ServiceError) as excinfo:
            client.query_page(
                key=stored["key"], metric="power_watts", limit=2,
                cursor=first["next_cursor"],
            )
        assert excinfo.value.status == 400
        assert "different query" in excinfo.value.message

    def test_unknown_query_field_400(self, service, stored):
        _, client, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.query_page(key=stored["key"], sort_by="throughput_gops")
        assert excinfo.value.status == 400

    def test_bad_where_400(self, service, stored):
        _, client, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.query_page(key=stored["key"], where=[["throughput_gops", "~", 1]])
        assert excinfo.value.status == 400
        assert "unknown where operator" in excinfo.value.message

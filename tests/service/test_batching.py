"""Heterogeneous batch evaluation + the asyncio micro-batcher.

The load-bearing property everywhere: a request's outcome never depends
on which other requests share its batch — batched evaluation is
bit-identical (pickled bytes) to evaluating each request alone through
the scalar path.
"""

from __future__ import annotations

import asyncio
import pickle
import random

import pytest

from repro.core.design_space import GridEntry, SweepSpec
from repro.dse import (
    BatchOutcome,
    EvalRequest,
    ExecutorConfig,
    evaluate_requests,
    iter_explore,
)
from repro.service import MicroBatcher

SPEC = SweepSpec(
    m_values=(2, 3, 4),
    multiplier_budgets=(64, 256, 512, None),
    frequencies_mhz=(150.0, 200.0),
)
ENTRIES = list(SPEC.configurations())


def interleaved_requests() -> list:
    """Every (network, device) cell interleaved entry-by-entry."""
    return [
        EvalRequest(network, device, entry)
        for entry in ENTRIES
        for network in ("vgg16-d", "alexnet")
        for device in ("xc7vx485t", "xc7vx690t")
    ]


def serial_reference(requests) -> list:
    """Each request evaluated alone through the scalar engine."""
    return [
        evaluate_requests([request], cache=False, vectorized=False)[0]
        for request in requests
    ]


def assert_outcomes_identical(got, expected) -> None:
    assert [outcome.error for outcome in got] == [outcome.error for outcome in expected]
    assert [
        pickle.dumps(outcome.point) for outcome in got
    ] == [pickle.dumps(outcome.point) for outcome in expected]


class TestEvaluateRequests:
    def test_bit_identical_to_serial(self):
        requests = interleaved_requests()
        assert_outcomes_identical(
            evaluate_requests(requests, cache=False), serial_reference(requests)
        )

    def test_matches_iter_explore_per_cell(self):
        requests = [EvalRequest("vgg16-d", "xc7vx485t", entry) for entry in ENTRIES]
        outcomes = evaluate_requests(requests, cache=False)
        explored = list(
            iter_explore(
                "vgg16-d",
                SPEC,
                devices="xc7vx485t",
                executor=ExecutorConfig(mode="serial"),
                cache=False,
            )
        )
        feasible = [outcome.point for outcome in outcomes if outcome.feasible]
        assert [pickle.dumps(point) for point in feasible] == [
            pickle.dumps(point) for point in explored
        ]

    def test_batch_composition_is_invisible(self):
        """A request's outcome is the same in any shuffled superset batch."""
        requests = interleaved_requests()
        alone = evaluate_requests([requests[7]], cache=False)[0]
        shuffled = list(requests)
        random.Random(2019).shuffle(shuffled)
        batched = evaluate_requests(shuffled, cache=False)
        index = shuffled.index(requests[7])
        assert pickle.dumps(batched[index].point) == pickle.dumps(alone.point)

    def test_infeasible_outcomes_carry_scalar_messages(self):
        # budget too small for one PE: same message the scalar path raises.
        tiny_budget = EvalRequest(
            "vgg16-d", "xc7vx485t", GridEntry(4, 3, 16, 200.0, True)
        )
        outcome = evaluate_requests([tiny_budget])[0]
        assert not outcome.feasible
        assert "cannot host one F(4,3) PE" in outcome.error
        with pytest.raises(ValueError, match="cannot host one"):
            next(
                iter_explore(
                    "vgg16-d",
                    SweepSpec(
                        m_values=(4,), multiplier_budgets=(16,), frequencies_mhz=(200.0,)
                    ),
                    devices="xc7vx485t",
                    skip_infeasible=False,
                    executor=ExecutorConfig(mode="serial"),
                )
            )

    def test_serial_and_vectorized_report_same_errors(self):
        requests = interleaved_requests() + [
            EvalRequest("vgg16-d", "xc7vx485t", GridEntry(2, 3, 4, 200.0, True)),
        ]
        assert_outcomes_identical(
            evaluate_requests(requests, cache=False, vectorized=True),
            evaluate_requests(requests, cache=False, vectorized=False),
        )

    def test_outcome_shape(self):
        outcome = evaluate_requests(
            [EvalRequest("alexnet", "xc7vx485t", ENTRIES[0])], cache=False
        )[0]
        assert isinstance(outcome, BatchOutcome)
        assert outcome.feasible
        assert outcome.error is None

    def test_empty_batch(self):
        assert evaluate_requests([]) == []


class TestMicroBatcher:
    def drive(self, requests, **kwargs):
        """Submit all requests concurrently; return (outcomes, batcher)."""

        async def main():
            batcher = MicroBatcher(**kwargs)
            outcomes = await asyncio.gather(
                *(batcher.submit(request) for request in requests)
            )
            await batcher.close()
            return outcomes, batcher

        return asyncio.run(main())

    def test_coalesced_outcomes_bit_identical(self):
        requests = interleaved_requests()
        outcomes, batcher = self.drive(requests, window_ms=1.0, cache=False)
        assert_outcomes_identical(outcomes, serial_reference(requests))
        # Concurrent submissions actually coalesced.
        assert batcher.stats.requests == len(requests)
        assert batcher.stats.batches < len(requests)
        assert batcher.stats.largest_batch > 1

    def test_max_batch_dispatches_early(self):
        requests = interleaved_requests()[:8]
        outcomes, batcher = self.drive(
            requests, window_ms=60_000.0, max_batch=4, cache=False
        )
        # A pathological window would hang forever; max_batch=4 must cut
        # batches loose at 4 pending (the final flush drains any tail).
        assert batcher.stats.batches >= 2
        assert batcher.stats.largest_batch <= 4
        assert all(outcome.feasible for outcome in outcomes)

    def test_single_request(self):
        outcomes, batcher = self.drive(
            [EvalRequest("vgg16-d", "xc7vx485t", ENTRIES[1])], window_ms=0.0
        )
        assert outcomes[0].feasible
        assert batcher.stats.batches == 1

    def test_closed_batcher_refuses(self):
        async def main():
            batcher = MicroBatcher()
            await batcher.close()
            with pytest.raises(RuntimeError, match="closed"):
                await batcher.submit(EvalRequest("vgg16-d", "xc7vx485t", ENTRIES[0]))

        asyncio.run(main())

    def test_stats_dict(self):
        _, batcher = self.drive(interleaved_requests()[:4], window_ms=1.0)
        stats = batcher.stats.to_dict()
        assert stats["requests"] == 4
        assert stats["errors"] == 0
        assert stats["mean_batch_size"] >= 1.0

    def test_validation(self):
        with pytest.raises(ValueError, match="window_ms"):
            MicroBatcher(window_ms=-1.0)
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(max_batch=0)

"""Tests for layer descriptors."""

import pytest

from repro.nn.layers import ConvLayer, FullyConnectedLayer, InputSpec, PoolLayer


class TestInputSpec:
    def test_shape(self):
        spec = InputSpec(batch=2, channels=3, height=224, width=224)
        assert spec.shape == (2, 3, 224, 224)

    def test_invalid(self):
        with pytest.raises(ValueError):
            InputSpec(batch=0)


class TestConvLayer:
    def test_same_padding_preserves_size(self):
        layer = ConvLayer("c", 3, 64, 224, 224, kernel_size=3, padding=1)
        assert layer.output_height == 224
        assert layer.output_width == 224
        assert layer.output_shape == (1, 64, 224, 224)

    def test_valid_convolution_shrinks(self):
        layer = ConvLayer("c", 3, 8, 32, 32, kernel_size=3, padding=0)
        assert layer.output_height == 30

    def test_stride_and_padding(self):
        layer = ConvLayer("c", 3, 96, 227, 227, kernel_size=11, stride=4, padding=0)
        assert layer.output_height == 55  # AlexNet conv1

    def test_nhwck_vgg_conv1_1(self):
        layer = ConvLayer("conv1_1", 3, 64, 224, 224, padding=1)
        assert layer.nhwck == 224 * 224 * 3 * 64

    def test_macs_and_flops(self):
        layer = ConvLayer("c", 2, 4, 8, 8, padding=1)
        assert layer.macs == layer.nhwck * 9
        assert layer.flops == 2 * layer.macs

    def test_weight_count(self):
        layer = ConvLayer("c", 16, 32, 8, 8)
        assert layer.weight_count == 32 * 16 * 9

    def test_output_pixels_with_batch(self):
        layer = ConvLayer("c", 3, 4, 10, 10, padding=1, batch=4)
        assert layer.output_pixels == 4 * 10 * 10

    def test_with_batch(self):
        layer = ConvLayer("c", 3, 4, 10, 10, padding=1)
        rebatched = layer.with_batch(8)
        assert rebatched.batch == 8
        assert rebatched.nhwck == 8 * layer.nhwck
        assert layer.batch == 1  # original untouched

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"in_channels": 0},
            {"out_channels": 0},
            {"height": 0},
            {"kernel_size": 0},
            {"stride": 0},
            {"padding": -1},
            {"batch": 0},
        ],
    )
    def test_validation(self, kwargs):
        params = dict(name="c", in_channels=3, out_channels=4, height=8, width=8)
        params.update(kwargs)
        with pytest.raises(ValueError):
            ConvLayer(**params)


class TestPoolLayer:
    def test_output_shape(self):
        pool = PoolLayer("p", channels=64, height=224, width=224, pool_size=2, stride=2)
        assert pool.output_shape == (1, 64, 112, 112)

    def test_flops_positive(self):
        pool = PoolLayer("p", channels=8, height=8, width=8)
        assert pool.flops > 0

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            PoolLayer("p", channels=8, height=8, width=8, mode="median")


class TestFullyConnectedLayer:
    def test_macs(self):
        fc = FullyConnectedLayer("fc", 4096, 1000)
        assert fc.macs == 4096 * 1000
        assert fc.flops == 2 * fc.macs
        assert fc.weight_count == 4096 * 1000

    def test_invalid(self):
        with pytest.raises(ValueError):
            FullyConnectedLayer("fc", 0, 10)

"""Tests for the functional forward-pass runner."""

import numpy as np
import pytest

from repro.nn import ConvLayer, InputSpec, Network, PoolLayer
from repro.nn.inference import (
    avg_pool2d,
    generate_weights,
    max_pool2d,
    relu,
    run_forward,
)


class TestActivationsAndPooling:
    def test_relu(self):
        x = np.array([-1.0, 0.0, 2.5])
        np.testing.assert_array_equal(relu(x), [0.0, 0.0, 2.5])

    def test_max_pool(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = max_pool2d(x, 2, 2)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = avg_pool2d(x, 2, 2)
        np.testing.assert_array_equal(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])


class TestWeights:
    def test_deterministic(self, tiny_network):
        first = generate_weights(tiny_network, seed=3)
        second = generate_weights(tiny_network, seed=3)
        for name in first:
            np.testing.assert_array_equal(first[name], second[name])

    def test_shapes(self, tiny_network):
        weights = generate_weights(tiny_network)
        assert weights["c1"].shape == (8, 3, 3, 3)
        assert weights["c3"].shape == (16, 8, 3, 3)


class TestForwardPass:
    def test_backends_agree(self, tiny_network, rng):
        x = rng.standard_normal(tiny_network.input_spec.shape)
        weights = generate_weights(tiny_network, seed=1)
        direct = run_forward(tiny_network, x, weights, backend="direct")
        im2col = run_forward(tiny_network, x, weights, backend="im2col")
        winograd = run_forward(tiny_network, x, weights, backend="winograd", m=4)
        np.testing.assert_allclose(direct.output, im2col.output, atol=1e-9)
        np.testing.assert_allclose(direct.output, winograd.output, atol=1e-8)

    def test_winograd_backend_m_values(self, tiny_network, rng):
        x = rng.standard_normal(tiny_network.input_spec.shape)
        weights = generate_weights(tiny_network, seed=2)
        reference = run_forward(tiny_network, x, weights, backend="direct").output
        for m in (2, 3):
            result = run_forward(tiny_network, x, weights, backend="winograd", m=m)
            np.testing.assert_allclose(result.output, reference, atol=1e-8)

    def test_pooling_applied(self, rng):
        network = Network("pooled", InputSpec(1, 2, 8, 8))
        network.add(ConvLayer("c1", 2, 4, 8, 8))
        network.add(PoolLayer("p1", channels=4, height=8, width=8))
        result = run_forward(network, backend="direct", seed=0)
        assert result.output.shape == (1, 4, 4, 4)

    def test_stop_after_and_layer_outputs(self, tiny_network, rng):
        x = rng.standard_normal(tiny_network.input_spec.shape)
        result = run_forward(
            tiny_network, x, backend="direct", keep_layer_outputs=True, stop_after="c2"
        )
        assert set(result.layer_outputs) == {"c1", "c2"}

    def test_unknown_backend(self, tiny_network):
        with pytest.raises(ValueError):
            run_forward(tiny_network, backend="fft")

    def test_relu_effect(self, tiny_network, rng):
        x = rng.standard_normal(tiny_network.input_spec.shape)
        weights = generate_weights(tiny_network, seed=5)
        with_relu = run_forward(tiny_network, x, weights, apply_relu=True)
        without = run_forward(tiny_network, x, weights, apply_relu=False)
        assert with_relu.output.min() >= 0
        assert without.output.min() < 0

    def test_strided_and_1x1_layers_fall_back(self, rng):
        network = Network("mixed", InputSpec(1, 3, 12, 12))
        network.add(ConvLayer("strided", 3, 4, 12, 12, stride=2, padding=1))
        network.add(ConvLayer("pointwise", 4, 8, 6, 6, kernel_size=1, padding=0))
        x = rng.standard_normal(network.input_spec.shape)
        weights = generate_weights(network, seed=7)
        direct = run_forward(network, x, weights, backend="direct")
        winograd = run_forward(network, x, weights, backend="winograd", m=4)
        np.testing.assert_allclose(direct.output, winograd.output, atol=1e-9)

"""Tests for the reference (spatial) convolution implementations."""

import numpy as np
import pytest

from repro.nn.reference import conv_output_shape, direct_conv2d, im2col, im2col_conv2d


class TestOutputShape:
    def test_same_padding(self):
        assert conv_output_shape(224, 224, 3, 1, 1) == (224, 224)

    def test_valid(self):
        assert conv_output_shape(10, 8, 3) == (8, 6)

    def test_stride(self):
        assert conv_output_shape(227, 227, 11, 4, 0) == (55, 55)

    def test_too_small(self):
        with pytest.raises(ValueError):
            conv_output_shape(2, 2, 5)


class TestDirectConv:
    def test_known_small_case(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 2.0
        out = direct_conv2d(x, w)
        np.testing.assert_array_equal(out[0, 0], 2.0 * x[0, 0, 1:3, 1:3])

    def test_channel_accumulation(self, rng):
        x = rng.standard_normal((1, 3, 6, 6))
        w = rng.standard_normal((1, 3, 3, 3))
        out = direct_conv2d(x, w)
        manual = sum(
            direct_conv2d(x[:, c : c + 1], w[:, c : c + 1]) for c in range(3)
        )
        np.testing.assert_allclose(out, manual, atol=1e-12)

    def test_stride_two(self, rng):
        x = rng.standard_normal((1, 2, 9, 9))
        w = rng.standard_normal((2, 2, 3, 3))
        out = direct_conv2d(x, w, stride=2)
        assert out.shape == (1, 2, 4, 4)
        # Spot-check one output pixel.
        expected = np.sum(x[0, :, 2:5, 4:7] * w[1])
        assert out[0, 1, 1, 2] == pytest.approx(expected)

    def test_batch_independence(self, rng):
        x = rng.standard_normal((2, 2, 7, 7))
        w = rng.standard_normal((3, 2, 3, 3))
        out = direct_conv2d(x, w, padding=1)
        single = direct_conv2d(x[1:], w, padding=1)
        np.testing.assert_allclose(out[1:], single, atol=1e-12)

    def test_linearity(self, rng):
        x = rng.standard_normal((1, 2, 6, 6))
        y = rng.standard_normal((1, 2, 6, 6))
        w = rng.standard_normal((2, 2, 3, 3))
        np.testing.assert_allclose(
            direct_conv2d(x + 3 * y, w),
            direct_conv2d(x, w) + 3 * direct_conv2d(y, w),
            atol=1e-10,
        )

    def test_validation_errors(self, rng):
        with pytest.raises(ValueError):
            direct_conv2d(rng.standard_normal((1, 2, 6, 6)), rng.standard_normal((2, 3, 3, 3)))
        with pytest.raises(ValueError):
            direct_conv2d(rng.standard_normal((2, 6, 6)), rng.standard_normal((2, 2, 3, 3)))
        with pytest.raises(ValueError):
            direct_conv2d(rng.standard_normal((1, 2, 6, 6)), rng.standard_normal((2, 2, 3, 2)))


class TestIm2col:
    def test_shape(self, rng):
        x = rng.standard_normal((2, 3, 8, 8))
        cols = im2col(x, 3, padding=1)
        assert cols.shape == (2, 3 * 9, 64)

    def test_conv_agreement_with_direct(self, rng):
        x = rng.standard_normal((2, 3, 9, 7))
        w = rng.standard_normal((4, 3, 3, 3))
        for padding in (0, 1):
            np.testing.assert_allclose(
                im2col_conv2d(x, w, padding=padding),
                direct_conv2d(x, w, padding=padding),
                atol=1e-10,
            )

    def test_strided_agreement(self, rng):
        x = rng.standard_normal((1, 3, 11, 11))
        w = rng.standard_normal((2, 3, 5, 5))
        np.testing.assert_allclose(
            im2col_conv2d(x, w, stride=2, padding=2),
            direct_conv2d(x, w, stride=2, padding=2),
            atol=1e-10,
        )

    def test_rank_validation(self, rng):
        with pytest.raises(ValueError):
            im2col(rng.standard_normal((3, 8, 8)), 3)

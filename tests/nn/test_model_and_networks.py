"""Tests for the Network container and the reference network builders."""

import pytest

from repro.nn import (
    FullyConnectedLayer,
    Network,
    alexnet,
    resnet18,
    resnet34,
    vgg,
    vgg16_d,
    vgg16_group_workloads,
)


class TestNetworkContainer:
    def test_add_and_iterate(self, tiny_network):
        assert len(tiny_network) == 3
        assert [layer.name for layer in tiny_network] == ["c1", "c2", "c3"]

    def test_layer_lookup(self, tiny_network):
        assert tiny_network.layer("c2").out_channels == 8
        with pytest.raises(KeyError):
            tiny_network.layer("missing")

    def test_conv_groups(self, tiny_network):
        groups = tiny_network.conv_groups()
        assert list(groups) == ["G1", "G2"]
        assert len(groups["G1"]) == 2

    def test_totals(self, tiny_network):
        assert tiny_network.total_conv_flops == 2 * tiny_network.total_conv_macs
        assert tiny_network.total_conv_nhwck == sum(
            layer.nhwck for layer in tiny_network.conv_layers
        )

    def test_uniform_kernel_size(self, tiny_network):
        assert tiny_network.uniform_kernel_size() == 3

    def test_with_batch(self, tiny_network):
        rebatched = tiny_network.with_batch(4)
        assert rebatched.total_conv_macs == 4 * tiny_network.total_conv_macs
        assert rebatched.input_spec.batch == 4

    def test_summary_mentions_layers(self, tiny_network):
        text = tiny_network.summary()
        assert "c1" in text and "total conv MACs" in text


class TestVgg:
    def test_vgg16_d_structure(self, vgg16):
        convs = vgg16.conv_layers
        assert len(convs) == 13
        assert vgg16.uniform_kernel_size() == 3
        assert {layer.group for layer in convs} == {f"Conv{i}" for i in range(1, 6)}

    def test_vgg16_d_total_flops(self, vgg16):
        # The well-known ~30.7 GFLOPs of VGG-16's convolutional part.
        assert vgg16.total_conv_flops == pytest.approx(30.69e9, rel=0.01)

    def test_vgg16_weights(self, vgg16):
        # ~14.7M conv weights + ~124M fc weights.
        assert vgg16.total_weights == pytest.approx(138.3e6, rel=0.02)

    def test_group_workloads_match_paper(self):
        workloads = vgg16_group_workloads()
        assert workloads["Conv1"] == 224 * 224 * (3 * 64 + 64 * 64)
        assert workloads["Conv5"] == 14 * 14 * 3 * (512 * 512)
        assert set(workloads) == {f"Conv{i}" for i in range(1, 6)}

    def test_other_configs(self):
        assert len(vgg("A").conv_layers) == 8
        assert len(vgg("B").conv_layers) == 10
        assert len(vgg("E").conv_layers) == 16

    def test_config_c_has_1x1(self):
        sizes = vgg("C").kernel_sizes()
        assert 1 in sizes and 3 in sizes

    def test_unknown_config(self):
        with pytest.raises(ValueError):
            vgg("Z")

    def test_no_classifier(self):
        network = vgg16_d(include_classifier=False)
        assert not any(isinstance(layer, FullyConnectedLayer) for layer in network.layers)

    def test_batch_scaling(self):
        assert vgg16_d(batch=2).total_conv_macs == 2 * vgg16_d().total_conv_macs


class TestAlexnetResnet:
    def test_alexnet_structure(self):
        network = alexnet()
        assert network.layer("conv1").kernel_size == 11
        assert network.layer("conv3").kernel_size == 3
        assert network.kernel_sizes() == (3, 5, 11)
        # AlexNet conv MACs ~0.66-1.1 G depending on grouping convention.
        assert 0.5e9 < network.total_conv_macs < 1.5e9

    def test_resnet18_structure(self):
        network = resnet18()
        convs = network.conv_layers
        # stem + 8 blocks x 2 convs + 3 projections = 20
        assert len(convs) == 20
        assert network.layer("conv1").kernel_size == 7
        assert network.total_conv_macs == pytest.approx(1.8e9, rel=0.2)

    def test_resnet34_deeper_than_18(self):
        assert len(resnet34().conv_layers) > len(resnet18().conv_layers)
        assert resnet34().total_conv_macs > resnet18().total_conv_macs

    def test_resnet_spatial_shapes_consistent(self):
        network = resnet18()
        for layer in network.conv_layers:
            assert layer.output_height >= 1
            assert layer.output_width >= 1

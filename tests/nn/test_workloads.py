"""Tests for workload aggregation helpers."""

import pytest

from repro.nn import alexnet
from repro.nn.workloads import (
    group_workloads,
    layer_workload,
    network_workloads,
    total_spatial_operations,
    winograd_eligible_layers,
)


class TestLayerWorkload:
    def test_fields(self, vgg16):
        layer = vgg16.conv_layers[0]
        workload = layer_workload(layer)
        assert workload.name == "conv1_1"
        assert workload.nhwck == layer.nhwck
        assert workload.spatial_ops == 2 * workload.macs
        assert workload.gops == pytest.approx(workload.spatial_ops / 1e9)


class TestNetworkWorkloads:
    def test_per_layer_count(self, vgg16):
        assert len(network_workloads(vgg16)) == 13

    def test_group_aggregation_matches_total(self, vgg16):
        groups = group_workloads(vgg16)
        assert set(groups) == {f"Conv{i}" for i in range(1, 6)}
        assert sum(g.spatial_ops for g in groups.values()) == vgg16.total_conv_flops
        assert sum(g.nhwck for g in groups.values()) == vgg16.total_conv_nhwck

    def test_group_kernel_size_uniform(self, vgg16):
        groups = group_workloads(vgg16)
        assert all(g.kernel_size == 3 for g in groups.values())

    def test_total_spatial_operations(self, vgg16):
        assert total_spatial_operations(vgg16) == vgg16.total_conv_flops


class TestEligibility:
    def test_vgg_fully_eligible(self, vgg16):
        assert len(winograd_eligible_layers(vgg16)) == 13

    def test_alexnet_partially_eligible(self):
        network = alexnet()
        eligible = winograd_eligible_layers(network)
        assert {layer.name for layer in eligible} == {"conv3", "conv4", "conv5"}

    def test_other_kernel_size(self, vgg16):
        assert winograd_eligible_layers(vgg16, r=5) == []

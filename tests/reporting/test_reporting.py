"""Tests for the reporting helpers."""


from repro.reporting import (
    bar_chart,
    format_comparison,
    format_ratio,
    format_table,
    grouped_series,
    rows_to_csv,
)


class TestFormatTable:
    def test_basic_rendering(self):
        rows = [{"name": "a", "value": 1.234}, {"name": "b", "value": 10}]
        text = format_table(rows, title="demo")
        assert "demo" in text
        assert "1.23" in text
        assert "10" in text
        assert text.count("\n") >= 4

    def test_column_selection_and_missing(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["a", "c"])
        assert "b" not in text.splitlines()[0]

    def test_empty(self):
        assert format_table([], title="empty") == "empty"

    def test_nan_rendered_as_dash(self):
        text = format_table([{"x": float("nan")}])
        assert "-" in text

    def test_large_numbers_have_separators(self):
        text = format_table([{"luts": 232256.0}])
        assert "232,256" in text


class TestCsv:
    def test_roundtrip(self):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        text = rows_to_csv(rows)
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,x"

    def test_empty(self):
        assert rows_to_csv([]) == ""


class TestComparison:
    def test_format_ratio(self):
        text = format_ratio(2.0, 1.0)
        assert "x2.00" in text

    def test_format_ratio_zero_published(self):
        assert "paper" in format_ratio(1.5, 0.0)

    def test_format_comparison(self):
        text = format_comparison({"throughput": 1094.0}, {"throughput": 1094.3}, title="T2")
        assert "T2" in text
        assert "1.00" in text

    def test_missing_published_value(self):
        text = format_comparison({"extra": 5.0}, {})
        assert "extra" in text


class TestCharts:
    def test_bar_chart(self):
        text = bar_chart({"a": 1.0, "bb": 2.0}, title="chart", unit=" G")
        assert "chart" in text
        assert "#" in text
        assert "bb" in text

    def test_bar_chart_empty(self):
        assert bar_chart({}, title="none") == "none"

    def test_bar_chart_zero_values(self):
        text = bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in text

    def test_grouped_series(self):
        text = grouped_series({"s1": {"x": 1.0}, "s2": {"x": 3.0}}, title="fig")
        assert "[s1]" in text and "[s2]" in text
        assert "fig" in text

    def test_grouped_series_empty(self):
        assert grouped_series({}, title="t") == "t"

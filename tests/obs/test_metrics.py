"""Unit tests for the stdlib metrics core: registry, families, exposition.

The acceptance-critical pieces: counters stay exact under concurrent
increments from many threads (the server updates them from HTTP
connections and executor threads at once), histogram quantile estimates
agree with NumPy reference quantiles up to bucket resolution, and the
text exposition is byte-exact Prometheus 0.0.4 (golden test with a tiny
bucket set).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.obs import DEFAULT_LATENCY_BUCKETS, MetricsRegistry
from repro.obs.metrics import Counter, Gauge, Histogram


class TestCounter:
    def test_unlabelled_inc_and_value(self):
        counter = Counter("c_total", "help text")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = Counter("c_total", "help")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_labelled_children_are_independent(self):
        counter = Counter("req_total", "help", labelnames=("route",))
        counter.labels("/a").inc()
        counter.labels(route="/b").inc(3)
        assert counter.labels("/a").value == 1
        assert counter.labels("/b").value == 3
        # Same label values -> the same child object.
        assert counter.labels("/a") is counter.labels(route="/a")

    def test_labelled_family_rejects_bare_inc(self):
        counter = Counter("req_total", "help", labelnames=("route",))
        with pytest.raises(ValueError, match="labelled"):
            counter.inc()
        with pytest.raises(ValueError, match="labelled"):
            counter.value

    def test_label_cardinality_and_names_validated(self):
        counter = Counter("req_total", "help", labelnames=("route", "status"))
        with pytest.raises(ValueError, match="2 label"):
            counter.labels("/a")
        with pytest.raises(ValueError, match="unknown label"):
            counter.labels(nope="/a")
        with pytest.raises(ValueError, match="positionally or by name"):
            counter.labels("/a", status="200")

    def test_thread_safety_exact_under_concurrent_increments(self):
        """8 threads x 10_000 increments must land exactly, not roughly."""
        counter = Counter("c_total", "help")
        labelled = Counter("l_total", "help", labelnames=("who",))
        barrier = threading.Barrier(8)

        def hammer(index: int) -> None:
            child = labelled.labels(str(index % 2))
            barrier.wait()
            for _ in range(10_000):
                counter.inc()
                child.inc()

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 80_000
        assert labelled.labels("0").value == 40_000
        assert labelled.labels("1").value == 40_000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g", "help")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2.5)
        assert gauge.value == 12.5

    def test_callback_gauge_reads_live_value(self):
        box = {"value": 1.0}
        gauge = Gauge("g", "help", callback=lambda: box["value"])
        assert gauge.samples() == [((), 1.0)]
        box["value"] = 7.0
        assert gauge.samples() == [((), 7.0)]
        with pytest.raises(ValueError, match="callback"):
            gauge.set(3)

    def test_labelled_callback_exports_whole_family(self):
        gauge = Gauge(
            "shards", "help", labelnames=("state",),
            callback=lambda: {("done",): 3, ("running",): 1},
        )
        assert gauge.samples() == [(("done",), 3.0), (("running",), 1.0)]

    def test_broken_callback_never_breaks_the_scrape(self):
        def boom():
            raise RuntimeError("scrape-time failure")

        gauge = Gauge("g", "help", callback=boom)
        assert gauge.samples() == []
        registry = MetricsRegistry()
        registry.gauge("g", "help", callback=boom)
        assert "# TYPE g gauge" in registry.exposition()


class TestHistogram:
    def test_buckets_validated(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram("h", "help", buckets=(2.0, 1.0))
        with pytest.raises(ValueError, match="sorted"):
            Histogram("h", "help", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="sorted"):
            Histogram("h", "help", buckets=())

    def test_observation_lands_in_le_inclusive_bucket(self):
        hist = Histogram("h", "help", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 4.0, 9.0):
            hist.observe(value)
        counts, total = hist._children[()].snapshot()
        # le=1 holds 0.5 and the boundary value 1.0; le=2 holds 1.5;
        # le=4 holds the boundary 4.0; +Inf holds 9.0.
        assert counts == [2, 1, 1, 1]
        assert total == pytest.approx(16.0)
        assert hist.count == 5

    def test_quantiles_match_numpy_reference_within_bucket_resolution(self):
        """Estimates must land in the same bucket as np.quantile's answer."""
        rng = np.random.default_rng(7)
        values = rng.lognormal(mean=-4.0, sigma=1.2, size=5_000)
        hist = Histogram("h", "help")  # DEFAULT_LATENCY_BUCKETS
        for value in values:
            hist.observe(float(value))
        bounds = (0.0, *DEFAULT_LATENCY_BUCKETS)
        for q in (0.50, 0.95, 0.99):
            reference = float(np.quantile(values, q))
            estimate = hist.quantile(q)
            # The bucket holding the true quantile bounds the estimate:
            # fixed-bucket histograms cannot do better, and must not do
            # worse (factor-2 buckets -> estimate within 2x of truth).
            index = next(
                i for i in range(1, len(bounds)) if reference <= bounds[i]
            )
            assert bounds[index - 1] <= estimate <= bounds[index]
            assert estimate == pytest.approx(reference, rel=1.0)

    def test_quantile_edge_cases(self):
        hist = Histogram("h", "help", buckets=(1.0, 2.0))
        assert hist.quantile(0.5) is None  # empty
        hist.observe(10.0)  # lands in +Inf
        # Clamped to the largest finite bound: an honest lower bound.
        assert hist.quantile(0.99) == 2.0
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_default_buckets_are_factor_two_log_spaced(self):
        assert len(DEFAULT_LATENCY_BUCKETS) == 21
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-4)
        for lo, hi in zip(DEFAULT_LATENCY_BUCKETS, DEFAULT_LATENCY_BUCKETS[1:]):
            assert hi == pytest.approx(2 * lo)


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help")
        second = registry.counter("c_total", "help")
        assert first is second

    def test_kind_or_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("m", "help")
        with pytest.raises(ValueError, match="different kind or label"):
            registry.gauge("m", "help")
        registry.counter("labelled", "help", labelnames=("a",))
        with pytest.raises(ValueError, match="different kind or label"):
            registry.counter("labelled", "help", labelnames=("b",))

    def test_exposition_golden(self):
        """Byte-exact Prometheus 0.0.4 text for a tiny known registry."""
        registry = MetricsRegistry()
        requests = registry.counter("req_total", "Requests.", labelnames=("route",))
        requests.labels("/a").inc(2)
        requests.labels('/b"\n\\').inc()  # label escaping: \ " newline
        registry.gauge("depth", "Queue depth.").set(4)
        hist = registry.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        assert registry.exposition() == (
            "# HELP depth Queue depth.\n"
            "# TYPE depth gauge\n"
            "depth 4\n"
            "# HELP lat_seconds Latency.\n"
            "# TYPE lat_seconds histogram\n"
            'lat_seconds_bucket{le="0.1"} 1\n'
            'lat_seconds_bucket{le="1"} 2\n'
            'lat_seconds_bucket{le="+Inf"} 3\n'
            "lat_seconds_sum 5.55\n"
            "lat_seconds_count 3\n"
            "# HELP req_total Requests.\n"
            "# TYPE req_total counter\n"
            'req_total{route="/a"} 2\n'
            'req_total{route="/b\\"\\n\\\\"} 1\n'
        )

    def test_to_dict_includes_percentiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", "help", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0):
            hist.observe(value)
        payload = registry.to_dict()
        entry = payload["lat"]["samples"][0]
        assert entry["count"] == 3
        assert entry["sum"] == pytest.approx(5.0)
        assert 0.0 < entry["p50"] <= 2.0
        assert payload["lat"]["type"] == "histogram"

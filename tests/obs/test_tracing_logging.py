"""Unit tests for trace-id propagation and the structured JSON logger."""

from __future__ import annotations

import io
import json
import threading

from repro.obs import (
    StructuredLogger,
    current_trace_id,
    get_logger,
    new_trace_id,
    set_trace_id,
    trace_context,
)
from repro.obs.tracing import TRACE_HEADER, TRACE_ID_PATTERN, valid_trace_id


class TestTracing:
    def test_new_trace_ids_are_well_formed_and_unique(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        for trace_id in ids:
            assert TRACE_ID_PATTERN.match(trace_id)
            assert len(trace_id) == 16

    def test_context_binding_and_reset(self):
        assert current_trace_id() is None
        token = set_trace_id("abc-123")
        assert current_trace_id() == "abc-123"
        token.var.reset(token)
        assert current_trace_id() is None

    def test_trace_context_mints_and_restores(self):
        with trace_context() as minted:
            assert current_trace_id() == minted
            with trace_context("explicit") as inner:
                assert inner == "explicit"
                assert current_trace_id() == "explicit"
            assert current_trace_id() == minted
        assert current_trace_id() is None

    def test_context_is_thread_local(self):
        seen = {}

        def body():
            seen["other"] = current_trace_id()

        with trace_context("main-thread-id"):
            thread = threading.Thread(target=body)
            thread.start()
            thread.join()
        assert seen["other"] is None  # fresh thread: no inherited binding

    def test_wire_validation(self):
        assert valid_trace_id("abc-DEF-123") == "abc-DEF-123"
        assert valid_trace_id(None) is None
        assert valid_trace_id("") is None
        assert valid_trace_id("bad id with spaces") is None
        assert valid_trace_id("x" * 65) is None  # too long
        assert valid_trace_id('evil"\n') is None  # no header injection
        assert TRACE_HEADER == "X-Repro-Trace-Id"


class TestStructuredLogger:
    def read(self, stream: io.StringIO) -> list:
        return [json.loads(line) for line in stream.getvalue().splitlines()]

    def test_single_line_json_with_fields(self):
        stream = io.StringIO()
        log = StructuredLogger("tester", stream=stream)
        record = log.event("unit.test", answer=42, name="x")
        lines = self.read(stream)
        assert len(lines) == 1
        assert lines[0] == record
        assert record["component"] == "tester"
        assert record["event"] == "unit.test"
        assert record["answer"] == 42
        assert isinstance(record["ts"], float)

    def test_trace_id_comes_from_context(self):
        stream = io.StringIO()
        log = StructuredLogger("tester", stream=stream)
        with trace_context("ctx-id"):
            log.event("with.context")
        log.event("without.context")
        log.event("explicit.override", trace_id="override-id")
        records = self.read(stream)
        assert records[0]["trace_id"] == "ctx-id"
        assert "trace_id" not in records[1]
        assert records[2]["trace_id"] == "override-id"

    def test_non_jsonable_fields_fall_back_to_repr(self):
        stream = io.StringIO()
        log = StructuredLogger("tester", stream=stream)
        log.event("weird", payload=object())
        (record,) = self.read(stream)
        assert "object object" in record["payload"]

    def test_disabled_logger_emits_nothing(self):
        stream = io.StringIO()
        log = get_logger("tester", stream=stream, enabled=False)
        assert log.event("dropped") is None
        assert stream.getvalue() == ""

"""Tests for the generic pipeline kernel."""

import pytest

from repro.sim.pipeline import Pipeline, PipelineStage


class TestPipelineStage:
    def test_latency_validation(self):
        with pytest.raises(ValueError):
            PipelineStage("bad", latency=0)

    def test_retire_after_latency(self):
        stage = PipelineStage("s", latency=3)
        stage.accept(0, "token")
        assert stage.retire(2) == []
        assert stage.retire(3) == ["token"]
        assert stage.occupancy == 0

    def test_transform_applied(self):
        stage = PipelineStage("s", latency=1, transform=lambda token: token * 2)
        stage.accept(0, 21)
        assert stage.retire(1) == [42]


class TestPipeline:
    def test_requires_stages(self):
        with pytest.raises(ValueError):
            Pipeline([])

    def test_depth(self):
        pipeline = Pipeline([PipelineStage("a", 2), PipelineStage("b", 3)])
        assert pipeline.depth == 5

    def test_single_token_latency(self):
        pipeline = Pipeline([PipelineStage("a", 2), PipelineStage("b", 3)])
        pipeline.push("x")
        completions = []
        for _ in range(10):
            completions.extend(pipeline.tick())
            if completions:
                break
        assert completions == ["x"]
        assert pipeline.cycle == pipeline.depth

    def test_throughput_one_per_cycle(self):
        pipeline = Pipeline([PipelineStage("a", 1), PipelineStage("b", 2)])
        tokens = list(range(20))
        completed = []
        for token in tokens:
            pipeline.push(token)
            completed.extend(pipeline.tick())
        completed.extend(pipeline.drain())
        assert completed == tokens
        # Total cycles = issue cycles + Dp - 1, exactly Eq. (9)'s fill term.
        assert pipeline.cycle == len(tokens) + pipeline.depth - 1

    def test_order_preserved(self):
        pipeline = Pipeline([PipelineStage("a", 3)])
        completed = []
        for token in "abcdef":
            pipeline.push(token)
            completed.extend(pipeline.tick())
        completed.extend(pipeline.drain())
        assert "".join(completed) == "abcdef"

    def test_in_flight_accounting(self):
        pipeline = Pipeline([PipelineStage("a", 2), PipelineStage("b", 2)])
        pipeline.push(1)
        pipeline.tick()
        pipeline.push(2)
        assert pipeline.in_flight == 2
        pipeline.drain()
        assert pipeline.in_flight == 0

    def test_stage_transforms_chain(self):
        pipeline = Pipeline(
            [
                PipelineStage("double", 1, transform=lambda value: value * 2),
                PipelineStage("inc", 1, transform=lambda value: value + 1),
            ]
        )
        pipeline.push(5)
        result = []
        for _ in range(5):
            result.extend(pipeline.tick())
        assert result == [11]

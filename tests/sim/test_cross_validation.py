"""Cross-validation: Eq. (9) ``network_latency`` vs cycle-level simulation.

The design-space exploration ranks configurations with the analytical
latency model; the simulator executes the actual dataflow cycle by cycle.
These tests close the loop for every tile size the paper sweeps (m = 2..6):

* on layers whose feature map divides evenly into ``m x m`` tiles (and whose
  kernel count divides the PE count), the two models agree *exactly* —
  Eq. (9)'s ``NHWCK / (m^2 P)`` term is the true issue count;
* on awkward shapes the analytical model undercounts by at most the tile /
  kernel-pass quantisation, which stays within the documented tolerance.
"""

import pytest

from repro.core.throughput import layer_cycles, network_latency
from repro.nn import ConvLayer, InputSpec, Network
from repro.sim.engine_sim import EngineSimConfig
from repro.sim.validation import validate_layer

#: Maximum tolerated disagreement (percent) between the analytical cycle
#: count and the simulated cycle count on non-divisible feature maps.  The
#: analytical model uses fractional tiles (NHWCK / m^2) while the engine
#: processes whole tiles, so the gap is bounded by the edge-tile ratio
#: ((ceil(H/m) ceil(W/m)) / (HW/m^2) - 1); for the >= 36x36 maps used here
#: that stays well under this bound for every m in 2..6.
CYCLE_TOLERANCE_PCT = 20.0

M_VALUES = (2, 3, 4, 5, 6)


@pytest.mark.parametrize("m", M_VALUES)
def test_exact_agreement_on_divisible_shapes(m):
    """60 is divisible by every m in 2..6 and K=4 divides P=2, so Eq. (9)
    matches the simulated cycle count exactly."""
    layer = ConvLayer("div", in_channels=3, out_channels=4, height=60, width=60, padding=1)
    config = EngineSimConfig(m=m, parallel_pes=2)
    validation = validate_layer(layer, config, functional=False)

    analytical = layer_cycles(layer, m, pes=2, pipeline_depth=config.pipeline_depth)
    assert validation.simulated_cycles == analytical
    assert validation.cycle_error_pct == 0.0


@pytest.mark.parametrize("m", M_VALUES)
def test_network_latency_matches_simulator_on_divisible_network(m):
    """Whole-network check: summed Eq. (9) latency equals summed simulation."""
    network = Network("cross-val", InputSpec(batch=1, channels=3, height=60, width=60))
    network.add(ConvLayer("c1", 3, 4, 60, 60, group="G1"))
    network.add(ConvLayer("c2", 4, 2, 60, 60, group="G2"))

    config = EngineSimConfig(m=m, parallel_pes=2)
    report = network_latency(
        network, m=m, pes=2, frequency_mhz=config.frequency_mhz,
        pipeline_depth=config.pipeline_depth,
    )

    simulated_cycles = 0
    for layer in network.conv_layers:
        validation = validate_layer(layer, config, functional=False)
        simulated_cycles += validation.simulated_cycles

    analytical_cycles = report.total_latency_ms * 1e-3 * config.frequency_mhz * 1e6
    assert simulated_cycles == pytest.approx(analytical_cycles, rel=1e-12)


@pytest.mark.parametrize("m", M_VALUES)
def test_within_tolerance_on_awkward_shapes(m):
    """46x38 divides by none of m in 3..6; the gap is pure tile quantisation
    and must stay within the calibration tolerance."""
    layer = ConvLayer("awk", in_channels=2, out_channels=6, height=46, width=38, padding=1)
    config = EngineSimConfig(m=m, parallel_pes=2)
    validation = validate_layer(layer, config, functional=False)

    analytical = layer_cycles(layer, m, pes=2, pipeline_depth=config.pipeline_depth)
    error_pct = 100.0 * abs(validation.simulated_cycles - analytical) / analytical
    assert error_pct <= CYCLE_TOLERANCE_PCT, (
        f"m={m}: simulated {validation.simulated_cycles} vs analytical "
        f"{analytical:.1f} ({error_pct:.2f}% > {CYCLE_TOLERANCE_PCT}%)"
    )
    # The simulator can only run *more* cycles than the ideal fractional
    # model (whole edge tiles, whole kernel passes), never fewer.
    assert validation.simulated_cycles >= analytical


def test_error_shrinks_with_feature_map_size():
    """The quantisation gap vanishes as maps grow — the regime the paper's
    VGG-16 numbers live in (224x224 down to 14x14)."""
    config = EngineSimConfig(m=5, parallel_pes=2)
    errors = []
    for size in (22, 46, 94):
        layer = ConvLayer(f"l{size}", in_channels=2, out_channels=2,
                          height=size, width=size, padding=1)
        validation = validate_layer(layer, config, functional=False)
        analytical = layer_cycles(layer, 5, pes=2, pipeline_depth=config.pipeline_depth)
        errors.append(abs(validation.simulated_cycles - analytical) / analytical)
    assert errors[0] > errors[-1]
    assert errors[-1] < 0.10

"""Tests for the cycle-level engine simulator."""

import numpy as np
import pytest

from repro.nn.layers import ConvLayer
from repro.nn.reference import direct_conv2d
from repro.sim.engine_sim import EngineSimConfig, WinogradEngineSim
from repro.sim.validation import validate_configuration, validate_layer


class TestConfig:
    def test_derived_quantities(self):
        config = EngineSimConfig(m=4, r=3, parallel_pes=19)
        assert config.multipliers_per_pe == 36
        assert config.total_multipliers == 684
        assert config.pipeline_depth == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            EngineSimConfig(m=0)
        with pytest.raises(ValueError):
            EngineSimConfig(m=2, parallel_pes=0)
        with pytest.raises(ValueError):
            EngineSimConfig(m=2, frequency_mhz=0)


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_matches_direct_conv(self, m, rng):
        layer = ConvLayer("l", in_channels=3, out_channels=5, height=12, width=10, padding=1)
        x = rng.standard_normal((1, 3, 12, 10))
        w = rng.standard_normal((5, 3, 3, 3))
        sim = WinogradEngineSim(EngineSimConfig(m=m, parallel_pes=2))
        result = sim.run_layer(layer, x, w)
        np.testing.assert_allclose(result.output, direct_conv2d(x, w, padding=1), atol=1e-9)

    def test_multiple_kernel_passes(self, rng):
        """K > P forces several passes over the feature map."""
        layer = ConvLayer("l", in_channels=2, out_channels=7, height=8, width=8, padding=1)
        x = rng.standard_normal((1, 2, 8, 8))
        w = rng.standard_normal((7, 2, 3, 3))
        sim = WinogradEngineSim(EngineSimConfig(m=2, parallel_pes=3))
        result = sim.run_layer(layer, x, w)
        np.testing.assert_allclose(result.output, direct_conv2d(x, w, padding=1), atol=1e-10)
        assert result.stats.kernel_passes == 3

    def test_batched_input(self, rng):
        layer = ConvLayer("l", in_channels=2, out_channels=4, height=8, width=8, padding=1, batch=2)
        x = rng.standard_normal((2, 2, 8, 8))
        w = rng.standard_normal((4, 2, 3, 3))
        sim = WinogradEngineSim(EngineSimConfig(m=3, parallel_pes=4))
        result = sim.run_layer(layer, x, w)
        np.testing.assert_allclose(result.output, direct_conv2d(x, w, padding=1), atol=1e-9)

    def test_no_padding(self, rng):
        layer = ConvLayer("l", in_channels=2, out_channels=2, height=10, width=10, padding=0)
        x = rng.standard_normal((1, 2, 10, 10))
        w = rng.standard_normal((2, 2, 3, 3))
        sim = WinogradEngineSim(EngineSimConfig(m=4, parallel_pes=2))
        result = sim.run_layer(layer, x, w)
        np.testing.assert_allclose(result.output, direct_conv2d(x, w, padding=0), atol=1e-9)


class TestTiming:
    def test_cycles_match_analytical(self, rng):
        layer = ConvLayer("l", in_channels=4, out_channels=8, height=16, width=16, padding=1)
        x = rng.standard_normal((1, 4, 16, 16))
        w = rng.standard_normal((8, 4, 3, 3))
        config = EngineSimConfig(m=2, parallel_pes=4)
        sim = WinogradEngineSim(config)
        result = sim.run_layer(layer, x, w, functional=False)
        assert result.stats.cycles == sim.analytical_cycles(layer)

    def test_timing_only_mode_skips_values(self, rng):
        layer = ConvLayer("l", in_channels=2, out_channels=2, height=8, width=8, padding=1)
        x = rng.standard_normal((1, 2, 8, 8))
        w = rng.standard_normal((2, 2, 3, 3))
        sim = WinogradEngineSim(EngineSimConfig(m=2, parallel_pes=2))
        result = sim.run_layer(layer, x, w, functional=False)
        assert np.all(result.output == 0)
        assert result.stats.cycles > 0

    def test_latency_ms(self, rng):
        layer = ConvLayer("l", in_channels=1, out_channels=1, height=6, width=6, padding=1)
        x = rng.standard_normal((1, 1, 6, 6))
        w = rng.standard_normal((1, 1, 3, 3))
        config = EngineSimConfig(m=2, parallel_pes=1, frequency_mhz=100.0)
        result = WinogradEngineSim(config).run_layer(layer, x, w)
        assert result.latency_ms() == pytest.approx(result.stats.cycles * 1e-5, rel=1e-9)

    def test_more_pes_fewer_cycles(self, rng):
        layer = ConvLayer("l", in_channels=2, out_channels=8, height=12, width=12, padding=1)
        x = rng.standard_normal((1, 2, 12, 12))
        w = rng.standard_normal((8, 2, 3, 3))
        few = WinogradEngineSim(EngineSimConfig(m=2, parallel_pes=2)).run_layer(layer, x, w)
        many = WinogradEngineSim(EngineSimConfig(m=2, parallel_pes=8)).run_layer(layer, x, w)
        assert many.stats.cycles < few.stats.cycles

    def test_issue_rate_near_one(self, rng):
        layer = ConvLayer("l", in_channels=4, out_channels=4, height=16, width=16, padding=1)
        x = rng.standard_normal((1, 4, 16, 16))
        w = rng.standard_normal((4, 4, 3, 3))
        result = WinogradEngineSim(EngineSimConfig(m=2, parallel_pes=4)).run_layer(layer, x, w)
        assert 0.9 < result.stats.effective_issue_rate <= 1.0


class TestInputValidation:
    def test_shape_mismatch_rejected(self, rng):
        layer = ConvLayer("l", in_channels=2, out_channels=2, height=8, width=8, padding=1)
        sim = WinogradEngineSim(EngineSimConfig(m=2, parallel_pes=2))
        with pytest.raises(ValueError):
            sim.run_layer(layer, rng.standard_normal((1, 3, 8, 8)), rng.standard_normal((2, 2, 3, 3)))
        with pytest.raises(ValueError):
            sim.run_layer(layer, rng.standard_normal((1, 2, 8, 8)), rng.standard_normal((2, 3, 3, 3)))

    def test_strided_layer_rejected(self, rng):
        layer = ConvLayer("l", in_channels=2, out_channels=2, height=8, width=8, padding=1, stride=2)
        sim = WinogradEngineSim(EngineSimConfig(m=2, parallel_pes=2))
        with pytest.raises(ValueError):
            sim.run_layer(layer, rng.standard_normal((1, 2, 8, 8)), rng.standard_normal((2, 2, 3, 3)))


class TestValidationHelpers:
    def test_validate_layer(self, small_layer):
        config = EngineSimConfig(m=2, parallel_pes=3)
        validation = validate_layer(small_layer, config)
        assert validation.numerically_correct
        assert validation.cycle_error_pct < 1.0

    def test_validate_configuration_defaults(self):
        results = validate_configuration(EngineSimConfig(m=3, parallel_pes=4))
        assert len(results) == 3
        assert all(result.numerically_correct for result in results)
        assert all(result.cycle_error_pct < 1.0 for result in results)

    def test_timing_only_validation(self, small_layer):
        validation = validate_layer(small_layer, EngineSimConfig(m=2, parallel_pes=2), functional=False)
        assert validation.max_abs_error == 0.0
        assert validation.numerically_correct

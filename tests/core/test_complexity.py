"""Tests for the Section III complexity models (Eqs. 4-7)."""

import pytest

from repro.core.complexity import (
    complexity_breakdown,
    conv_layers_of,
    implementation_transform_complexity,
    multiplication_complexity,
    multiplication_reduction,
    spatial_multiplications,
    transform_complexity,
)
from repro.winograd.op_count import count_transform_ops


class TestWorkloadNormalisation:
    def test_layer_and_list_and_network(self, vgg16, small_layer):
        assert conv_layers_of(small_layer) == [small_layer]
        assert conv_layers_of([small_layer]) == [small_layer]
        assert len(conv_layers_of(vgg16)) == 13

    def test_rejects_non_layers(self):
        with pytest.raises(TypeError):
            conv_layers_of(["not a layer"])


class TestEq4MultiplicationComplexity:
    def test_spatial_equals_nhwck_r2(self, vgg16):
        assert spatial_multiplications(vgg16) == vgg16.total_conv_nhwck * 9
        assert multiplication_complexity(vgg16, 1) == pytest.approx(
            spatial_multiplications(vgg16)
        )

    def test_fig1_conv1_values(self, vgg16):
        """Fig. 1's Conv1 bars: 1.936e9 spatial, 0.861e9 for F(2x2,3x3), ..."""
        conv1 = [layer for layer in vgg16.conv_layers if layer.group == "Conv1"]
        assert spatial_multiplications(conv1) == pytest.approx(1.936e9, rel=0.01)
        assert multiplication_complexity(conv1, 2) == pytest.approx(0.861e9, rel=0.01)
        assert multiplication_complexity(conv1, 3) == pytest.approx(0.598e9, rel=0.01)
        assert multiplication_complexity(conv1, 4) == pytest.approx(0.484e9, rel=0.01)
        assert multiplication_complexity(conv1, 7) == pytest.approx(0.356e9, rel=0.01)

    def test_fig1_conv5_values(self, vgg16):
        conv5 = [layer for layer in vgg16.conv_layers if layer.group == "Conv5"]
        assert spatial_multiplications(conv5) == pytest.approx(1.387e9, rel=0.01)
        assert multiplication_complexity(conv5, 4) == pytest.approx(0.347e9, rel=0.01)

    def test_monotonically_decreasing_in_m(self, vgg16):
        values = [multiplication_complexity(vgg16, m) for m in range(1, 9)]
        assert all(later < earlier for earlier, later in zip(values, values[1:]))

    def test_saving_factor_formula(self, small_layer):
        """Savings factor equals m^2 r^2 / (m + r - 1)^2."""
        for m in (2, 3, 4):
            expected = (m * m * 9) / ((m + 2) ** 2)
            breakdown = complexity_breakdown(small_layer, m)
            assert breakdown.multiplication_saving_factor == pytest.approx(expected)

    def test_invalid_m(self, small_layer):
        with pytest.raises(ValueError):
            multiplication_complexity(small_layer, 0)


class TestEq5Eq6TransformComplexity:
    def test_positive_and_growing_per_output(self, vgg16):
        values = {m: transform_complexity(vgg16, m) for m in (2, 4, 7)}
        assert all(value > 0 for value in values.values())
        # Overall transform work grows from m=2 to m=7 (Fig. 2 trend).
        assert values[7] > values[2]

    def test_megaflops_order_of_magnitude_matches_fig2(self, vgg16):
        """Fig. 2 reports 156-408 MFLOPs for the net transform complexity.

        Our counts are derived from the actual transform matrices and include
        every add/shift/constant multiply of the nested 2-D transforms, which
        lands a small constant factor above the paper's figures (the paper
        appears to use the per-element normalised counts of Lavin's Table 1);
        the comparison therefore checks the order of magnitude and the growth
        trend rather than the absolute numbers (recorded in EXPERIMENTS.md).
        """
        for m, published in ((2, 156e6), (4, 207e6), (6, 304e6)):
            measured = transform_complexity(vgg16, m)
            assert published / 5 < measured < published * 5

    def test_include_filter_flag(self, vgg16):
        with_filter = transform_complexity(vgg16, 3, include_filter=True)
        without = transform_complexity(vgg16, 3, include_filter=False)
        counts = count_transform_ops(3, 3)
        expected_difference = counts.gamma * sum(
            layer.in_channels * layer.out_channels for layer in vgg16.conv_layers
        )
        assert with_filter - without == pytest.approx(expected_difference)

    def test_explicit_op_counts(self, small_layer):
        counts = count_transform_ops(2, 3)
        assert transform_complexity(small_layer, 2, op_counts=counts) == pytest.approx(
            transform_complexity(small_layer, 2)
        )

    def test_breakdown_consistency(self, vgg16):
        breakdown = complexity_breakdown(vgg16, 4)
        assert breakdown.transform_ops == pytest.approx(
            breakdown.data_transform_ops
            + breakdown.filter_transform_ops
            + breakdown.inverse_transform_ops
        )
        assert breakdown.transform_ops == pytest.approx(transform_complexity(vgg16, 4))


class TestEq7ImplementationComplexity:
    def test_amortisation_over_pes(self, vgg16):
        """More PEs amortise the shared data transform (Eq. 7)."""
        one = implementation_transform_complexity(vgg16, 2, parallel_pes=1)
        sixteen = implementation_transform_complexity(vgg16, 2, parallel_pes=16)
        assert sixteen < one

    def test_formula(self, small_layer):
        counts = count_transform_ops(2, 3)
        pes = 4
        expected = small_layer.nhwck / 4 * (counts.beta / pes + counts.delta)
        assert implementation_transform_complexity(
            small_layer, 2, parallel_pes=pes
        ) == pytest.approx(expected)

    def test_paper_relative_increase_claim(self, vgg16):
        """Section IV-C: for F(2x2,3x3) with 16 PEs the transform overhead is
        ~1.5x the spatial-conv multiplications, vs ~2.33x for the per-PE design."""
        counts = count_transform_ops(2, 3)
        shared = implementation_transform_complexity(vgg16, 2, parallel_pes=16)
        spatial = spatial_multiplications(vgg16)
        ratio_shared = shared / spatial
        per_pe = vgg16.total_conv_nhwck / 4 * (counts.beta + counts.delta)
        ratio_per_pe = per_pe / spatial
        assert ratio_shared < ratio_per_pe
        assert 0.5 < ratio_shared < 2.5
        assert ratio_per_pe > ratio_shared * 1.3

    def test_invalid_pes(self, small_layer):
        with pytest.raises(ValueError):
            implementation_transform_complexity(small_layer, 2, parallel_pes=0)


class TestMultiplicationReduction:
    def test_matches_direct_computation(self, vgg16):
        reduction = multiplication_reduction(vgg16, 3, 4)
        before = multiplication_complexity(vgg16, 3)
        after = multiplication_complexity(vgg16, 4)
        assert reduction == pytest.approx((before - after) / before)

    def test_fig3_values(self, vgg16):
        """Fig. 3: the step-to-step multiplication decreases (56.25%, 30.56%, ...).

        The first step (spatial -> m=2) follows Eq. (4) as 1 - 4/9 = 55.6%;
        the paper's figure quotes 56.25% for it, a small rounding/derivation
        slip in the source, so only the Eq.-(4)-consistent value is asserted.
        All later steps match the paper exactly.
        """
        assert multiplication_reduction(vgg16, 1, 2) == pytest.approx(5.0 / 9.0, abs=1e-4)
        assert multiplication_reduction(vgg16, 2, 3) == pytest.approx(0.3056, abs=1e-3)
        assert multiplication_reduction(vgg16, 3, 4) == pytest.approx(0.19, abs=1e-3)
        assert multiplication_reduction(vgg16, 4, 5) == pytest.approx(0.1289, abs=1e-3)
        assert multiplication_reduction(vgg16, 6, 7) == pytest.approx(0.0702, abs=1e-3)

"""Tests for the Eq. 8-10 latency/throughput models."""

import pytest

from repro.core.throughput import (
    ideal_throughput_gops,
    layer_cycles,
    layer_latency_seconds,
    multiplier_efficiency,
    network_latency,
    parallel_pes,
    throughput_gops,
)


class TestEq8ParallelPEs:
    def test_floored_values(self):
        assert parallel_pes(2, 3, 256) == 16
        assert parallel_pes(3, 3, 256) == 10
        assert parallel_pes(4, 3, 700) == 19

    def test_fractional(self):
        assert parallel_pes(3, 3, 256, fractional=True) == pytest.approx(256 / 25)

    def test_invalid(self):
        with pytest.raises(ValueError):
            parallel_pes(0, 3, 256)
        with pytest.raises(ValueError):
            parallel_pes(2, 3, -1)


class TestEq9Latency:
    def test_layer_cycles_formula(self, small_layer):
        cycles = layer_cycles(small_layer, m=2, pes=4)
        assert cycles == pytest.approx(small_layer.nhwck / (4 * 4))

    def test_pipeline_fill_term(self, small_layer):
        base = layer_cycles(small_layer, m=2, pes=4)
        with_fill = layer_cycles(small_layer, m=2, pes=4, pipeline_depth=10)
        assert with_fill == pytest.approx(base + 9)

    def test_latency_seconds(self, small_layer):
        latency = layer_latency_seconds(small_layer, m=2, pes=4, frequency_mhz=200)
        assert latency == pytest.approx(layer_cycles(small_layer, 2, 4) * 5e-9)

    def test_invalid_inputs(self, small_layer):
        with pytest.raises(ValueError):
            layer_cycles(small_layer, m=2, pes=0)
        with pytest.raises(ValueError):
            layer_latency_seconds(small_layer, m=2, pes=4, frequency_mhz=0)

    def test_vgg_group_latencies_match_table2(self, vgg16):
        """Table II: the proposed m=4, P=19 design's per-group latencies."""
        report = network_latency(vgg16, m=4, pes=19, frequency_mhz=200)
        assert report.group_latency_ms["Conv1"] == pytest.approx(3.54, abs=0.01)
        assert report.group_latency_ms["Conv2"] == pytest.approx(5.07, abs=0.01)
        assert report.group_latency_ms["Conv3"] == pytest.approx(8.45, abs=0.01)
        assert report.group_latency_ms["Conv4"] == pytest.approx(8.45, abs=0.01)
        assert report.group_latency_ms["Conv5"] == pytest.approx(2.54, abs=0.01)
        assert report.total_latency_ms == pytest.approx(28.05, abs=0.05)

    def test_podili_latency_reproduced(self, vgg16):
        report = network_latency(vgg16, m=2, pes=16, frequency_mhz=200)
        assert report.total_latency_ms == pytest.approx(133.22, abs=0.2)

    def test_only_kernel_size_filter(self, vgg16):
        everything = network_latency(vgg16, m=2, pes=16, only_kernel_size=None)
        only3 = network_latency(vgg16, m=2, pes=16, only_kernel_size=3)
        assert everything.total_latency_ms == pytest.approx(only3.total_latency_ms)
        none_match = network_latency(vgg16, m=2, pes=16, only_kernel_size=5)
        assert none_match.total_latency_ms == 0.0


class TestEq10Throughput:
    def test_table2_throughputs(self, vgg16):
        assert throughput_gops(vgg16, 2, 256) == pytest.approx(230.4, rel=0.005)
        assert throughput_gops(vgg16, 2, 688) == pytest.approx(619.2, rel=0.005)
        assert throughput_gops(vgg16, 3, 700) == pytest.approx(907.2, rel=0.005)
        assert throughput_gops(vgg16, 4, 684) == pytest.approx(1094.3, rel=0.005)

    def test_multiplier_efficiency_table2(self, vgg16):
        thr = throughput_gops(vgg16, 4, 684)
        assert multiplier_efficiency(thr, 684) == pytest.approx(1.60, abs=0.01)
        with pytest.raises(ValueError):
            multiplier_efficiency(thr, 0)

    def test_ideal_fig6_values(self):
        """Fig. 6 series at 200 MHz (fractional PEs)."""
        assert ideal_throughput_gops(2, 3, 256) == pytest.approx(230.40, abs=0.1)
        assert ideal_throughput_gops(3, 3, 256) == pytest.approx(331.78, abs=0.5)
        assert ideal_throughput_gops(5, 3, 512) == pytest.approx(940.41, abs=1.0)
        assert ideal_throughput_gops(7, 3, 1024) == pytest.approx(2230.23, abs=2.0)
        # Spatial series uses floored PEs.
        assert ideal_throughput_gops(1, 3, 256, fractional_pes=False) == pytest.approx(100.8, abs=0.1)

    def test_throughput_scales_linearly_with_budget(self, vgg16):
        assert throughput_gops(vgg16, 2, 512) == pytest.approx(
            2 * throughput_gops(vgg16, 2, 256), rel=1e-6
        )

    def test_budget_too_small(self, vgg16):
        with pytest.raises(ValueError):
            throughput_gops(vgg16, 4, 10)

"""Tests for the proposed designs, the optimizer and the comparison builders."""

import pytest

from repro.core.comparison import headline_claims, performance_table, resource_table
from repro.core.proposed import PROPOSED_CONFIGS, optimize, proposed_designs


class TestProposedDesigns:
    def test_three_designs(self, vgg16):
        designs = proposed_designs(vgg16)
        assert [design.m for design in designs] == [2, 3, 4]
        assert [design.parallel_pes for design in designs] == [43, 28, 19]
        assert [design.multipliers for design in designs] == [688, 700, 684]

    def test_table2_metrics(self, vgg16):
        by_m = {design.m: design for design in proposed_designs(vgg16)}
        assert by_m[2].total_latency_ms == pytest.approx(49.57, abs=0.05)
        assert by_m[3].total_latency_ms == pytest.approx(33.83, abs=0.05)
        assert by_m[4].total_latency_ms == pytest.approx(28.05, abs=0.05)
        assert by_m[2].throughput_gops == pytest.approx(619.2, rel=0.005)
        assert by_m[3].throughput_gops == pytest.approx(907.2, rel=0.005)
        assert by_m[4].throughput_gops == pytest.approx(1094.3, rel=0.005)

    def test_configs_consistent_with_eq8(self):
        for m, config in PROPOSED_CONFIGS.items():
            per_pe = (m + 2) ** 2
            assert config["parallel_pes"] == config["multipliers"] // per_pe


class TestOptimizer:
    def test_throughput_optimum_is_largest_feasible_m(self, vgg16):
        result = optimize(vgg16, metric="throughput_gops", m_values=(2, 3, 4))
        assert result.best.m == 4
        assert len(result.explored) == 3

    def test_latency_metric_minimised(self, vgg16):
        result = optimize(vgg16, metric="total_latency_ms", m_values=(2, 3, 4))
        assert result.best.m == 4
        ranking = result.ranking
        assert ranking[0].total_latency_ms <= ranking[-1].total_latency_ms

    def test_power_efficiency_metric(self, vgg16):
        result = optimize(vgg16, metric="power_efficiency", m_values=(2, 3, 4, 5, 6))
        assert result.best.power_efficiency == max(
            point.power_efficiency for point in result.explored
        )

    def test_unknown_metric(self, vgg16):
        with pytest.raises(ValueError):
            optimize(vgg16, metric="nonexistent", m_values=(2,))


class TestComparisonTables:
    def test_performance_table_lineup(self, vgg16):
        points = performance_table(vgg16)
        names = [point.name for point in points]
        assert names[0] == "qiu-fpga16"
        assert names[1] == "podili-asap17"
        assert names[2] == "podili-normalized"
        assert names[3:] == ["proposed-m2", "proposed-m3", "proposed-m4"]

    def test_performance_table_ordering_matches_paper(self, vgg16):
        points = {point.name: point for point in performance_table(vgg16)}
        # Throughput ordering of Table II.
        assert (
            points["qiu-fpga16"].throughput_gops
            < points["podili-asap17"].throughput_gops
            < points["podili-normalized"].throughput_gops
            <= points["proposed-m2"].throughput_gops
            < points["proposed-m3"].throughput_gops
            < points["proposed-m4"].throughput_gops
        )

    def test_resource_table_m4(self, vgg16):
        table = resource_table(vgg16, m=4)
        reference = table["reference_design"]
        proposed = table["proposed_design"]
        assert reference.multipliers == proposed.multipliers == 684
        assert reference.resources.dsp_slices == proposed.resources.dsp_slices == 2736
        assert proposed.resources.luts < reference.resources.luts
        assert proposed.resources.registers < reference.resources.registers

    def test_resource_table_requires_known_m(self, vgg16):
        with pytest.raises(ValueError):
            resource_table(vgg16, m=6)
        # But works with an explicit PE count.
        table = resource_table(vgg16, m=2, parallel_pes=16)
        assert table["proposed_design"].m == 2


class TestHeadlineClaims:
    def test_claims_in_paper_regime(self, vgg16):
        claims = headline_claims(vgg16)
        assert claims.throughput_improvement == pytest.approx(4.75, abs=0.01)
        assert claims.multiplier_ratio == pytest.approx(2.67, abs=0.01)
        assert claims.multiplier_efficiency_best == pytest.approx(1.60, abs=0.01)
        # Resource/power models are calibrated, not synthesised: allow slack
        # around the published 53.6% and 1.44x figures.
        assert 40.0 < claims.lut_savings_pct < 65.0
        assert 1.2 < claims.power_efficiency_improvement_m2 < 2.0

    def test_as_dict(self, vgg16):
        claims = headline_claims(vgg16)
        as_dict = claims.as_dict()
        assert set(as_dict) == {
            "throughput_improvement",
            "power_efficiency_improvement_m2",
            "multiplier_ratio",
            "lut_savings_pct",
            "multiplier_efficiency_best",
        }

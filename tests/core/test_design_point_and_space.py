"""Tests for design-point evaluation and the design-space sweeps."""

import pytest

from repro.core.design_point import evaluate_design
from repro.core.design_space import (
    SweepSpec,
    best_by,
    explore,
    sweep_multiplier_budgets,
    sweep_tile_sizes,
)
from repro.hw.device import virtex7_485t


class TestEvaluateDesign:
    def test_proposed_m4(self, vgg16):
        point = evaluate_design(vgg16, m=4, parallel_pes=19, include_pipeline_depth=False)
        assert point.multipliers == 684
        assert point.throughput_gops == pytest.approx(1094.3, rel=0.005)
        assert point.multiplier_efficiency == pytest.approx(1.60, abs=0.01)
        assert point.power_watts > 0
        assert point.power_efficiency == pytest.approx(
            point.throughput_gops / point.power_watts
        )

    def test_multiplier_budget_path(self, vgg16):
        point = evaluate_design(vgg16, m=4, multiplier_budget=700, include_pipeline_depth=False)
        assert point.parallel_pes == 19

    def test_budget_too_small(self, vgg16):
        with pytest.raises(ValueError):
            evaluate_design(vgg16, m=4, multiplier_budget=20)

    def test_device_budget_default(self, vgg16):
        point = evaluate_design(vgg16, m=3)
        assert point.parallel_pes == 28  # 700 multipliers / 25 per PE

    def test_pipeline_depth_increases_latency(self, vgg16):
        without = evaluate_design(vgg16, m=2, parallel_pes=16, include_pipeline_depth=False)
        with_depth = evaluate_design(vgg16, m=2, parallel_pes=16, include_pipeline_depth=True)
        assert with_depth.total_latency_ms >= without.total_latency_ms
        # The fill term is negligible for VGG-sized layers (< 0.1% difference).
        assert with_depth.total_latency_ms == pytest.approx(without.total_latency_ms, rel=1e-3)

    def test_summary_row_keys(self, vgg16):
        row = evaluate_design(vgg16, m=2, parallel_pes=16).summary_row()
        assert {"m", "multipliers", "throughput_gops", "power_w"} <= set(row)
        assert "latency_conv1_ms" in row

    def test_speedup_and_ratio_helpers(self, vgg16):
        slow = evaluate_design(vgg16, m=2, parallel_pes=16, include_pipeline_depth=False)
        fast = evaluate_design(vgg16, m=4, parallel_pes=19, include_pipeline_depth=False)
        assert fast.speedup_over(slow) == pytest.approx(
            fast.throughput_gops / slow.throughput_gops
        )
        assert fast.multiplication_saving_factor > slow.multiplication_saving_factor - 3

    def test_shared_vs_reference_resources(self, vgg16):
        shared = evaluate_design(vgg16, m=4, parallel_pes=19, shared_data_transform=True)
        reference = evaluate_design(vgg16, m=4, parallel_pes=19, shared_data_transform=False)
        assert shared.resources.luts < reference.resources.luts
        assert shared.throughput_gops == pytest.approx(reference.throughput_gops, rel=1e-3)


class TestSweeps:
    def test_tile_size_sweep(self, vgg16):
        points = sweep_tile_sizes(vgg16, m_values=(2, 3, 4))
        assert [point.m for point in points] == [2, 3, 4]
        throughputs = [point.throughput_gops for point in points]
        assert throughputs[0] < throughputs[1] < throughputs[2]

    def test_budget_sweep(self, vgg16):
        points = sweep_multiplier_budgets(vgg16, m=2, budgets=(256, 512))
        assert len(points) == 2
        assert points[1].throughput_gops > points[0].throughput_gops

    def test_explore_grid_size(self, vgg16):
        spec = SweepSpec(
            m_values=(2, 3), multiplier_budgets=(256, 512), frequencies_mhz=(100.0, 200.0)
        )
        points = explore(vgg16, spec)
        assert len(points) == 8

    def test_explore_skips_infeasible(self, vgg16):
        spec = SweepSpec(m_values=(4,), multiplier_budgets=(10,))
        assert explore(vgg16, spec) == []
        with pytest.raises(ValueError):
            explore(vgg16, spec, skip_infeasible=False)

    def test_explore_respects_device(self, vgg16):
        points = explore(vgg16, SweepSpec(m_values=(4,)), device=virtex7_485t())
        assert points[0].device_name == "xc7vx485t"

    def test_best_by(self, vgg16):
        points = sweep_tile_sizes(vgg16, m_values=(2, 3, 4))
        best_throughput = best_by(points, "throughput_gops")
        assert best_throughput.m == 4
        fastest = best_by(points, "total_latency_ms", maximize=False)
        assert fastest.m == 4
        with pytest.raises(ValueError):
            best_by(points, "no_such_metric")
        with pytest.raises(ValueError):
            best_by([], "throughput_gops")


class TestBestByTieBreaking:
    """Regression tests: equal metrics must resolve by insertion order and
    NaN metrics must raise instead of silently winning or losing a sort."""

    def _tied_points(self, vgg16):
        # Same configuration evaluated twice under different names: every
        # metric is exactly equal, only the insertion order differs.
        first = evaluate_design(vgg16, m=4, parallel_pes=19, name="first")
        second = evaluate_design(vgg16, m=4, parallel_pes=19, name="second")
        return first, second

    def test_ties_resolve_to_first_inserted(self, vgg16):
        first, second = self._tied_points(vgg16)
        assert best_by([first, second], "throughput_gops").name == "first"
        assert best_by([second, first], "throughput_gops").name == "second"
        assert best_by([first, second], "total_latency_ms", maximize=False).name == "first"

    def test_tie_break_is_stable_under_distractors(self, vgg16):
        first, second = self._tied_points(vgg16)
        worse = evaluate_design(vgg16, m=2, parallel_pes=16, name="worse")
        assert best_by([worse, first, second], "throughput_gops").name == "first"
        assert best_by([first, worse, second], "throughput_gops").name == "first"

    def test_nan_metric_raises(self, vgg16):
        from dataclasses import replace

        point = evaluate_design(vgg16, m=4, parallel_pes=19, name="nan-point")
        poisoned = replace(point, throughput_gops=float("nan"))
        with pytest.raises(ValueError, match="NaN"):
            best_by([point, poisoned], "throughput_gops")
        with pytest.raises(ValueError, match="nan-point"):
            best_by([poisoned], "throughput_gops")

"""Tests for the Pareto-frontier and roofline analyses."""

import pytest

from repro.core.design_space import sweep_tile_sizes
from repro.core.pareto import Objective, dominates, pareto_front, pareto_rank
from repro.core.roofline import layer_operational_intensity, roofline_report
from repro.hw.device import FpgaDevice
from repro.nn import ConvLayer


@pytest.fixture(scope="module")
def sweep_points(vgg16_module):
    return sweep_tile_sizes(vgg16_module, m_values=(2, 3, 4, 5, 6))


@pytest.fixture(scope="module")
def vgg16_module():
    from repro.nn import vgg16_d

    return vgg16_d()


class TestObjective:
    def test_direction(self):
        maximize = Objective("throughput_gops", True)
        minimize = Objective("power_watts", False)
        assert maximize.better(2.0, 1.0)
        assert minimize.better(1.0, 2.0)
        assert maximize.no_worse(2.0, 2.0)

    def test_unknown_metric(self, sweep_points):
        with pytest.raises(ValueError):
            Objective("bogus").value(sweep_points[0])


class TestPareto:
    def test_dominance(self, sweep_points):
        by_m = {point.m: point for point in sweep_points}
        # Higher m has both higher throughput and higher power: no dominance
        # in the (throughput max, power min) plane.
        objectives = [("throughput_gops", True), ("power_watts", False)]
        assert not dominates(by_m[4], by_m[2], objectives)
        assert not dominates(by_m[2], by_m[4], objectives)
        # With throughput only, m=4 dominates m=2.
        assert dominates(by_m[4], by_m[2], ["throughput_gops"])

    def test_front_contains_extremes(self, sweep_points):
        objectives = [("throughput_gops", True), ("power_watts", False)]
        front = pareto_front(sweep_points, objectives)
        names = {point.name for point in front}
        best_throughput = max(sweep_points, key=lambda p: p.throughput_gops)
        lowest_power = min(sweep_points, key=lambda p: p.power_watts)
        assert best_throughput.name in names
        assert lowest_power.name in names

    def test_front_is_mutually_non_dominated(self, sweep_points):
        objectives = [("throughput_gops", True), ("power_watts", False)]
        front = pareto_front(sweep_points, objectives)
        for a in front:
            for b in front:
                if a is not b:
                    assert not dominates(a, b, objectives)

    def test_single_objective_front(self, sweep_points):
        front = pareto_front(sweep_points, ["throughput_gops"])
        assert len(front) == 1

    def test_rank_zero_is_front(self, sweep_points):
        objectives = [("throughput_gops", True), ("power_watts", False)]
        ranks = pareto_rank(sweep_points, objectives)
        front_names = {point.name for point in pareto_front(sweep_points, objectives)}
        assert {name for name, rank in ranks.items() if rank == 0} == front_names
        assert set(ranks) == {point.name for point in sweep_points}

    def test_requires_objective(self, sweep_points):
        with pytest.raises(ValueError):
            pareto_front(sweep_points, [])


class TestRoofline:
    def test_operational_intensity_positive(self, small_layer):
        intensity = layer_operational_intensity(small_layer)
        assert intensity > 0

    def test_intensity_grows_with_channels(self):
        thin = ConvLayer("thin", 3, 64, 56, 56, padding=1)
        thick = ConvLayer("thick", 256, 256, 56, 56, padding=1)
        assert layer_operational_intensity(thick) > layer_operational_intensity(thin)

    def test_no_reuse_lowers_intensity(self, small_layer):
        assert layer_operational_intensity(small_layer, tile_reuse=False) < (
            layer_operational_intensity(small_layer, tile_reuse=True)
        )

    def test_report_structure(self, vgg16_module):
        report = roofline_report(vgg16_module, m=4, parallel_pes=19)
        assert report.peak_gops == pytest.approx(2 * 9 * 16 * 19 * 0.2, rel=1e-6)
        assert len(report.layers) == 13
        assert 0 < report.attainable_fraction() <= 1.0

    def test_low_bandwidth_makes_layers_bandwidth_bound(self, vgg16_module):
        starved = FpgaDevice(
            name="starved",
            luts=303_600,
            registers=607_200,
            dsp_slices=2_800,
            bram_kbits=37_080,
            dram_bandwidth_gbps=0.5,
        )
        report = roofline_report(vgg16_module, m=4, parallel_pes=19, device=starved)
        assert not report.all_compute_bound
        assert len(report.bandwidth_bound_layers) > 0

    def test_high_bandwidth_compute_bound(self, vgg16_module):
        generous = FpgaDevice(
            name="generous",
            luts=303_600,
            registers=607_200,
            dsp_slices=2_800,
            bram_kbits=37_080,
            dram_bandwidth_gbps=200.0,
        )
        report = roofline_report(vgg16_module, m=4, parallel_pes=19, device=generous)
        assert report.all_compute_bound
        assert report.attainable_fraction() == pytest.approx(1.0)

    def test_kernel_size_filter(self, vgg16_module):
        report = roofline_report(vgg16_module, m=2, parallel_pes=4, only_kernel_size=5)
        assert report.layers == []

"""Tests for transform application (1-D, 2-D, batched)."""

import numpy as np
import pytest

from repro.winograd.matrices import get_transform
from repro.winograd.transforms import (
    data_transform,
    data_transform_1d,
    filter_transform,
    filter_transform_1d,
    inverse_transform,
    inverse_transform_1d,
    winograd_1d,
    winograd_tile_2d,
)


@pytest.fixture(params=[2, 3, 4])
def transform(request):
    return get_transform(request.param, 3)


class Test1D:
    def test_winograd_1d_matches_correlation(self, transform, rng):
        n, r, m = transform.n, transform.r, transform.m
        d = rng.standard_normal(n)
        g = rng.standard_normal(r)
        fast = winograd_1d(transform, d, g)
        reference = np.array([np.dot(d[i : i + r], g) for i in range(m)])
        np.testing.assert_allclose(fast, reference, atol=1e-10)

    def test_1d_shapes(self, transform, rng):
        n, r = transform.n, transform.r
        assert data_transform_1d(transform, rng.standard_normal(n)).shape == (n,)
        assert filter_transform_1d(transform, rng.standard_normal(r)).shape == (n,)
        assert inverse_transform_1d(transform, rng.standard_normal(n)).shape == (transform.m,)

    def test_1d_wrong_length_rejected(self, transform):
        with pytest.raises(ValueError):
            data_transform_1d(transform, np.zeros(transform.n + 1))
        with pytest.raises(ValueError):
            filter_transform_1d(transform, np.zeros(transform.r + 2))
        with pytest.raises(ValueError):
            inverse_transform_1d(transform, np.zeros(transform.n - 1))

    def test_1d_batched_leading_dims(self, transform, rng):
        batch = rng.standard_normal((5, transform.n))
        assert data_transform_1d(transform, batch).shape == (5, transform.n)


class Test2D:
    def test_tile_matches_direct(self, transform, rng):
        n, r, m = transform.n, transform.r, transform.m
        d = rng.standard_normal((n, n))
        g = rng.standard_normal((r, r))
        fast = winograd_tile_2d(transform, d, g)
        reference = np.zeros((m, m))
        for y in range(m):
            for x in range(m):
                reference[y, x] = np.sum(d[y : y + r, x : x + r] * g)
        np.testing.assert_allclose(fast, reference, atol=1e-9)

    def test_precomputed_filter_transform(self, transform, rng):
        n, r = transform.n, transform.r
        d = rng.standard_normal((n, n))
        g = rng.standard_normal((r, r))
        v = filter_transform(transform, g)
        assert v.shape == (n, n)
        np.testing.assert_allclose(
            winograd_tile_2d(transform, d, g),
            winograd_tile_2d(transform, d, None, v=v),
            atol=1e-12,
        )

    def test_linearity_of_data_transform(self, transform, rng):
        n = transform.n
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        np.testing.assert_allclose(
            data_transform(transform, a + 2 * b),
            data_transform(transform, a) + 2 * data_transform(transform, b),
            atol=1e-10,
        )

    def test_batched_shapes(self, transform, rng):
        n, r = transform.n, transform.r
        tiles = rng.standard_normal((2, 3, n, n))
        kernels = rng.standard_normal((4, r, r))
        products = rng.standard_normal((7, n, n))
        assert data_transform(transform, tiles).shape == (2, 3, n, n)
        assert filter_transform(transform, kernels).shape == (4, n, n)
        assert inverse_transform(transform, products).shape == (7, transform.m, transform.m)

    def test_wrong_trailing_dims_rejected(self, transform):
        with pytest.raises(ValueError):
            data_transform(transform, np.zeros((transform.n, transform.n + 1)))
        with pytest.raises(ValueError):
            filter_transform(transform, np.zeros((transform.r + 1, transform.r)))
        with pytest.raises(ValueError):
            inverse_transform(transform, np.zeros(transform.n))

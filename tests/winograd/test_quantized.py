"""Tests for the fixed-point Winograd numeric backend."""

import numpy as np
import pytest

from repro.nn.reference import direct_conv2d
from repro.winograd.matrices import get_transform
from repro.winograd.numerical import _direct_tile
from repro.winograd.quantized import (
    DEFAULT_BIT_WIDTHS,
    MAX_BIT_WIDTH,
    MIN_BIT_WIDTH,
    QuantizedTensor,
    calibrated_error,
    clear_calibration,
    quantize_tensor,
    quantized_conv2d,
    quantized_tile_error,
    quantized_winograd_tile,
    rounding_shift,
    saturate,
    tile_error_bound,
    validate_bit_width,
)


class TestValidateBitWidth:
    def test_none_is_the_float_datapath(self):
        validate_bit_width(None)

    @pytest.mark.parametrize("bit_width", [MIN_BIT_WIDTH, 8, 12, MAX_BIT_WIDTH])
    def test_supported_widths(self, bit_width):
        validate_bit_width(bit_width)

    @pytest.mark.parametrize(
        "bit_width", [MIN_BIT_WIDTH - 1, MAX_BIT_WIDTH + 1, 0, -8, 8.0, "8", True]
    )
    def test_rejects_out_of_domain(self, bit_width):
        with pytest.raises(ValueError, match="bit_width must be None or an integer"):
            validate_bit_width(bit_width)

    def test_default_sweep_widths_are_valid(self):
        assert DEFAULT_BIT_WIDTHS == (8, 12, 16)
        for bit_width in DEFAULT_BIT_WIDTHS:
            validate_bit_width(bit_width)


class TestPrimitives:
    def test_saturate_clamps_to_signed_range(self):
        values = np.array([-300, -128, 0, 127, 300], dtype=np.int64)
        out = saturate(values, 8)
        assert out.tolist() == [-128, -128, 0, 127, 127]

    def test_rounding_shift_rounds_to_nearest(self):
        values = np.array([5, 6, 7, 8, -5, -6], dtype=np.int64)
        # >> 2 with +2 pre-bias: 5->2 (1.25), 6->2 (1.5), 7->2 (1.75), 8->2
        assert rounding_shift(values, 2).tolist() == [1, 2, 2, 2, -1, -1]

    def test_rounding_shift_zero_is_identity(self):
        values = np.array([3, -7], dtype=np.int64)
        assert rounding_shift(values, 0).tolist() == [3, -7]

    def test_quantize_tensor_round_trip(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((4, 4))
        quantized = quantize_tensor(data, 12)
        assert isinstance(quantized, QuantizedTensor)
        assert quantized.bit_width == 12
        limit = 2 ** 11 - 1
        assert np.abs(quantized.values).max() <= limit
        restored = quantized.dequantize()
        assert np.abs(restored - data).max() <= 1.0 / quantized.scale

    def test_integer_tensors_keep_unit_scale(self):
        data = np.array([[-3.0, 5.0], [7.0, -1.0]])
        quantized = quantize_tensor(data, 8)
        assert quantized.scale == 1.0
        assert np.array_equal(quantized.dequantize(), data)


class TestQuantizedTile:
    @pytest.mark.parametrize("m", [1, 2, 3, 4, 5, 6])
    @pytest.mark.parametrize("r", [2, 3])
    @pytest.mark.parametrize("bit_width", DEFAULT_BIT_WIDTHS)
    def test_error_within_derived_bound(self, m, r, bit_width):
        try:
            stats = quantized_tile_error(m, r, bit_width=bit_width, trials=8, seed=3)
        except ValueError:
            pytest.skip("headroom-infeasible corner of the grid")
        assert stats.max_rel <= tile_error_bound(m, r, bit_width=bit_width)
        assert stats.dtype == f"int{bit_width}"
        assert stats.mean_rel <= stats.max_rel

    def test_exact_for_integer_inputs_at_wide_width(self):
        # F(2x2, 3x3) has dyadic transform constants: with unit-scale
        # integer inputs the 16-bit pipeline commits no rounding at all.
        rng = np.random.default_rng(11)
        d = rng.integers(-8, 9, size=(4, 4)).astype(np.float64)
        g = rng.integers(-4, 5, size=(3, 3)).astype(np.float64)
        out = quantized_winograd_tile(get_transform(2, 3), d, g, bit_width=16)
        assert np.array_equal(out, _direct_tile(d, g, 2, 3))

    def test_conv2d_exact_for_integer_inputs(self):
        rng = np.random.default_rng(11)
        feature_map = rng.integers(-5, 6, size=(1, 2, 8, 8)).astype(np.float64)
        kernels = rng.integers(-3, 4, size=(2, 2, 3, 3)).astype(np.float64)
        out = quantized_conv2d(feature_map, kernels, 2, padding=1, bit_width=16)
        ref = direct_conv2d(feature_map, kernels, padding=1)
        assert out.shape == ref.shape
        assert np.array_equal(out, ref)

    def test_conv2d_approximates_float_reference(self):
        rng = np.random.default_rng(4)
        feature_map = rng.standard_normal((1, 3, 12, 12))
        kernels = rng.standard_normal((4, 3, 3, 3))
        out = quantized_conv2d(feature_map, kernels, 2, padding=1, bit_width=16)
        ref = direct_conv2d(feature_map, kernels, padding=1)
        scale = np.abs(ref).max()
        assert np.abs(out - ref).max() / scale < 1e-3

    def test_one_by_one_tile_degenerate(self):
        stats = quantized_tile_error(1, 3, bit_width=16, trials=4, seed=1)
        assert stats.m == 1
        assert stats.max_rel < 1e-3

    def test_headroom_exhaustion_raises(self):
        with pytest.raises(ValueError, match="headroom exhausted"):
            quantized_tile_error(7, 3, bit_width=16, trials=2, seed=0)


class TestMonotonicity:
    @pytest.mark.parametrize("m", [2, 4, 6])
    @pytest.mark.parametrize("r", [2, 3])
    def test_mean_error_shrinks_with_bit_width(self, m, r):
        errors = [
            quantized_tile_error(m, r, bit_width=bit_width, trials=16, seed=5).mean_rel
            for bit_width in DEFAULT_BIT_WIDTHS
        ]
        for narrow, wide in zip(errors, errors[1:]):
            # 5% slack: the comparison is between two Monte-Carlo
            # estimates, not the true expectations.
            assert wide <= narrow * 1.05

    @pytest.mark.parametrize("bit_width", DEFAULT_BIT_WIDTHS)
    def test_error_grows_from_smallest_to_largest_tile(self, bit_width):
        small = quantized_tile_error(2, 3, bit_width=bit_width, trials=16, seed=5)
        large = quantized_tile_error(6, 3, bit_width=bit_width, trials=16, seed=5)
        assert large.mean_rel > small.mean_rel

    def test_bound_grows_from_smallest_to_largest_tile(self):
        assert tile_error_bound(6, 3, bit_width=8) > tile_error_bound(2, 3, bit_width=8)
        assert tile_error_bound(4, 3, bit_width=16) < tile_error_bound(4, 3, bit_width=8)


class TestCalibration:
    def test_memoised_entry_is_the_same_object(self):
        clear_calibration()
        first = calibrated_error(3, 3, 8)
        second = calibrated_error(3, 3, 8)
        assert first is second

    def test_float_datapath_golden(self):
        # Seeded float32 tile error of F(4x4, 3x3); pins the calibration
        # protocol (trials=16, seed=2019) across refactors.
        stats = calibrated_error(4, 3, None)
        assert stats.max_rel == pytest.approx(4.2142847692566103e-08, rel=1e-9)
        assert stats.mean_rel == pytest.approx(7.7241614597669545e-09, rel=1e-9)

    def test_quantized_golden(self):
        stats = calibrated_error(2, 3, 8)
        assert stats.max_rel == pytest.approx(0.024320459795900508, rel=1e-9)

    def test_invalid_width_propagates(self):
        with pytest.raises(ValueError, match="bit_width must be None or an integer"):
            calibrated_error(2, 3, 64)

    def test_clear_calibration_forgets(self):
        first = calibrated_error(2, 3, 12)
        clear_calibration()
        second = calibrated_error(2, 3, 12)
        assert first is not second
        assert first == second

"""Tests for CSD strength reduction and constant-multiplication networks."""

from fractions import Fraction

import pytest

from repro.winograd.matrices import get_transform
from repro.winograd.strength_reduction import (
    constant_cost,
    csd_digits,
    matvec_network,
)


class TestCsdDigits:
    @pytest.mark.parametrize(
        "value,expected_nonzero",
        [(0, 0), (1, 1), (2, 1), (3, 2), (5, 2), (7, 2), (15, 2), (21, 3), (255, 2)],
    )
    def test_nonzero_digit_count(self, value, expected_nonzero):
        digits = csd_digits(value)
        assert sum(1 for digit in digits if digit) == expected_nonzero

    @pytest.mark.parametrize("value", [0, 1, 2, 3, 5, 7, 11, 21, 100, 255, 1023])
    def test_reconstruction(self, value):
        digits = csd_digits(value)
        assert sum(digit * (1 << i) for i, digit in enumerate(digits)) == value

    @pytest.mark.parametrize("value", [3, 7, 11, 23, 47, 255])
    def test_no_adjacent_nonzero_digits(self, value):
        digits = csd_digits(value)
        for first, second in zip(digits, digits[1:]):
            assert not (first != 0 and second != 0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            csd_digits(-1)


class TestConstantCost:
    def test_trivial_constants_free(self):
        for value in (Fraction(0), Fraction(1), Fraction(-1)):
            cost = constant_cost(value)
            assert cost.is_trivial
            assert cost.adders == 0 and not cost.needs_multiplier

    def test_power_of_two_is_shift(self):
        cost = constant_cost(Fraction(4))
        assert cost.adders == 0
        assert cost.shifts == 1
        assert not cost.needs_multiplier

    def test_dyadic_composite(self):
        cost = constant_cost(Fraction(5))  # 4 + 1 -> one adder
        assert cost.adders == 1
        assert not cost.needs_multiplier
        cost = constant_cost(Fraction(21, 4))  # 16 + 4 + 1 scaled by 1/4
        assert cost.adders == 2
        assert not cost.needs_multiplier

    def test_non_dyadic_needs_multiplier(self):
        assert constant_cost(Fraction(1, 6)).needs_multiplier
        assert constant_cost(Fraction(2, 9)).needs_multiplier


class TestMatvecNetwork:
    def test_simple_sum(self):
        network = matvec_network([[1, 1, 1]])
        assert network.adder_count == 2
        assert network.multiplier_count == 0
        assert len(network.output_names) == 1

    def test_with_shifts_and_constants(self):
        network = matvec_network([[2, 0, Fraction(1, 2)], [Fraction(1, 6), 1, 0]])
        assert network.shift_count >= 2
        assert network.multiplier_count == 1  # the 1/6
        assert len(network.output_names) == 2

    def test_zero_row_produces_no_ops(self):
        network = matvec_network([[0, 0, 0]])
        assert network.adder_count == 0
        assert len(network.output_names) == 1

    def test_single_negative_term_negated(self):
        network = matvec_network([[-1, 0]])
        kinds = [op.kind for op in network.operations]
        assert kinds == ["sub"]

    def test_dag_is_topologically_ordered(self):
        transform = get_transform(4, 3)
        network = matvec_network([list(row) for row in transform.bt_exact])
        produced = set(network.input_names)
        for op in network.operations:
            assert all(name in produced for name in op.inputs)
            produced.add(op.output)
        assert all(name in produced for name in network.output_names)

    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_network_size_tracks_matvec_ops(self, m):
        from repro.winograd.op_count import matvec_ops

        transform = get_transform(m, 3)
        ops = matvec_ops(transform.bt_exact)
        network = matvec_network([list(row) for row in transform.bt_exact])
        # The network may use a few more adders (CSD expansion of constants)
        # but never fewer than the abstract count.
        assert network.adder_count >= ops.additions
        assert network.multiplier_count <= ops.constant_multiplications

"""Tests for the Cook-Toom transform generator."""

from fractions import Fraction

import numpy as np
import pytest

from repro.winograd.points import integer_points
from repro.winograd.toom_cook import generate_transform, minimal_multiplications


class TestMinimalMultiplications:
    def test_formula(self):
        assert minimal_multiplications(2, 3) == 4
        assert minimal_multiplications(4, 3) == 6
        assert minimal_multiplications(1, 1) == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            minimal_multiplications(0, 3)


class TestGeneration:
    @pytest.mark.parametrize("m", [1, 2, 3, 4, 5, 6, 7])
    def test_generated_transforms_verify_exactly(self, m):
        transform = generate_transform(m, 3)
        assert transform.verify_exact()

    @pytest.mark.parametrize("m,r", [(2, 2), (3, 2), (2, 5), (4, 4), (6, 3)])
    def test_other_kernel_sizes(self, m, r):
        transform = generate_transform(m, r)
        assert transform.verify_exact()
        assert transform.n == m + r - 1

    def test_shapes(self):
        transform = generate_transform(3, 3)
        assert transform.AT.shape == (3, 5)
        assert transform.G.shape == (5, 3)
        assert transform.BT.shape == (5, 5)
        assert transform.A.shape == (5, 3)
        assert transform.B.shape == (5, 5)

    def test_multiplication_counts(self):
        transform = generate_transform(4, 3)
        assert transform.multiplications_1d == 6
        assert transform.multiplications_2d == 36
        assert transform.input_tile == 6

    def test_degenerate_f11(self):
        transform = generate_transform(1, 1)
        assert transform.n == 1
        assert transform.AT.shape == (1, 1)
        assert transform.verify_exact()

    def test_custom_integer_points(self):
        points = integer_points(4)
        transform = generate_transform(2, 4, points=points)
        assert transform.verify_exact()
        assert transform.points == tuple(points)

    def test_wrong_point_count_rejected(self):
        with pytest.raises(ValueError):
            generate_transform(2, 3, points=integer_points(5))

    def test_duplicate_points_rejected(self):
        with pytest.raises(ValueError):
            generate_transform(2, 3, points=[Fraction(0), Fraction(1), Fraction(1)])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generate_transform(0, 3)
        with pytest.raises(ValueError):
            generate_transform(2, 0)

    def test_label_and_describe(self):
        transform = generate_transform(2, 3, label="unit-test")
        assert "unit-test" in transform.describe()
        assert "F(2, 3)" in transform.describe()


class TestNumericalIdentity:
    @pytest.mark.parametrize("m", [2, 3, 4, 5])
    def test_1d_identity_random(self, m, rng):
        transform = generate_transform(m, 3)
        n, r = transform.n, transform.r
        d = rng.standard_normal(n)
        g = rng.standard_normal(r)
        fast = transform.AT @ ((transform.G @ g) * (transform.BT @ d))
        reference = np.array([np.dot(d[i : i + r], g) for i in range(m)])
        np.testing.assert_allclose(fast, reference, atol=1e-10)

    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_2d_nesting_identity(self, m, rng):
        transform = generate_transform(m, 3)
        n, r = transform.n, transform.r
        d = rng.standard_normal((n, n))
        g = rng.standard_normal((r, r))
        u = transform.BT @ d @ transform.B
        v = transform.G @ g @ transform.G.T
        fast = transform.AT @ (u * v) @ transform.A
        reference = np.zeros((m, m))
        for y in range(m):
            for x in range(m):
                reference[y, x] = np.sum(d[y : y + r, x : x + r] * g)
        np.testing.assert_allclose(fast, reference, atol=1e-9)

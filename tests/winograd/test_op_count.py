"""Tests for transform operator counting (beta / gamma / delta)."""

from fractions import Fraction

import pytest

from repro.winograd.matrices import get_transform
from repro.winograd.op_count import (
    OpCount,
    count_transform_ops,
    count_transform_ops_for,
    matvec_ops,
    nested_2d_ops,
    spatial_tile_ops,
)


class TestOpCount:
    def test_addition_and_scaling(self):
        a = OpCount(additions=3, shift_multiplications=1)
        b = OpCount(additions=2, constant_multiplications=4, general_multiplications=1)
        total = a + b
        assert total.additions == 5
        assert total.constant_multiplications == 4
        assert total.flops == 5 + 1 + 4 + 1
        assert total.cheap_ops == 6
        assert total.multiplier_ops == 5
        doubled = total.scaled(2)
        assert doubled.flops == 2 * total.flops

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            OpCount(additions=1).scaled(-1)


class TestMatvecOps:
    def test_identity_matrix_costs_nothing(self):
        eye = [[Fraction(1), Fraction(0)], [Fraction(0), Fraction(1)]]
        ops = matvec_ops(eye)
        assert ops.flops == 0

    def test_dense_unit_matrix(self):
        matrix = [[Fraction(1), Fraction(-1), Fraction(1)]]
        ops = matvec_ops(matrix)
        assert ops.additions == 2
        assert ops.shift_multiplications == 0
        assert ops.constant_multiplications == 0

    def test_shift_and_general_classification(self):
        matrix = [[Fraction(2), Fraction(1, 2), Fraction(1, 6), Fraction(5)]]
        ops = matvec_ops(matrix)
        assert ops.additions == 3
        assert ops.shift_multiplications == 2  # 2 and 1/2
        assert ops.constant_multiplications == 2  # 1/6 and 5

    def test_f23_data_transform_matches_lavin(self):
        # B^T of F(2,3) needs 4 adds per 1-D application, hence 32 FLOPs in 2-D.
        transform = get_transform(2, 3)
        ops = matvec_ops(transform.bt_exact)
        assert ops.flops == 4
        assert nested_2d_ops(transform.bt_exact, transform.n).flops == 32


class TestTransformCounts:
    @pytest.mark.parametrize("m", [2, 3, 4, 5, 6, 7])
    def test_counts_positive_and_consistent(self, m):
        counts = count_transform_ops(m, 3)
        assert counts.beta > 0
        assert counts.gamma > 0
        assert counts.delta > 0
        assert counts.multiplications == (m + 2) ** 2
        assert counts.transform_flops == counts.beta + counts.gamma + counts.delta
        assert counts.outputs_per_tile == m * m

    def test_f23_known_values(self):
        counts = count_transform_ops(2, 3)
        assert counts.beta == 32   # Lavin's data-transform FLOP count
        assert counts.delta == 24  # Lavin's inverse-transform FLOP count
        assert counts.multiplications == 16

    def test_transform_flops_grow_with_m(self):
        totals = [count_transform_ops(m, 3).transform_flops for m in range(2, 8)]
        assert all(later > earlier for earlier, later in zip(totals, totals[1:]))

    def test_normalised_transform_cost_grows(self):
        """Per-output transform cost (beta+delta)/m^2 grows from m=2 to m=7 (Fig. 2).

        The trend need not be strictly monotonic between adjacent m (published
        canonical matrices are better optimised than generated ones), but the
        overall quadratic growth the paper reports must be visible.
        """
        per_output = [
            (count_transform_ops(m, 3).beta + count_transform_ops(m, 3).delta) / (m * m)
            for m in range(2, 8)
        ]
        assert per_output[-1] > per_output[0]
        assert per_output[-1] > 2 * per_output[0]
        assert all(value > 0 for value in per_output)

    def test_count_for_explicit_transform(self):
        transform = get_transform(4, 3)
        counts = count_transform_ops_for(transform)
        assert counts.m == 4 and counts.r == 3
        assert counts.beta == count_transform_ops(4, 3).beta

    def test_generated_vs_canonical_counts_differ_or_match(self):
        canonical = count_transform_ops(4, 3, prefer_canonical=True)
        generated = count_transform_ops(4, 3, prefer_canonical=False)
        # Both must be valid transform op counts for the same multiplication count.
        assert canonical.multiplications == generated.multiplications == 36


class TestSpatialTileOps:
    def test_values(self):
        mults, adds = spatial_tile_ops(2, 3)
        assert mults == 4 * 9
        assert adds == 4 * 8

    def test_m1(self):
        mults, adds = spatial_tile_ops(1, 3)
        assert mults == 9
        assert adds == 8

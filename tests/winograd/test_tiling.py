"""Tests for feature-map tiling."""

import numpy as np
import pytest

from repro.winograd.tiling import assemble_output, extract_tiles, plan_tiles


class TestPlanTiles:
    def test_exact_fit(self):
        grid = plan_tiles(8, 8, m=2, r=3, padding=1)
        assert (grid.output_height, grid.output_width) == (8, 8)
        assert (grid.tiles_y, grid.tiles_x) == (4, 4)
        assert grid.tile_size == 4
        assert grid.tile_count == 16

    def test_partial_tiles(self):
        grid = plan_tiles(7, 5, m=4, r=3, padding=1)
        assert (grid.output_height, grid.output_width) == (7, 5)
        assert (grid.tiles_y, grid.tiles_x) == (2, 2)
        assert grid.padded_output_height == 8
        assert grid.padded_output_width == 8

    def test_no_padding_valid_conv(self):
        grid = plan_tiles(10, 10, m=2, r=3, padding=0)
        assert (grid.output_height, grid.output_width) == (8, 8)

    def test_kernel_too_large(self):
        with pytest.raises(ValueError):
            plan_tiles(2, 2, m=2, r=5, padding=0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            plan_tiles(8, 8, m=0, r=3)
        with pytest.raises(ValueError):
            plan_tiles(0, 8, m=2, r=3)


class TestExtractAssemble:
    def test_extract_shape(self, rng):
        grid = plan_tiles(12, 10, m=3, r=3, padding=1)
        plane = rng.standard_normal((2, 4, 12, 10))
        tiles = extract_tiles(plane, grid, padding=1)
        assert tiles.shape == (2, 4, grid.tiles_y, grid.tiles_x, 5, 5)

    def test_extract_values_with_overlap(self, rng):
        grid = plan_tiles(6, 6, m=2, r=3, padding=0)
        plane = rng.standard_normal((6, 6))
        tiles = extract_tiles(plane, grid, padding=0)
        np.testing.assert_array_equal(tiles[0, 0], plane[0:4, 0:4])
        np.testing.assert_array_equal(tiles[0, 1], plane[0:4, 2:6])
        np.testing.assert_array_equal(tiles[1, 0], plane[2:6, 0:4])

    def test_extract_padding_zeros(self, rng):
        grid = plan_tiles(4, 4, m=2, r=3, padding=1)
        plane = rng.standard_normal((4, 4))
        tiles = extract_tiles(plane, grid, padding=1)
        # Top-left tile's first row/column should come from zero padding.
        assert np.all(tiles[0, 0][0, :] == 0)
        assert np.all(tiles[0, 0][:, 0] == 0)

    def test_extract_shape_mismatch(self, rng):
        grid = plan_tiles(8, 8, m=2, r=3)
        with pytest.raises(ValueError):
            extract_tiles(rng.standard_normal((7, 8)), grid)

    def test_assemble_inverse_of_split(self, rng):
        grid = plan_tiles(9, 11, m=3, r=3, padding=1)
        full = rng.standard_normal((grid.tiles_y, grid.tiles_x, 3, 3))
        plane = assemble_output(full, grid)
        assert plane.shape == (9, 11)
        np.testing.assert_array_equal(plane[0:3, 0:3], full[0, 0])
        np.testing.assert_array_equal(plane[3:6, 3:6], full[1, 1])

    def test_assemble_crops_partial_tiles(self, rng):
        grid = plan_tiles(7, 7, m=4, r=3, padding=1)
        tiles = rng.standard_normal((1, grid.tiles_y, grid.tiles_x, 4, 4))
        out = assemble_output(tiles, grid)
        assert out.shape == (1, 7, 7)

    def test_assemble_wrong_shape(self, rng):
        grid = plan_tiles(8, 8, m=2, r=3)
        with pytest.raises(ValueError):
            assemble_output(rng.standard_normal((2, 2, 2, 2)), grid)

    def test_roundtrip_identity_kernel(self, rng):
        """Extract + assemble with an identity convolution reproduces the input."""
        from repro.winograd.fast_conv import winograd_conv2d

        plane = rng.standard_normal((1, 1, 10, 10))
        kernel = np.zeros((1, 1, 3, 3))
        kernel[0, 0, 1, 1] = 1.0  # delta kernel
        out = winograd_conv2d(plane, kernel, m=2, padding=1)
        np.testing.assert_allclose(out, plane, atol=1e-10)

"""Tests for the canonical transform registry."""

import numpy as np
import pytest

from repro.winograd.matrices import (
    available_canonical,
    canonical_f23,
    canonical_f43,
    canonical_f63,
    clear_cache,
    get_transform,
)


class TestCanonicalMatrices:
    @pytest.mark.parametrize("builder", [canonical_f23, canonical_f43, canonical_f63])
    def test_canonical_transforms_verify(self, builder):
        assert builder().verify_exact()

    def test_f23_matches_lavin_values(self):
        transform = canonical_f23()
        np.testing.assert_array_equal(
            transform.BT,
            np.array([[1, 0, -1, 0], [0, 1, 1, 0], [0, -1, 1, 0], [0, 1, 0, -1]], dtype=float),
        )
        np.testing.assert_allclose(transform.G[1], [0.5, 0.5, 0.5])

    def test_f43_shapes(self):
        transform = canonical_f43()
        assert transform.AT.shape == (4, 6)
        assert transform.G.shape == (6, 3)
        assert transform.BT.shape == (6, 6)

    def test_available_canonical(self):
        assert (2, 3) in available_canonical()
        assert (4, 3) in available_canonical()
        assert (6, 3) in available_canonical()


class TestRegistry:
    def test_prefers_canonical(self):
        transform = get_transform(2, 3)
        assert transform.label.startswith("lavin")

    def test_fallback_to_generated(self):
        transform = get_transform(5, 3)
        assert transform.label == "generated"
        assert transform.verify_exact()

    def test_generated_when_not_preferring_canonical(self):
        transform = get_transform(2, 3, prefer_canonical=False)
        assert transform.label == "generated"

    def test_cache_returns_same_object(self):
        clear_cache()
        first = get_transform(3, 3)
        second = get_transform(3, 3)
        assert first is second

    def test_clear_cache(self):
        first = get_transform(3, 3)
        clear_cache()
        second = get_transform(3, 3)
        assert first is not second
        assert first.m == second.m

    @pytest.mark.parametrize("m", [2, 3, 4, 5, 6, 7])
    def test_all_paper_tile_sizes_available(self, m):
        transform = get_transform(m, 3)
        assert transform.m == m
        assert transform.r == 3
        assert transform.verify_exact()

"""Property-based tests (hypothesis) for the Winograd substrate invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.nn.reference import direct_conv2d
from repro.winograd.fast_conv import winograd_conv2d
from repro.winograd.op_count import matvec_ops
from repro.winograd.strength_reduction import constant_cost, csd_digits
from repro.winograd.tiling import assemble_output, extract_tiles, plan_tiles
from repro.winograd.toom_cook import generate_transform
from repro.winograd.transforms import winograd_1d


finite_floats = st.floats(min_value=-10, max_value=10, allow_nan=False, allow_infinity=False)


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(min_value=1, max_value=6),
    r=st.integers(min_value=2, max_value=4),
    data=st.data(),
)
def test_1d_minimal_algorithm_matches_correlation(m, r, data):
    """F(m, r) equals direct correlation for any tile and filter contents."""
    transform = generate_transform(m, r)
    n = transform.n
    d = np.array(data.draw(st.lists(finite_floats, min_size=n, max_size=n)))
    g = np.array(data.draw(st.lists(finite_floats, min_size=r, max_size=r)))
    fast = winograd_1d(transform, d, g)
    reference = np.array([np.dot(d[i : i + r], g) for i in range(m)])
    np.testing.assert_allclose(fast, reference, atol=1e-6 * max(1.0, np.abs(reference).max()))


@settings(max_examples=20, deadline=None)
@given(
    m=st.sampled_from([2, 3, 4]),
    height=st.integers(min_value=5, max_value=14),
    width=st.integers(min_value=5, max_value=14),
    channels=st.integers(min_value=1, max_value=3),
    kernels=st.integers(min_value=1, max_value=3),
    padding=st.integers(min_value=0, max_value=1),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_tiled_winograd_equals_direct_conv(m, height, width, channels, kernels, padding, seed):
    """The tiled fast convolution equals direct convolution for any geometry."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((1, channels, height, width))
    w = rng.standard_normal((kernels, channels, 3, 3))
    fast = winograd_conv2d(x, w, m=m, padding=padding)
    reference = direct_conv2d(x, w, padding=padding)
    np.testing.assert_allclose(fast, reference, atol=1e-8)


@settings(max_examples=30, deadline=None)
@given(
    height=st.integers(min_value=3, max_value=30),
    width=st.integers(min_value=3, max_value=30),
    m=st.integers(min_value=1, max_value=6),
    padding=st.integers(min_value=0, max_value=2),
)
def test_tile_plan_covers_output_exactly(height, width, m, padding):
    """The tile grid always covers the full output and never undershoots."""
    r = 3
    if height + 2 * padding < r or width + 2 * padding < r:
        return
    grid = plan_tiles(height, width, m, r, padding)
    assert grid.tiles_y * m >= grid.output_height
    assert grid.tiles_x * m >= grid.output_width
    assert (grid.tiles_y - 1) * m < grid.output_height
    assert (grid.tiles_x - 1) * m < grid.output_width
    # Padded input must be exactly large enough for the last tile.
    assert grid.padded_height == (grid.tiles_y - 1) * m + grid.tile_size
    assert grid.padded_width == (grid.tiles_x - 1) * m + grid.tile_size


@settings(max_examples=25, deadline=None)
@given(
    height=st.integers(min_value=4, max_value=16),
    width=st.integers(min_value=4, max_value=16),
    m=st.sampled_from([2, 3, 4]),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_extract_assemble_roundtrip_on_aligned_tiles(height, width, m, seed):
    """Assembling per-tile crops of a plane reproduces the original plane."""
    rng = np.random.default_rng(seed)
    grid = plan_tiles(height, width, m, 3, padding=0)
    plane = rng.standard_normal((height, width))
    tiles = extract_tiles(plane, grid, padding=0)
    crops = tiles[..., :m, :m]
    rebuilt = assemble_output(crops, grid)
    np.testing.assert_array_equal(rebuilt, plane[: grid.output_height, : grid.output_width])


@settings(max_examples=100, deadline=None)
@given(value=st.integers(min_value=0, max_value=10**6))
def test_csd_reconstruction_and_sparsity(value):
    """CSD digits always reconstruct the value and have no adjacent non-zeros."""
    digits = csd_digits(value)
    assert sum(d * (1 << i) for i, d in enumerate(digits)) == value
    assert all(not (a and b) for a, b in zip(digits, digits[1:]))


@settings(max_examples=100, deadline=None)
@given(numerator=st.integers(min_value=-64, max_value=64), log_denominator=st.integers(min_value=0, max_value=6))
def test_constant_cost_classification(numerator, log_denominator):
    """Dyadic rationals never need a true multiplier; cost fields stay sane."""
    from fractions import Fraction

    value = Fraction(numerator, 2 ** log_denominator)
    cost = constant_cost(value)
    assert not cost.needs_multiplier
    assert cost.adders >= 0 and cost.shifts >= 0


@settings(max_examples=50, deadline=None)
@given(
    m=st.integers(min_value=1, max_value=5),
    r=st.integers(min_value=2, max_value=4),
)
def test_transform_matrix_op_counts_bounded(m, r):
    """Matrix-vector op counts are bounded by the dense matrix size."""
    transform = generate_transform(m, r)
    for matrix in (transform.at_exact, transform.g_exact, transform.bt_exact):
        ops = matvec_ops(matrix)
        rows = len(matrix)
        cols = len(matrix[0])
        assert 0 <= ops.additions <= rows * (cols - 1)
        assert ops.multiplier_ops + ops.shift_multiplications <= rows * cols

"""Tests for the exact rational linear algebra helpers."""

from fractions import Fraction

import numpy as np
import pytest

from repro.winograd import exact


class TestAsFraction:
    def test_int(self):
        assert exact.as_fraction(3) == Fraction(3)

    def test_fraction_passthrough(self):
        value = Fraction(2, 3)
        assert exact.as_fraction(value) is value or exact.as_fraction(value) == value

    def test_string(self):
        assert exact.as_fraction("1/6") == Fraction(1, 6)

    def test_exact_float(self):
        assert exact.as_fraction(0.5) == Fraction(1, 2)
        assert exact.as_fraction(-0.25) == Fraction(-1, 4)

    def test_inexact_float_rejected(self):
        with pytest.raises(ValueError):
            exact.as_fraction(0.1)

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            exact.as_fraction(object())


class TestMatrixOps:
    def test_fraction_matrix_ragged_rejected(self):
        with pytest.raises(ValueError):
            exact.fraction_matrix([[1, 2], [3]])

    def test_fraction_matrix_empty_rejected(self):
        with pytest.raises(ValueError):
            exact.fraction_matrix([])

    def test_identity(self):
        eye = exact.identity(3)
        assert eye[0] == [1, 0, 0]
        assert eye[2][2] == Fraction(1)

    def test_matmul_known(self):
        a = exact.fraction_matrix([[1, 2], [3, 4]])
        b = exact.fraction_matrix([[5, 6], [7, 8]])
        assert exact.matmul(a, b) == exact.fraction_matrix([[19, 22], [43, 50]])

    def test_matmul_shape_mismatch(self):
        a = exact.fraction_matrix([[1, 2]])
        with pytest.raises(ValueError):
            exact.matmul(a, a)

    def test_transpose(self):
        a = exact.fraction_matrix([[1, 2, 3], [4, 5, 6]])
        assert exact.transpose(a) == exact.fraction_matrix([[1, 4], [2, 5], [3, 6]])

    def test_inverse_identity_property(self):
        a = exact.fraction_matrix([[2, 1, 0], [1, 3, 1], [0, 1, 4]])
        inv = exact.inverse(a)
        assert exact.matmul(a, inv) == exact.identity(3)

    def test_inverse_exact_fractions(self):
        a = exact.fraction_matrix([[1, Fraction(1, 2)], [0, Fraction(1, 3)]])
        inv = exact.inverse(a)
        assert exact.matmul(inv, a) == exact.identity(2)

    def test_inverse_singular(self):
        singular = exact.fraction_matrix([[1, 2], [2, 4]])
        with pytest.raises(ValueError):
            exact.inverse(singular)

    def test_inverse_non_square(self):
        with pytest.raises(ValueError):
            exact.inverse(exact.fraction_matrix([[1, 2, 3], [4, 5, 6]]))

    def test_inverse_requires_pivoting(self):
        # Leading zero forces a row swap.
        a = exact.fraction_matrix([[0, 1], [1, 0]])
        assert exact.inverse(a) == exact.fraction_matrix([[0, 1], [1, 0]])

    def test_to_numpy_roundtrip(self):
        a = exact.fraction_matrix([[1, Fraction(1, 2)], [Fraction(-3, 4), 2]])
        array = exact.to_numpy(a)
        assert array.dtype == np.float64
        back = exact.from_numpy(np.array([[1.0, 0.5], [-0.75, 2.0]]))
        assert back == a


class TestPowerOfTwo:
    @pytest.mark.parametrize(
        "value", [Fraction(1), Fraction(2), Fraction(-4), Fraction(1, 8), Fraction(-1, 2)]
    )
    def test_true_cases(self, value):
        assert exact.is_power_of_two_fraction(value)

    @pytest.mark.parametrize(
        "value", [Fraction(0), Fraction(3), Fraction(1, 6), Fraction(5, 8), Fraction(-7)]
    )
    def test_false_cases(self, value):
        assert not exact.is_power_of_two_fraction(value)

"""Tests for the numerical-accuracy analysis utilities."""

import numpy as np
import pytest

from repro.winograd.numerical import ErrorStats, conv_error, error_sweep, tile_error


class TestTileError:
    def test_float64_is_tiny(self):
        stats = tile_error(2, 3, dtype=np.float64, trials=8)
        assert stats.max_rel < 1e-12
        assert stats.acceptable()

    def test_float32_reasonable(self):
        stats = tile_error(4, 3, dtype=np.float32, trials=8)
        assert stats.max_rel < 1e-3
        assert stats.dtype == "float32"

    def test_error_grows_with_m(self):
        small = tile_error(2, 3, dtype=np.float32, trials=16, seed=1)
        large = tile_error(7, 3, dtype=np.float32, trials=16, seed=1)
        assert large.max_abs >= small.max_abs

    def test_fields_consistent(self):
        stats = tile_error(3, 3, trials=4)
        assert stats.m == 3 and stats.r == 3
        assert stats.mean_abs <= stats.max_abs


class TestConvError:
    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_full_conv_error_small(self, m):
        stats = conv_error(m, channels=3, kernels=3, height=12, width=12)
        assert stats.max_rel < 1e-9

    def test_acceptable_threshold(self):
        stats = ErrorStats(m=2, r=3, dtype="float32", max_abs=1.0, mean_abs=0.1, max_rel=1e-4)
        assert stats.acceptable(1e-3)
        assert not stats.acceptable(1e-5)


class TestErrorSweep:
    def test_sweep_length_and_order(self):
        sweep = error_sweep([2, 4, 6], trials=4)
        assert [stats.m for stats in sweep] == [2, 4, 6]
        assert all(stats.r == 3 for stats in sweep)

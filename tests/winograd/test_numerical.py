"""Tests for the numerical-accuracy analysis utilities."""

import numpy as np
import pytest

from repro.winograd.numerical import ErrorStats, conv_error, error_sweep, tile_error


class TestTileError:
    def test_float64_is_tiny(self):
        stats = tile_error(2, 3, dtype=np.float64, trials=8)
        assert stats.max_rel < 1e-12
        assert stats.acceptable()

    def test_float32_reasonable(self):
        stats = tile_error(4, 3, dtype=np.float32, trials=8)
        assert stats.max_rel < 1e-3
        assert stats.dtype == "float32"

    def test_error_grows_with_m(self):
        small = tile_error(2, 3, dtype=np.float32, trials=16, seed=1)
        large = tile_error(7, 3, dtype=np.float32, trials=16, seed=1)
        assert large.max_abs >= small.max_abs

    def test_fields_consistent(self):
        stats = tile_error(3, 3, trials=4)
        assert stats.m == 3 and stats.r == 3
        assert stats.mean_abs <= stats.max_abs


class TestConvError:
    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_full_conv_error_small(self, m):
        stats = conv_error(m, channels=3, kernels=3, height=12, width=12)
        assert stats.max_rel < 1e-9

    def test_acceptable_threshold(self):
        stats = ErrorStats(m=2, r=3, dtype="float32", max_abs=1.0, mean_abs=0.1, max_rel=1e-4)
        assert stats.acceptable(1e-3)
        assert not stats.acceptable(1e-5)


class TestErrorSweep:
    def test_sweep_length_and_order(self):
        sweep = error_sweep([2, 4, 6], trials=4)
        assert [stats.m for stats in sweep] == [2, 4, 6]
        assert all(stats.r == 3 for stats in sweep)

    @pytest.mark.parametrize("r", [2, 3, 5])
    def test_sweep_covers_kernel_sizes(self, r):
        sweep = error_sweep([2, 3, 4], r=r, trials=16, seed=7)
        assert [stats.m for stats in sweep] == [2, 3, 4]
        assert all(stats.r == r for stats in sweep)
        assert all(stats.max_rel < 1e-6 for stats in sweep)
        assert all(0.0 < stats.mean_rel <= stats.max_rel for stats in sweep)

    # Seeded float32 sweep values (trials=16, seed=7): golden numbers that
    # pin the measurement protocol — any change to the RNG draws, the cast
    # points or the error normalization shows up here first.
    @pytest.mark.parametrize(
        "r, golden_max_rel",
        [
            (2, [7.3641487506050395e-08, 4.5337457935479659e-08, 4.9909108529948078e-08]),
            (3, [3.0653416684558883e-08, 3.7069676456513227e-08, 4.3956015832134996e-08]),
            (5, [5.2206109873017181e-08, 5.6283445444487727e-08, 5.4159730358835764e-08]),
        ],
    )
    def test_sweep_golden_values(self, r, golden_max_rel):
        sweep = error_sweep([2, 3, 4], r=r, trials=16, seed=7)
        for stats, expected in zip(sweep, golden_max_rel):
            assert stats.max_rel == pytest.approx(expected, rel=1e-9)


class TestMeanRel:
    def test_defaults_to_zero_for_legacy_construction(self):
        stats = ErrorStats(m=2, r=3, dtype="float32", max_abs=1.0, mean_abs=0.1, max_rel=1e-4)
        assert stats.mean_rel == 0.0

    def test_tile_error_populates_mean_rel(self):
        stats = tile_error(3, 3, dtype=np.float32, trials=8)
        assert 0.0 < stats.mean_rel <= stats.max_rel

    def test_conv_error_populates_mean_rel(self):
        stats = conv_error(2, channels=2, kernels=2, height=8, width=8)
        assert 0.0 < stats.mean_rel <= stats.max_rel

"""Tests for the tiled Winograd convolution against the spatial reference."""

import numpy as np
import pytest

from repro.nn.reference import direct_conv2d, im2col_conv2d
from repro.winograd.fast_conv import WinogradConv2D, winograd_conv2d, winograd_correlate_1d


class TestCorrelate1D:
    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_matches_numpy_correlate(self, m, rng):
        signal = rng.standard_normal(37)
        taps = rng.standard_normal(3)
        fast = winograd_correlate_1d(signal, taps, m=m)
        reference = np.correlate(signal, taps, mode="valid")
        np.testing.assert_allclose(fast, reference, atol=1e-9)

    def test_length_not_multiple_of_m(self, rng):
        signal = rng.standard_normal(11)
        taps = rng.standard_normal(3)
        fast = winograd_correlate_1d(signal, taps, m=4)
        np.testing.assert_allclose(fast, np.correlate(signal, taps, mode="valid"), atol=1e-9)

    def test_rejects_2d_input(self, rng):
        with pytest.raises(ValueError):
            winograd_correlate_1d(rng.standard_normal((3, 3)), rng.standard_normal(3), m=2)

    def test_taps_longer_than_signal(self, rng):
        with pytest.raises(ValueError):
            winograd_correlate_1d(rng.standard_normal(2), rng.standard_normal(3), m=2)


class TestConv2D:
    @pytest.mark.parametrize("m", [2, 3, 4, 6])
    @pytest.mark.parametrize("padding", [0, 1])
    def test_matches_direct(self, m, padding, rng):
        x = rng.standard_normal((2, 3, 13, 11))
        w = rng.standard_normal((5, 3, 3, 3))
        fast = winograd_conv2d(x, w, m=m, padding=padding)
        reference = direct_conv2d(x, w, padding=padding)
        assert fast.shape == reference.shape
        np.testing.assert_allclose(fast, reference, atol=1e-9)

    def test_matches_im2col(self, rng):
        x = rng.standard_normal((1, 4, 10, 10))
        w = rng.standard_normal((2, 4, 3, 3))
        np.testing.assert_allclose(
            winograd_conv2d(x, w, m=4, padding=1),
            im2col_conv2d(x, w, padding=1),
            atol=1e-9,
        )

    def test_5x5_kernel(self, rng):
        x = rng.standard_normal((1, 2, 12, 12))
        w = rng.standard_normal((3, 2, 5, 5))
        np.testing.assert_allclose(
            winograd_conv2d(x, w, m=2, padding=2),
            direct_conv2d(x, w, padding=2),
            atol=1e-8,
        )

    def test_generated_transform_path(self, rng):
        # m=5 has no canonical matrices, exercising the generated fallback.
        x = rng.standard_normal((1, 2, 12, 12))
        w = rng.standard_normal((2, 2, 3, 3))
        np.testing.assert_allclose(
            winograd_conv2d(x, w, m=5, padding=1),
            direct_conv2d(x, w, padding=1),
            atol=1e-8,
        )

    def test_prefer_canonical_false(self, rng):
        x = rng.standard_normal((1, 1, 8, 8))
        w = rng.standard_normal((1, 1, 3, 3))
        np.testing.assert_allclose(
            winograd_conv2d(x, w, m=2, padding=1, prefer_canonical=False),
            direct_conv2d(x, w, padding=1),
            atol=1e-9,
        )

    def test_channel_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            winograd_conv2d(
                rng.standard_normal((1, 3, 8, 8)), rng.standard_normal((2, 4, 3, 3)), m=2
            )

    def test_bad_kernel_rank_rejected(self, rng):
        with pytest.raises(ValueError):
            winograd_conv2d(rng.standard_normal((1, 3, 8, 8)), rng.standard_normal((3, 3, 3)), m=2)

    def test_non_square_kernel_rejected(self, rng):
        with pytest.raises(ValueError):
            winograd_conv2d(
                rng.standard_normal((1, 1, 8, 8)), rng.standard_normal((1, 1, 3, 2)), m=2
            )

    def test_bad_feature_map_rank_rejected(self, rng):
        op = WinogradConv2D(m=2)
        with pytest.raises(ValueError):
            op(rng.standard_normal((3, 8, 8)), rng.standard_normal((1, 3, 3, 3)))


class TestPreparedFilters:
    def test_prepare_and_reuse(self, rng):
        op = WinogradConv2D(m=3, r=3)
        x = rng.standard_normal((1, 3, 9, 9))
        w = rng.standard_normal((4, 3, 3, 3))
        prepared = op.prepare_filters(w)
        assert prepared.shape == (4, 3, 5, 5)
        np.testing.assert_allclose(
            op(x, w, padding=1),
            op(x, None, padding=1, transformed_filters=prepared),
            atol=1e-12,
        )

    def test_prepare_rejects_bad_shape(self, rng):
        op = WinogradConv2D(m=2, r=3)
        with pytest.raises(ValueError):
            op.prepare_filters(rng.standard_normal((4, 3, 5, 5)))

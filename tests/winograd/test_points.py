"""Tests for interpolation-point selection."""

from fractions import Fraction

import pytest

from repro.winograd.points import (
    POINT_STRATEGIES,
    chebyshev_like_points,
    default_points,
    integer_points,
    validate_points,
)


class TestDefaultPoints:
    def test_first_points_are_canonical(self):
        assert default_points(3) == [Fraction(0), Fraction(1), Fraction(-1)]

    def test_longer_sequence_contains_halves(self):
        points = default_points(7)
        assert Fraction(1, 2) in points and Fraction(-1, 2) in points

    def test_all_distinct(self):
        points = default_points(12)
        assert len(set(points)) == 12

    def test_zero_count(self):
        assert default_points(0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            default_points(-1)


class TestIntegerPoints:
    def test_values(self):
        assert integer_points(5) == [Fraction(0), Fraction(1), Fraction(-1), Fraction(2), Fraction(-2)]

    def test_distinct(self):
        points = integer_points(9)
        assert len(set(points)) == 9

    def test_all_integers(self):
        assert all(point.denominator == 1 for point in integer_points(8))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            integer_points(-2)


class TestChebyshevLikePoints:
    def test_distinct_and_bounded(self):
        points = chebyshev_like_points(7)
        assert len(set(points)) == 7
        assert all(abs(point) <= 1 for point in points)

    def test_zero_count(self):
        assert chebyshev_like_points(0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            chebyshev_like_points(-1)


class TestValidation:
    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            validate_points([Fraction(0), Fraction(1), Fraction(1)])

    def test_passthrough(self):
        points = [Fraction(0), Fraction(2)]
        assert validate_points(points) == points

    def test_strategies_registry(self):
        assert set(POINT_STRATEGIES) == {"canonical", "integer", "chebyshev"}
        for strategy in POINT_STRATEGIES.values():
            assert len(strategy(4)) == 4

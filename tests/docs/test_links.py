"""Every relative link in README.md + docs/ must resolve to a real file.

Runs the same stdlib checker CI's docs job uses
(``scripts/check_doc_links.py``) as a subprocess, so the tier-1 suite and
the CI job cannot disagree about what "link-clean" means.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_readme_and_docs_links_resolve():
    completed = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "check_doc_links.py")],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr


def test_docs_suite_is_complete():
    """The documentation set the README promises actually ships."""
    for page in ("architecture.md", "http-api.md", "cli.md"):
        assert (REPO_ROOT / "docs" / page).exists(), f"docs/{page} missing"
    readme = (REPO_ROOT / "README.md").read_text()
    for page in ("docs/architecture.md", "docs/http-api.md", "docs/cli.md"):
        assert page in readme, f"README.md does not link {page}"

"""``docs/http-api.md`` must cover exactly the server's route table.

The reference documents endpoints as ``### METHOD /path`` headings; this
test diffs that set against :meth:`repro.service.ResultServer.route_table`
(placeholder segment names normalized), so adding, removing or renaming a
route without updating the docs fails CI — in either direction.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.service import ResultServer

DOC = Path(__file__).resolve().parents[2] / "docs" / "http-api.md"

HEADING = re.compile(r"^###\s+(GET|POST|PUT|DELETE|PATCH)\s+(/\S*)\s*$", re.MULTILINE)
PLACEHOLDER = re.compile(r"\{[^}]*\}")


def normalize(method: str, pattern: str) -> str:
    """``(method, pattern)`` with placeholder names erased: ``GET /v1/x/{}``."""
    return f"{method} {PLACEHOLDER.sub('{}', pattern)}"


def documented_routes() -> set:
    """Every ``### METHOD /path`` heading in the API reference."""
    return {
        normalize(method, pattern)
        for method, pattern in HEADING.findall(DOC.read_text())
    }


def served_routes() -> set:
    """Every route the server actually dispatches."""
    return {
        normalize(method, pattern) for method, pattern in ResultServer.route_table()
    }


def test_doc_exists_and_documents_something():
    assert DOC.exists(), "docs/http-api.md is missing"
    assert len(documented_routes()) >= 10


def test_every_served_route_is_documented():
    missing = served_routes() - documented_routes()
    assert not missing, (
        f"server routes missing from docs/http-api.md: {sorted(missing)} — "
        "add a '### METHOD /path' section for each"
    )


def test_no_stale_documented_routes():
    stale = documented_routes() - served_routes()
    assert not stale, (
        f"docs/http-api.md documents routes the server no longer serves: "
        f"{sorted(stale)}"
    )


def test_doc_mentions_error_shape_and_statuses():
    text = DOC.read_text()
    assert '{"error"' in text, "the shared error shape must be documented"
    for status in ("400", "404", "405", "500", "202"):
        assert status in text, f"status code {status} undocumented"

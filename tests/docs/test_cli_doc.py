"""``docs/cli.md`` must name every real CLI flag, and no stale ones.

Two directions, per subcommand: every ``--flag`` the argparse parsers
define appears in the subcommand's section of the doc (so new flags
cannot ship undocumented), and every ``--flag`` the doc names is accepted
by the corresponding ``--help`` (so removed flags cannot linger). The
``--help`` text itself is the source of truth — the doc is parsed, the
parser is introspected.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.experiments.cli import build_parser

DOC = Path(__file__).resolve().parents[2] / "docs" / "cli.md"
SUBCOMMANDS = ("run", "report", "list", "serve", "worker", "migrate")

FLAG = re.compile(r"`(--[a-z][a-z0-9-]*)`")


def doc_sections() -> dict:
    """Map subcommand name -> its ``## <name>`` section text."""
    text = DOC.read_text()
    sections = {}
    parts = re.split(r"^##\s+(\w+)\s*$", text, flags=re.MULTILINE)
    for name, body in zip(parts[1::2], parts[2::2]):
        sections[name] = body
    return sections


def subcommand_parser(subcommand: str):
    """The argparse sub-parser behind ``python -m repro <subcommand>``."""
    parser = build_parser()
    return parser._subparsers._group_actions[0].choices[subcommand]


def parser_flags(subcommand: str) -> set:
    """Every long option a subcommand's parser accepts (minus --help)."""
    sub = subcommand_parser(subcommand)
    flags = set()
    for action in sub._actions:
        for option in action.option_strings:
            if option.startswith("--") and option != "--help":
                flags.add(option)
    return flags


def test_doc_exists_with_all_subcommand_sections():
    sections = doc_sections()
    for name in SUBCOMMANDS:
        assert name in sections, f"docs/cli.md lacks a '## {name}' section"


@pytest.mark.parametrize("subcommand", SUBCOMMANDS)
def test_every_parser_flag_is_documented(subcommand):
    section = doc_sections()[subcommand]
    documented = set(FLAG.findall(section))
    missing = parser_flags(subcommand) - documented
    assert not missing, (
        f"flags of '{subcommand}' missing from docs/cli.md: {sorted(missing)}"
    )


@pytest.mark.parametrize("subcommand", SUBCOMMANDS)
def test_no_stale_documented_flags(subcommand):
    section = doc_sections()[subcommand]
    documented = set(FLAG.findall(section))
    stale = documented - parser_flags(subcommand)
    assert not stale, (
        f"docs/cli.md documents flags '{subcommand}' does not accept: {sorted(stale)}"
    )


@pytest.mark.parametrize("subcommand", SUBCOMMANDS)
def test_help_output_mentions_every_documented_flag(subcommand):
    """The acceptance check: --help text covers the documented flags."""
    help_text = subcommand_parser(subcommand).format_help()
    for flag in FLAG.findall(doc_sections()[subcommand]):
        assert flag in help_text, (
            f"documented flag {flag} absent from 'python -m repro {subcommand} --help'"
        )

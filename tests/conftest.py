"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import ConvLayer, InputSpec, Network, vgg16_d


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """A deterministic random generator shared by numeric tests."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def vgg16() -> Network:
    """The paper's workload, built once per session."""
    return vgg16_d()


@pytest.fixture()
def small_layer() -> ConvLayer:
    """A small VGG-style layer usable by functional and simulator tests."""
    return ConvLayer(
        name="small",
        in_channels=4,
        out_channels=6,
        height=14,
        width=14,
        kernel_size=3,
        padding=1,
    )


@pytest.fixture()
def tiny_network() -> Network:
    """A three-layer all-3x3 network small enough for functional forward passes."""
    network = Network("tiny", InputSpec(batch=1, channels=3, height=16, width=16))
    network.add(ConvLayer("c1", 3, 8, 16, 16, group="G1"))
    network.add(ConvLayer("c2", 8, 8, 16, 16, group="G1"))
    network.add(ConvLayer("c3", 8, 16, 16, 16, group="G2"))
    return network

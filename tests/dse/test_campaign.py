"""Tests for the campaign engine: Campaign/CampaignResult, reporting, registries."""

import pytest

from repro.core.design_space import SweepSpec, frequency_range
from repro.dse import (
    Campaign,
    CampaignResult,
    EvaluationCache,
    ExecutorConfig,
    iter_explore,
    run_campaign,
)
from repro.hw.device import FpgaDevice, get_device, resolve_device, virtex7_485t
from repro.nn import get_network, known_networks, register_network, resolve_network
from repro.reporting import (
    campaign_comparison_table,
    campaign_summary_table,
    campaign_to_csv,
)

SPEC = SweepSpec(
    m_values=(2, 3, 4),
    multiplier_budgets=(256, 512),
    frequencies_mhz=(200.0,),
)


@pytest.fixture(scope="module")
def result() -> CampaignResult:
    campaign = Campaign(
        networks=("vgg16-d", "alexnet"),
        devices=("xc7vx485t", "xc7vx690t"),
        sweeps=(SPEC,),
        name="unit",
    )
    return campaign.run(cache=EvaluationCache())


class TestRegistries:
    def test_get_network_builds_fresh_instances(self):
        first = get_network("vgg16-d")
        second = get_network("vgg16-d")
        assert first is not second
        assert first.name == second.name == "vgg16-d"

    def test_known_networks_and_unknown_error(self):
        assert {"vgg16-d", "alexnet", "resnet18"} <= set(known_networks())
        with pytest.raises(KeyError, match="unknown network"):
            get_network("lenet-1998")

    def test_register_and_resolve(self, tiny_network):
        register_network("tiny-test", lambda: tiny_network)
        try:
            assert resolve_network("tiny-test") is tiny_network
            assert resolve_network(tiny_network) is tiny_network
        finally:
            from repro.nn.registry import NETWORK_BUILDERS

            NETWORK_BUILDERS.pop("tiny-test")
        with pytest.raises(TypeError):
            resolve_network(42)

    def test_resolve_device(self):
        device = virtex7_485t()
        assert resolve_device(device) is device
        assert resolve_device("xc7vx690t") == get_device("xc7vx690t")
        with pytest.raises(KeyError):
            resolve_device("no-such-fpga")
        with pytest.raises(TypeError):
            resolve_device(3.14)

    def test_resolve_device_exported_from_hw(self):
        from repro.hw import resolve_device as from_hw

        assert from_hw is resolve_device

    def test_register_network_collision_guard(self, tiny_network):
        with pytest.raises(ValueError, match="already registered"):
            register_network("vgg16-d", lambda: tiny_network)
        assert get_network("vgg16-d").name == "vgg16-d"  # untouched
        register_network("vgg16-d-tmp", lambda: tiny_network)
        try:
            with pytest.raises(ValueError, match="overwrite=True"):
                register_network("vgg16-d-tmp", lambda: tiny_network)
            register_network("vgg16-d-tmp", lambda: tiny_network, overwrite=True)
        finally:
            from repro.nn.registry import NETWORK_BUILDERS

            NETWORK_BUILDERS.pop("vgg16-d-tmp")
        with pytest.raises(TypeError):
            register_network("", lambda: tiny_network)
        with pytest.raises(TypeError):
            register_network("not-callable", 42)

    def test_register_device_mirrors_network_registry(self):
        from repro.hw import DEVICES, known_devices, register_device

        assert {"xc7vx485t", "xc7vx690t"} <= set(known_devices())
        custom = FpgaDevice(
            name="unit-test-fpga",
            luts=10_000,
            registers=20_000,
            dsp_slices=100,
            bram_kbits=1_000,
        )
        register_device("unit-test-fpga", custom)
        try:
            assert resolve_device("unit-test-fpga") == custom
            assert "unit-test-fpga" in known_devices()
            with pytest.raises(ValueError, match="already registered"):
                register_device("unit-test-fpga", custom)
            register_device("unit-test-fpga", custom, overwrite=True)
        finally:
            DEVICES.pop("unit-test-fpga")
        with pytest.raises(TypeError):
            register_device("bad", "not-a-device")
        with pytest.raises(TypeError):
            register_device("", custom)


class TestSweepSpecExtensions:
    def test_r_values_expand_the_grid(self):
        spec = SweepSpec(m_values=(2, 3), r_values=(3, 5), multiplier_budgets=(512,))
        assert spec.effective_r_values == (3, 5)
        assert spec.size == 4
        entries = list(spec.configurations())
        assert [(entry.m, entry.r) for entry in entries] == [
            (2, 3), (2, 5), (3, 3), (3, 5),
        ]

    def test_default_r_values_fall_back_to_r(self):
        spec = SweepSpec(m_values=(4,), r=3)
        assert spec.effective_r_values == (3,)
        assert spec.size == 1

    def test_sweepspec_generator_fields_survive(self):
        spec = SweepSpec(m_values=(2, 3), multiplier_budgets=iter([256, 512]))
        assert spec.multiplier_budgets == (256, 512)
        assert spec.size == 4
        assert len(list(spec.configurations())) == 4
        run = Campaign(networks="alexnet", sweeps=spec).run(cache=EvaluationCache())
        assert run.evaluations == 4
        assert run.feasible == 4

    def test_sweepspec_scalar_fields_wrap(self):
        spec = SweepSpec(m_values=4, multiplier_budgets=512,
                         frequencies_mhz=150.0, shared_data_transform=False, r_values=3)
        assert spec.m_values == (4,)
        assert spec.multiplier_budgets == (512,)
        assert spec.frequencies_mhz == (150.0,)
        assert spec.shared_data_transform == (False,)
        assert spec.effective_r_values == (3,)
        assert spec.size == 1

    def test_campaign_objectives_normalized(self):
        from repro.reporting import campaign_summary_table

        pairs = (("throughput_gops", True), ("power_efficiency", True))
        run = Campaign(
            networks=("alexnet",),
            sweeps=(SweepSpec(m_values=(2, 3)),),
            objectives=(pair for pair in pairs),
        ).run(cache=EvaluationCache())
        first = run.pareto_fronts()
        second = run.pareto_fronts()  # re-reads objectives; must not exhaust
        assert first.keys() == second.keys()
        assert campaign_summary_table(run)
        # A single bare ("metric", maximize) pair is one objective, not two.
        single = Campaign(networks=("alexnet",), objectives=("total_latency_ms", False))
        assert single.objectives == (("total_latency_ms", False),)

    def test_empty_r_values_means_sweep_nothing(self):
        spec = SweepSpec(m_values=(2, 3), r_values=())
        assert spec.effective_r_values == ()
        assert spec.size == 0
        assert list(spec.configurations()) == []

    def test_frequency_range_inclusive(self):
        assert frequency_range(100.0, 300.0, 50.0) == (100.0, 150.0, 200.0, 250.0, 300.0)
        assert frequency_range(200.0, 200.0) == (200.0,)
        with pytest.raises(ValueError):
            frequency_range(200.0, 100.0, 50.0)
        with pytest.raises(ValueError):
            frequency_range(100.0, 200.0, 0.0)

    def test_frequency_range_edge_cases_raise(self):
        with pytest.raises(ValueError, match="step must be positive"):
            frequency_range(100.0, 200.0, -25.0)
        with pytest.raises(ValueError, match="positive"):
            frequency_range(0.0, 200.0)
        with pytest.raises(ValueError, match="positive"):
            frequency_range(100.0, -5.0)
        with pytest.raises(ValueError, match="finite"):
            frequency_range(100.0, float("nan"))
        with pytest.raises(ValueError, match="finite"):
            frequency_range(100.0, float("inf"), 50.0)
        with pytest.raises(ValueError, match="number"):
            frequency_range(100.0, "300", 50.0)

    @pytest.mark.parametrize(
        "field_name",
        ["m_values", "multiplier_budgets", "frequencies_mhz", "shared_data_transform"],
    )
    def test_empty_sweep_axes_raise(self, field_name):
        with pytest.raises(ValueError, match="empty"):
            SweepSpec(**{field_name: ()})

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"m_values": (0,)}, "m_values"),
            ({"m_values": (2.5,)}, "m_values"),
            ({"r": 0}, "kernel"),
            ({"r_values": (3, -1)}, "kernel"),
            ({"multiplier_budgets": (0,)}, "multiplier_budgets"),
            ({"multiplier_budgets": (256.0,)}, "multiplier_budgets"),
            ({"frequencies_mhz": (0.0,)}, "frequencies_mhz"),
            ({"frequencies_mhz": (-150.0,)}, "frequencies_mhz"),
            ({"frequencies_mhz": (float("nan"),)}, "frequencies_mhz"),
            ({"shared_data_transform": (1,)}, "shared_data_transform"),
        ],
    )
    def test_out_of_domain_sweep_values_raise(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            SweepSpec(**kwargs)

    def test_valid_edge_values_still_accepted(self):
        spec = SweepSpec(
            m_values=(1,),
            multiplier_budgets=(1, None),
            frequencies_mhz=(0.5,),
            r_values=(1, 3),
        )
        assert spec.size == 4

    def test_with_frequency_range(self):
        spec = SweepSpec(m_values=(4,)).with_frequency_range(100.0, 200.0, 50.0)
        assert spec.frequencies_mhz == (100.0, 150.0, 200.0)
        assert spec.m_values == (4,)


class TestIterExplore:
    def test_accepts_names_and_streams_in_order(self):
        points = list(
            iter_explore(
                "vgg16-d",
                SweepSpec(m_values=(2, 3), multiplier_budgets=(256,)),
                devices="xc7vx485t",
                cache=EvaluationCache(),
            )
        )
        assert [point.m for point in points] == [2, 3]
        assert all(point.device_name == "xc7vx485t" for point in points)

    def test_network_major_ordering(self, result):
        names = [point.workload_name for point in result.points]
        assert names == sorted(names, key=("vgg16-d", "alexnet").index)

    def test_empty_networks_rejected(self):
        with pytest.raises(ValueError):
            list(iter_explore([], SPEC))

    def test_bad_executor_config(self):
        with pytest.raises(ValueError):
            ExecutorConfig(mode="threads")
        with pytest.raises(ValueError):
            ExecutorConfig(max_workers=0)

    def test_explore_defaults_to_serial_even_on_big_grids(self, monkeypatch, tiny_network):
        """executor=None must never spawn a process pool — existing callers
        (and the quickstarts) run at module level without a __main__ guard."""
        import concurrent.futures
        import repro.dse.engine as engine_mod
        from repro.core.design_space import explore

        def bomb(*args, **kwargs):
            raise AssertionError("process pool must not be used by default")

        monkeypatch.setattr(engine_mod.os, "cpu_count", lambda: 8)
        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", bomb)
        spec = SweepSpec(
            m_values=(2, 3, 4),
            multiplier_budgets=(64, 128, 256),
            frequencies_mhz=tuple(float(f) for f in range(100, 300, 25)),
        )
        assert spec.size >= ExecutorConfig().min_grid_for_processes
        points = explore(tiny_network, spec)
        assert len(points) > 0
        run = Campaign(networks=(tiny_network,), sweeps=(spec,)).run()
        assert run.feasible == len(points)

    def test_auto_mode_prefers_serial_for_explicit_cache(self, monkeypatch, tiny_network):
        """A caller-supplied cache asks for isolation: auto mode must not
        route the work to workers that can only use process-global caches."""
        import concurrent.futures
        import repro.dse.engine as engine_mod

        def bomb(*args, **kwargs):
            raise AssertionError("process pool must not be used")

        monkeypatch.setattr(engine_mod.os, "cpu_count", lambda: 8)
        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", bomb)
        config = ExecutorConfig(mode="auto", max_workers=4, min_grid_for_processes=1)
        spec = SweepSpec(m_values=(2, 3), multiplier_budgets=(64,))

        cache = EvaluationCache()
        points = list(iter_explore(tiny_network, spec, cache=cache, executor=config))
        assert len(points) == 2
        assert cache.stats["points"].misses == 2  # the supplied cache was used
        # Without an explicit cache the same config does pick the pool.
        with pytest.raises(AssertionError, match="must not be used"):
            list(iter_explore(tiny_network, spec, executor=config))


class TestCampaignResult:
    def test_counts(self, result):
        assert result.evaluations == result.campaign.grid_size == 2 * 2 * SPEC.size
        assert result.feasible == len(result.points)
        assert result.feasible + result.skipped == result.evaluations
        assert result.elapsed_seconds > 0

    def test_groupings(self, result):
        by_network = result.by_network()
        assert set(by_network) == {"vgg16-d", "alexnet"}
        assert sum(len(points) for points in by_network.values()) == result.feasible
        by_cell = result.by_cell()
        assert set(by_cell) == {
            (network, device)
            for network in ("vgg16-d", "alexnet")
            for device in ("xc7vx485t", "xc7vx690t")
        }

    def test_pareto_fronts_per_network(self, result):
        fronts = result.pareto_fronts()
        assert set(fronts) == {"vgg16-d", "alexnet"}
        for name, front in fronts.items():
            assert front
            cell_points = result.by_network()[name]
            assert all(any(member is point for point in cell_points) for member in front)

    def test_best_and_best_by_metric(self, result):
        best = result.best("throughput_gops")
        assert best.throughput_gops == max(p.throughput_gops for p in result.points)
        fastest = result.best("total_latency_ms")  # direction inferred (minimize)
        assert fastest.total_latency_ms == min(p.total_latency_ms for p in result.points)
        picks = result.best_by_metric()
        assert set(picks) == {"vgg16-d", "alexnet"}
        for name, by_metric in picks.items():
            assert by_metric["throughput_gops"].workload_name == name

    def test_comparison_rows(self, result):
        rows = result.comparison_rows("throughput_gops")
        assert [row["network"] for row in rows] == ["vgg16-d", "alexnet"]
        for row in rows:
            assert set(row) == {"network", "xc7vx485t", "xc7vx690t"}

    def test_run_campaign_function_matches_method(self):
        campaign = Campaign(networks=("alexnet",), sweeps=(SweepSpec(m_values=(2,)),))
        assert run_campaign(campaign, cache=EvaluationCache()).points == campaign.run(
            cache=EvaluationCache()
        ).points

    def test_generator_inputs_survive(self):
        """One-shot iterables are normalized at construction, so the grid
        accounting and the run read the same (non-exhausted) inputs."""
        campaign = Campaign(
            networks=(name for name in ("alexnet", "vgg16-d")),
            sweeps=(spec for spec in (SweepSpec(m_values=(2, 3)),)),
        )
        assert campaign.grid_size == 4
        run = campaign.run(cache=EvaluationCache())
        assert run.evaluations == 4
        assert run.feasible == 4
        assert run.skipped == 0

    def test_scalar_string_inputs(self):
        campaign = Campaign(networks="alexnet", devices="xc7vx690t", sweeps=SweepSpec(m_values=(2, 3)))
        assert campaign.grid_size == 2
        run = campaign.run(cache=EvaluationCache())
        assert run.feasible == 2
        assert {point.workload_name for point in run.points} == {"alexnet"}
        assert {point.device_name for point in run.points} == {"xc7vx690t"}

    def test_cache_stats_are_per_run_not_cumulative(self):
        campaign = Campaign(networks=("alexnet",), sweeps=(SweepSpec(m_values=(2, 3)),))
        cache = EvaluationCache()
        first = campaign.run(cache=cache)
        second = campaign.run(cache=cache)
        assert first.cache_stats.misses > 0
        # Every grid entry of the second run is a whole-point cache hit, and
        # the counters describe that run alone, not the process lifetime.
        assert second.cache_stats.misses == 0
        assert second.cache_stats.hits == second.evaluations
        assert second.cache_stats.lookups < first.cache_stats.lookups

    def test_cache_disabled_reports_zero_stats(self):
        campaign = Campaign(networks=("alexnet",), sweeps=(SweepSpec(m_values=(2,)),))
        run = campaign.run(cache=False)
        assert run.feasible == 1
        assert run.cache_stats.lookups == 0


class TestCampaignReporting:
    def test_summary_table(self, result):
        table = campaign_summary_table(result)
        assert "network" in table and "best_gops" in table
        assert "vgg16-d" in table and "xc7vx690t" in table
        assert "feasible points" in table  # default title

    def test_comparison_table(self, result):
        table = campaign_comparison_table(result, metric="power_efficiency")
        assert "power_efficiency" in table
        assert "vgg16-d" in table and "alexnet" in table

    def test_csv_export(self, result):
        csv_text = campaign_to_csv(result)
        lines = csv_text.strip().splitlines()
        assert len(lines) == result.feasible + 1
        header = lines[0].split(",")
        assert {"network", "device", "design", "throughput_gops"} <= set(header)

    def test_csv_keeps_group_columns_of_every_network(self):
        """Different networks report different per-group latency columns;
        the export must union them instead of taking the first row's keys."""
        run = Campaign(
            networks=("vgg16-d", "resnet18"), sweeps=(SweepSpec(m_values=(4,)),)
        ).run(cache=EvaluationCache())
        header = set(campaign_to_csv(run).splitlines()[0].split(","))
        expected = set()
        for point in run.points:
            expected |= set(point.summary_row())
        assert expected <= header


class TestCacheBehaviour:
    def test_fingerprint_changes_on_mutation(self, tiny_network):
        from repro.dse import network_fingerprint
        from repro.nn import ConvLayer

        before = network_fingerprint(tiny_network)
        tiny_network.add(ConvLayer("extra", 16, 16, 16, 16))
        after = network_fingerprint(tiny_network)
        assert before != after

    def test_infeasible_error_is_negatively_cached(self, tiny_network):
        from repro.dse import evaluate_design_cached

        cache = EvaluationCache()
        with pytest.raises(ValueError, match="cannot host") as first:
            evaluate_design_cached(tiny_network, m=4, multiplier_budget=10, cache=cache)
        misses = cache.stats["points"].misses
        with pytest.raises(ValueError, match="cannot host") as second:
            evaluate_design_cached(tiny_network, m=4, multiplier_budget=10, cache=cache)
        assert cache.stats["points"].misses == misses
        assert cache.stats["points"].hits >= 1
        # The replay preserves the exception class and args exactly.
        assert type(second.value) is type(first.value)
        assert second.value.args == first.value.args

    def test_mutating_result_latency_does_not_poison_cache(self, vgg16):
        from repro.core.design_space import SweepSpec, explore

        cache = EvaluationCache()
        spec = SweepSpec(m_values=(4,))
        first = explore(vgg16, spec, cache=cache)[0]
        original = dict(first.group_latency_ms)
        # Mutate through both the accessor and the raw latency report.
        first.group_latency_ms["Conv1"] = 0.0
        first.latency.group_latency_ms["Conv1"] = -1.0
        second = explore(vgg16, spec, cache=cache)[0]
        assert second.group_latency_ms == original
        assert second.latency.group_latency_ms == original
        assert second.latency.group_latency_ms is not first.latency.group_latency_ms

    def test_cache_false_falls_through_to_uncached(self, vgg16):
        from repro.core.design_point import evaluate_design
        from repro.dse import evaluate_design_cached

        cached_off = evaluate_design_cached(vgg16, m=4, multiplier_budget=700, cache=False)
        plain = evaluate_design(vgg16, m=4, multiplier_budget=700)
        assert cached_off == plain

    def test_concurrent_eviction_is_safe(self, vgg16):
        import threading

        from repro.dse import evaluate_design_cached

        cache = EvaluationCache(max_points=3)
        errors = []

        def hammer(base):
            try:
                for offset in range(8):
                    evaluate_design_cached(
                        vgg16, m=4, multiplier_budget=400 + base + offset, cache=cache
                    )
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(100 * i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache._points) <= 3 + len(threads)  # bound enforced (best effort)

    def test_clear_resets_everything(self, tiny_network):
        from repro.dse import evaluate_design_cached

        cache = EvaluationCache()
        evaluate_design_cached(tiny_network, m=2, multiplier_budget=64, cache=cache)
        assert cache.entries > 0
        cache.clear()
        assert cache.entries == 0
        assert cache.total.lookups == 0

    def test_stats_hit_rate(self):
        from repro.dse import CacheStats

        stats = CacheStats()
        assert stats.hit_rate == 0.0
        stats.hits, stats.misses = 3, 1
        assert stats.hit_rate == 0.75
        combined = stats + CacheStats(hits=1, misses=3)
        assert combined.lookups == 8
        assert combined.delta_since(stats) == CacheStats(hits=1, misses=3)

    def test_point_and_latency_layers_are_bounded(self, vgg16):
        from repro.dse import evaluate_design_cached

        cache = EvaluationCache(max_points=2)
        for budget in (256, 512, 700, 1024):
            evaluate_design_cached(vgg16, m=4, multiplier_budget=budget, cache=cache)
        assert len(cache._points) == 2
        assert len(cache._latency) <= 2
        # The oldest entry was evicted: re-evaluating it misses again.
        misses = cache.stats["points"].misses
        evaluate_design_cached(vgg16, m=4, multiplier_budget=256, cache=cache)
        assert cache.stats["points"].misses == misses + 1
        # The newest entry is still held: hit.
        hits = cache.stats["points"].hits
        evaluate_design_cached(vgg16, m=4, multiplier_budget=1024, cache=cache)
        assert cache.stats["points"].hits == hits + 1

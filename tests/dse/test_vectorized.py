"""The vectorized batch engine must be bit-identical to the serial path.

``ExecutorConfig(mode="vectorized")`` promises *exactly* the serial
results — same floats, same ordering, same skips, same errors on the same
entries — so these tests compare pickled bytes rather than approximate
values: a single ULP of drift anywhere in the latency, power or complexity
math fails the suite.  Coverage spans seeded random sweeps, the edge grids
called out in the issue (single-point grids, explicit ``r_values=()``,
degenerate frequency ranges) and the ``"auto"`` executor's mode selection.
"""

import pickle
import random

import pytest

from repro.core.design_point import evaluate_design
from repro.core.design_space import GridEntry, SweepSpec, frequency_range
from repro.dse import (
    EvaluationCache,
    ExecutorConfig,
    evaluate_cell_batch,
    iter_explore,
)
from repro.hw.calibration import DEFAULT_CALIBRATION
from repro.hw.device import get_device
from repro.nn import get_network

NETWORKS = ("vgg16-d", "alexnet", "resnet18")
DEVICES = ("xc7vx485t", "xc7vx690t")

SERIAL = ExecutorConfig(mode="serial")
VECTORIZED = ExecutorConfig(mode="vectorized")


def run_mode(executor, networks, spec, devices, skip_infeasible=True):
    """(pickled points, error repr) of one iter_explore run."""
    blobs = []
    try:
        for point in iter_explore(
            networks,
            spec,
            devices=devices,
            skip_infeasible=skip_infeasible,
            cache=False,
            executor=executor,
        ):
            blobs.append(pickle.dumps(point))
    except (ValueError, ZeroDivisionError) as error:
        return blobs, (type(error).__name__, str(error))
    return blobs, None


def assert_modes_identical(networks, spec, devices, skip_infeasible=True):
    serial = run_mode(SERIAL, networks, spec, devices, skip_infeasible)
    vectorized = run_mode(VECTORIZED, networks, spec, devices, skip_infeasible)
    assert serial[1] == vectorized[1], "paths must fail identically"
    assert serial[0] == vectorized[0], "points must be bit-identical and same-order"
    return len(serial[0])


class TestSeededRandomSweeps:
    def random_spec(self, rng: random.Random) -> SweepSpec:
        m_values = tuple(rng.sample(range(1, 8), rng.randint(1, 3)))
        budgets = tuple(
            rng.sample([None, 4, 16, 64, 144, 256, 400, 576, 1024, 2048], rng.randint(1, 4))
        )
        frequencies = tuple(
            float(rng.choice((50, 100, 150, 200, 250, 300))) for _ in range(rng.randint(1, 3))
        )
        shared = tuple(rng.sample((True, False), rng.randint(1, 2)))
        return SweepSpec(
            m_values=m_values,
            multiplier_budgets=budgets,
            frequencies_mhz=frequencies,
            shared_data_transform=shared,
        )

    @pytest.mark.parametrize("seed", range(12))
    def test_random_sweep_bit_identical(self, seed):
        rng = random.Random(2019 + seed)
        spec = self.random_spec(rng)
        networks = rng.sample(NETWORKS, rng.randint(1, 2))
        devices = rng.sample(DEVICES, rng.randint(1, 2))
        skip = rng.random() < 0.7
        assert_modes_identical(networks, spec, devices, skip_infeasible=skip)

    def test_fig6_scale_sweep_bit_identical(self):
        spec = SweepSpec(
            m_values=(2, 3, 4, 5, 6),
            multiplier_budgets=(100, 400, 900, 1600, None),
            frequencies_mhz=frequency_range(100.0, 300.0, 100.0),
            shared_data_transform=(True, False),
        )
        produced = assert_modes_identical(NETWORKS, spec, DEVICES)
        assert produced > 100  # the sweep must actually exercise the table


class TestEdgeGrids:
    def test_single_point_grid(self):
        spec = SweepSpec(m_values=(4,), multiplier_budgets=(512,), frequencies_mhz=(200.0,))
        produced = assert_modes_identical("alexnet", spec, "xc7vx485t")
        assert produced == 1

    def test_explicit_empty_r_values_sweeps_nothing(self):
        spec = SweepSpec(r_values=())
        assert spec.size == 0
        produced = assert_modes_identical("vgg16-d", spec, None)
        assert produced == 0

    def test_r_values_sweep(self):
        spec = SweepSpec(
            m_values=(2, 3, 4), r_values=(2, 3), multiplier_budgets=(256, None)
        )
        assert_modes_identical(("vgg16-d", "alexnet"), spec, DEVICES)

    def test_infeasible_budget_raises_identically_mid_stream(self):
        spec = SweepSpec(
            m_values=(2, 6), multiplier_budgets=(256, 4), frequencies_mhz=(200.0,)
        )
        serial = run_mode(SERIAL, "vgg16-d", spec, "xc7vx485t", skip_infeasible=False)
        vectorized = run_mode(VECTORIZED, "vgg16-d", spec, "xc7vx485t", skip_infeasible=False)
        assert serial[1] == ("ValueError", "multiplier budget 4 cannot host one F(2,3) PE")
        assert vectorized == serial  # same prefix of yielded points, same error

    def test_device_too_small_raises_identically(self):
        spec = SweepSpec(m_values=(40,), multiplier_budgets=(None,))
        serial = run_mode(SERIAL, "alexnet", spec, "xc7vx485t", skip_infeasible=False)
        vectorized = run_mode(VECTORIZED, "alexnet", spec, "xc7vx485t", skip_infeasible=False)
        assert serial == vectorized
        assert "cannot host a single F(40x40, 3x3) PE" in serial[1][1]

    def test_infeasible_entries_skipped_identically(self):
        spec = SweepSpec(m_values=(2, 6, 40), multiplier_budgets=(4, 256, None))
        assert_modes_identical("vgg16-d", spec, DEVICES, skip_infeasible=True)

    @pytest.mark.parametrize("bad", (float("nan"), float("inf"), 0.0, -50.0))
    def test_degenerate_frequencies_rejected_identically(self, bad):
        # Degenerate frequency axes are rejected by SweepSpec validation —
        # before either executor can run, so both modes fail identically.
        with pytest.raises(ValueError):
            SweepSpec(frequencies_mhz=(bad,))
        with pytest.raises(ValueError):
            frequency_range(100.0, bad)

    def test_handmade_degenerate_entries_match_scalar(self):
        """Entries bypassing SweepSpec validation still mirror the scalar path."""
        network = get_network("alexnet")
        device = get_device("xc7vx485t")
        entries = [
            GridEntry(4, 3, 512, float("nan"), True),  # NaN propagates, like serial
            GridEntry(4, 3, 512, 0.0, True),  # "frequency must be positive"
            GridEntry(2, 3, 4, 200.0, True),  # budget too small
            GridEntry(4, 3, 800, 250.0, True),  # feasible
        ]
        scalar = []
        for entry in entries:
            try:
                point = evaluate_design(
                    network,
                    m=entry.m,
                    r=entry.r,
                    multiplier_budget=entry.multiplier_budget,
                    frequency_mhz=entry.frequency_mhz,
                    shared_data_transform=entry.shared_data_transform,
                    device=device,
                    calibration=DEFAULT_CALIBRATION,
                )
            except ValueError:
                scalar.append(None)
                continue
            scalar.append(point if point.resources.fits(device) else None)
        batch = evaluate_cell_batch(network, device, DEFAULT_CALIBRATION, entries)
        assert batch.pending_error is None
        assert len(batch.points) == len(scalar)
        for scalar_point, batch_point in zip(scalar, batch.points):
            assert (scalar_point is None) == (batch_point is None)
            if scalar_point is not None:
                assert pickle.dumps(scalar_point) == pickle.dumps(batch_point)


class TestBatchModelTwins:
    """The standalone batch twins must track their scalar counterparts."""

    def test_batch_max_parallel_pes_matches_scalar(self):
        from repro.hw.engine import batch_max_parallel_pes, max_parallel_pes

        budgets = list(range(0, 3000, 97))
        for m in (1, 2, 4, 7):
            batch = batch_max_parallel_pes(m, 3, budgets).tolist()
            assert batch == [max_parallel_pes(m, 3, budget) for budget in budgets]
        with pytest.raises(ValueError):
            batch_max_parallel_pes(2, 3, [256, -1])

    def test_batch_estimate_fmax_matches_scalar(self):
        from repro.hw.frequency import batch_estimate_fmax, estimate_fmax

        levels = list(range(-1, 20))
        batch = batch_estimate_fmax(levels).tolist()
        assert batch == [estimate_fmax(level).fmax_mhz for level in levels]


class TestAutoModeSelection:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ExecutorConfig(mode="gpu")

    def test_forced_modes_win(self):
        assert ExecutorConfig(mode="serial").choose_mode(10**6) == "serial"
        assert ExecutorConfig(mode="vectorized").choose_mode(1) == "vectorized"
        assert ExecutorConfig(mode="process").choose_mode(1) == "process"

    def test_auto_picks_vectorized_for_large_grids(self):
        config = ExecutorConfig(mode="auto")
        assert config.choose_mode(config.min_grid_for_vectorized) == "vectorized"
        assert config.choose_mode(10**6) == "vectorized"

    def test_auto_stays_serial_below_thresholds(self):
        config = ExecutorConfig(mode="auto")
        floor = min(config.min_grid_for_vectorized, config.min_grid_for_processes)
        assert config.choose_mode(floor - 1) == "serial"

    def test_auto_prefers_serial_for_explicit_cache(self):
        config = ExecutorConfig(mode="auto")
        assert config.choose_mode(10**6, explicit_cache=True) == "serial"
        # ...and the cache really does serve the evaluation.
        cache = EvaluationCache()
        spec = SweepSpec(
            m_values=(2, 3, 4),
            multiplier_budgets=(256, 512, 1024, 2048),
            frequencies_mhz=(150.0, 200.0, 250.0),
        )
        assert spec.size >= config.min_grid_for_vectorized
        points = list(iter_explore("alexnet", spec, cache=cache, executor=config))
        assert points
        assert cache.stats["points"].misses == spec.size

    def test_auto_routes_through_batch_engine(self, monkeypatch):
        import repro.dse.vectorized as vectorized_mod

        calls = []
        original = vectorized_mod.evaluate_cell_batch

        def spy(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        monkeypatch.setattr(vectorized_mod, "evaluate_cell_batch", spy)
        spec = SweepSpec(
            m_values=(2, 3, 4),
            multiplier_budgets=(256, 512, 1024, 2048),
            frequencies_mhz=(150.0, 200.0, 250.0),
        )
        assert spec.size >= ExecutorConfig().min_grid_for_vectorized
        vectorized = list(
            iter_explore("alexnet", spec, cache=False, executor=ExecutorConfig(mode="auto"))
        )
        assert len(calls) == 1  # one (network, device) cell
        serial = list(iter_explore("alexnet", spec, cache=False, executor=SERIAL))
        assert [pickle.dumps(p) for p in vectorized] == [pickle.dumps(p) for p in serial]

    def test_forced_vectorized_without_numpy_degrades_to_serial(self, monkeypatch):
        import repro.dse.vectorized as vectorized_mod

        monkeypatch.setattr(vectorized_mod, "numpy_available", lambda: False)
        config = ExecutorConfig(mode="vectorized")
        with pytest.warns(RuntimeWarning, match="requires numpy"):
            assert config.choose_mode(100) == "serial"
        # auto quietly avoids the batch engine too.
        assert ExecutorConfig(mode="auto").choose_mode(10**6, explicit_cache=True) == "serial"

    def test_executor_round_trips_through_spec_serialization(self):
        from repro.experiments.spec import executor_from_dict, executor_to_dict

        config = ExecutorConfig(mode="vectorized", min_grid_for_vectorized=7)
        assert executor_from_dict(executor_to_dict(config)) == config
        # Older spec files without the new field still load.
        legacy = {
            "mode": "serial",
            "max_workers": None,
            "chunk_size": None,
            "min_grid_for_processes": 64,
        }
        assert executor_from_dict(legacy) == ExecutorConfig(
            mode="serial", min_grid_for_processes=64
        )

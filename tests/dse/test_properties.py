"""Property-based invariants for Pareto analysis, best-by and the DSE engine.

Uses seeded ``random.Random`` generators (no extra dependencies) to sample
synthetic design-point populations — including deliberate metric ties — and
checks the structural properties the campaign engine's aggregation relies
on:

* ``pareto_front`` returns a subset of its input containing only mutually
  non-dominated points, every excluded point is dominated by a front member,
  and the front is invariant under input permutation;
* ``best_by`` agrees with the single-objective Pareto front;
* cached vs uncached and parallel vs serial ``explore`` return identical
  (byte-identical) design points.
"""

import pickle
import random

import pytest

from repro.core.design_point import DesignPoint
from repro.core.design_space import SweepSpec, best_by, explore
from repro.core.pareto import dominates, pareto_front
from repro.core.throughput import LatencyReport
from repro.dse import EvaluationCache, ExecutorConfig
from repro.hw.resources import ResourceEstimate


def make_point(
    name: str,
    throughput_gops: float = 100.0,
    power_efficiency: float = 10.0,
    total_latency_ms: float = 10.0,
    multiplier_efficiency: float = 1.0,
) -> DesignPoint:
    """A synthetic design point with directly controlled metrics."""
    latency = LatencyReport(
        m=2,
        r=3,
        parallel_pes=4,
        frequency_mhz=200.0,
        pipeline_depth=0,
        group_latency_ms={"Conv1": total_latency_ms},
        total_latency_ms=total_latency_ms,
        spatial_ops=10**9,
    )
    return DesignPoint(
        name=name,
        m=2,
        r=3,
        parallel_pes=4,
        multipliers=64,
        frequency_mhz=200.0,
        shared_data_transform=True,
        device_name="synthetic",
        precision="float32",
        latency=latency,
        throughput_gops=throughput_gops,
        multiplier_efficiency=multiplier_efficiency,
        resources=ResourceEstimate(),
        power_watts=throughput_gops / power_efficiency,
        power_efficiency=power_efficiency,
        spatial_multiplications=1.0,
        winograd_multiplications=1.0,
        implementation_transform_ops=1.0,
    )


def random_population(rng: random.Random, size: int):
    """Random points whose metrics are drawn from small value sets, so ties
    and duplicated metric pairs occur with high probability."""
    throughputs = [rng.choice((50.0, 100.0, 200.0, 400.0)) for _ in range(size)]
    efficiencies = [rng.choice((5.0, 10.0, 20.0, 40.0)) for _ in range(size)]
    return [
        make_point(
            f"p{index}",
            throughput_gops=throughputs[index],
            power_efficiency=efficiencies[index],
            total_latency_ms=rng.choice((5.0, 10.0, 20.0)),
        )
        for index in range(size)
    ]


OBJECTIVES = (("throughput_gops", True), ("power_efficiency", True))


class TestParetoFrontProperties:
    @pytest.mark.parametrize("seed", range(12))
    def test_front_is_subset_only_nondominated_and_order_invariant(self, seed):
        rng = random.Random(seed)
        points = random_population(rng, rng.randint(1, 24))
        front = pareto_front(points, OBJECTIVES)

        assert front, "a finite non-empty population always has a Pareto front"

        # Subset of the input, in input order.
        input_ids = [id(point) for point in points]
        front_ids = [id(point) for point in front]
        assert set(front_ids) <= set(input_ids)
        assert front_ids == sorted(front_ids, key=input_ids.index)

        # Mutually non-dominated.
        for a in front:
            for b in front:
                if a is not b:
                    assert not dominates(a, b, OBJECTIVES)

        # Every excluded point is dominated by some front member.
        excluded = [point for point in points if id(point) not in set(front_ids)]
        for point in excluded:
            assert any(dominates(winner, point, OBJECTIVES) for winner in front)

        # Order invariance: shuffling the input does not change the front.
        shuffled = points[:]
        rng.shuffle(shuffled)
        assert {point.name for point in pareto_front(shuffled, OBJECTIVES)} == {
            point.name for point in front
        }

    @pytest.mark.parametrize("seed", range(6))
    def test_single_objective_front_is_the_max_set(self, seed):
        rng = random.Random(1000 + seed)
        points = random_population(rng, rng.randint(1, 20))
        front = pareto_front(points, [("throughput_gops", True)])
        maximum = max(point.throughput_gops for point in points)
        assert {point.name for point in front} == {
            point.name for point in points if point.throughput_gops == maximum
        }


class TestBestByAgreesWithPareto:
    @pytest.mark.parametrize("seed", range(8))
    def test_maximization(self, seed):
        rng = random.Random(2000 + seed)
        points = random_population(rng, rng.randint(1, 20))
        best = best_by(points, "throughput_gops")
        front = pareto_front(points, [("throughput_gops", True)])
        assert any(best is member for member in front)
        assert best.throughput_gops == max(point.throughput_gops for point in points)
        # Deterministic tie-break: the first point attaining the maximum.
        first = next(
            point for point in points if point.throughput_gops == best.throughput_gops
        )
        assert best is first

    @pytest.mark.parametrize("seed", range(8))
    def test_minimization(self, seed):
        rng = random.Random(3000 + seed)
        points = random_population(rng, rng.randint(1, 20))
        best = best_by(points, "total_latency_ms", maximize=False)
        front = pareto_front(points, [("total_latency_ms", False)])
        assert any(best is member for member in front)
        assert best.total_latency_ms == min(point.total_latency_ms for point in points)


class TestExploreEquivalence:
    SPEC = SweepSpec(
        m_values=(2, 3, 4),
        multiplier_budgets=(64, 128, 256),
        frequencies_mhz=(150.0, 200.0),
    )

    def test_cached_identical_to_uncached(self, tiny_network):
        cached = explore(tiny_network, self.SPEC, cache=EvaluationCache())
        uncached = explore(tiny_network, self.SPEC, cache=False)
        assert cached == uncached
        assert [pickle.dumps(point) for point in cached] == [
            pickle.dumps(point) for point in uncached
        ]

    def test_cache_reuse_identical_across_runs(self, tiny_network):
        cache = EvaluationCache()
        first = explore(tiny_network, self.SPEC, cache=cache)
        second = explore(tiny_network, self.SPEC, cache=cache)
        assert first == second
        assert cache.stats["points"].hits >= len(first)

    @pytest.mark.slow
    @pytest.mark.campaign
    def test_parallel_streaming_supports_early_abandon(self, tiny_network):
        from repro.dse import iter_explore

        stream = iter_explore(
            tiny_network, self.SPEC, cache=EvaluationCache(),
            executor=ExecutorConfig(mode="process", max_workers=2, chunk_size=2),
        )
        first = next(stream)
        stream.close()  # cancels the un-started tail; must not raise or hang
        assert first.m == 2

    @pytest.mark.slow
    @pytest.mark.campaign
    def test_parallel_identical_to_serial(self, tiny_network):
        serial = explore(
            tiny_network, self.SPEC, cache=EvaluationCache(),
            executor=ExecutorConfig(mode="serial"),
        )
        # Forcing the pool with an explicit cache warns that the cache
        # cannot serve the workers — but results stay correct.
        with pytest.warns(RuntimeWarning, match="cannot serve"):
            parallel = explore(
                tiny_network, self.SPEC, cache=EvaluationCache(),
                executor=ExecutorConfig(mode="process", max_workers=2, chunk_size=5),
            )
        assert serial == parallel
        assert [pickle.dumps(point) for point in serial] == [
            pickle.dumps(point) for point in parallel
        ]

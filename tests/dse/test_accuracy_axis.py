"""Accuracy as a DSE objective: scalar/vectorized identity and budgets.

The ``bit_widths`` sweep axis and the ``error_budget`` constraint ride the
same bit-identity contract as every other grid dimension: the vectorized
engine must produce byte-for-byte the scalar path's points, skip the same
entries, and report the same error strings.  The calibration table behind
``max_rel_error`` is a process-wide memo, so these tests also pin its
first-writer-wins thread behaviour.
"""

import pickle
import threading

import pytest

from repro.core.design_point import evaluate_design
from repro.core.design_space import GridEntry, SweepSpec
from repro.dse import (
    EXCEEDS_ERROR_BUDGET,
    EvalRequest,
    EvaluationCache,
    ExecutorConfig,
    evaluate_requests,
    iter_explore,
)
from repro.winograd.quantized import calibrated_error, clear_calibration
from repro.nn import get_network

SERIAL = ExecutorConfig(mode="serial")
VECTORIZED = ExecutorConfig(mode="vectorized")


def run_mode(executor, spec, skip_infeasible=True):
    """(pickled points, error repr) of one single-cell iter_explore run."""
    blobs = []
    try:
        for point in iter_explore(
            "vgg16-d",
            spec,
            devices="xc7vx485t",
            skip_infeasible=skip_infeasible,
            cache=False,
            executor=executor,
        ):
            blobs.append(pickle.dumps(point))
    except ValueError as error:
        return blobs, (type(error).__name__, str(error))
    return blobs, None


def assert_modes_identical(spec, skip_infeasible=True):
    serial = run_mode(SERIAL, spec, skip_infeasible)
    vectorized = run_mode(VECTORIZED, spec, skip_infeasible)
    assert serial[1] == vectorized[1], "paths must fail identically"
    assert serial[0] == vectorized[0], "points must be bit-identical and same-order"
    return len(serial[0])


class TestBitWidthAxisIdentity:
    def test_mixed_backends_bit_identical(self):
        spec = SweepSpec(
            m_values=(2, 3, 4, 6),
            multiplier_budgets=(None, 1024),
            bit_widths=(None, 8, 12, 16),
        )
        assert assert_modes_identical(spec) > 0

    def test_point_names_carry_backend_suffix(self):
        points = list(
            iter_explore(
                "vgg16-d",
                SweepSpec(m_values=(4,), bit_widths=(None, 8)),
                devices="xc7vx485t",
                cache=False,
                executor=SERIAL,
            )
        )
        names = [point.name for point in points]
        assert names == ["F(4x4,3x3)-P19", "F(4x4,3x3)-P19-Q8"]
        assert points[0].bit_width is None
        assert points[1].bit_width == 8
        assert points[1].max_rel_error > points[0].max_rel_error

    def test_headroom_infeasible_entries_skipped_identically(self):
        # F(7x7, 3x3) at 16 bits exhausts the int64 accumulator headroom:
        # both paths must drop exactly that entry.
        spec = SweepSpec(m_values=(2, 7), bit_widths=(16,))
        assert assert_modes_identical(spec) == 1  # only F(2x2) survives at Q16

    def test_headroom_failure_raises_identically_when_not_skipping(self):
        spec = SweepSpec(m_values=(7,), bit_widths=(16,))
        serial = run_mode(SERIAL, spec, skip_infeasible=False)
        vectorized = run_mode(VECTORIZED, spec, skip_infeasible=False)
        assert serial == vectorized
        assert serial[1] is not None
        assert "headroom exhausted" in serial[1][1]


class TestErrorBudget:
    def test_budget_filters_identically(self):
        spec = SweepSpec(m_values=(2, 4, 6), bit_widths=(8, 16), error_budget=1e-3)
        count = assert_modes_identical(spec)
        survivors = list(
            iter_explore("vgg16-d", spec, devices="xc7vx485t", cache=False, executor=SERIAL)
        )
        assert count == len(survivors)
        assert all(point.max_rel_error <= 1e-3 for point in survivors)

    def test_request_outcomes_carry_exact_scalar_message(self):
        requests = [
            EvalRequest("vgg16-d", "xc7vx485t", GridEntry(4, 3, None, 200.0, True, 8, 1e-9)),
            EvalRequest("vgg16-d", "xc7vx485t", GridEntry(4, 3, None, 200.0, True, 8, None)),
        ]
        vectorized = evaluate_requests(requests, vectorized=True)
        serial = evaluate_requests(requests, vectorized=False)
        assert [outcome.error for outcome in vectorized] == [
            outcome.error for outcome in serial
        ]
        assert not vectorized[0].feasible
        stats = calibrated_error(4, 3, 8)
        assert vectorized[0].error == EXCEEDS_ERROR_BUDGET.format(
            error=stats.max_rel, budget=1e-9
        )
        assert vectorized[1].feasible

    def test_invalid_budget_rejected_by_spec(self):
        with pytest.raises(ValueError, match="error_budget must be None or a positive"):
            SweepSpec(error_budget=-1.0)

    def test_invalid_bit_width_rejected_by_spec(self):
        with pytest.raises(ValueError, match="bit_width must be None or an integer"):
            SweepSpec(bit_widths=(64,))


class TestSpecSerialization:
    def test_round_trip_preserves_accuracy_axis(self):
        spec = SweepSpec(m_values=(2, 4), bit_widths=(8, 16), error_budget=0.05)
        restored = SweepSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert tuple(restored.bit_widths) == (8, 16)
        assert restored.error_budget == 0.05

    def test_default_axis_keeps_legacy_fingerprint(self):
        # Specs that never touch the accuracy axis must serialize exactly
        # as before the axis existed, so stored fingerprints stay stable.
        data = SweepSpec(m_values=(2, 4)).to_dict()
        assert "bit_widths" not in data
        assert "error_budget" not in data


class TestCacheAccuracyLayer:
    def test_cache_key_distinguishes_bit_widths(self):
        cache = EvaluationCache()
        network = get_network("vgg16-d")
        from repro.dse import evaluate_design_cached

        float_point = evaluate_design_cached(network, 4, cache=cache)
        quant_point = evaluate_design_cached(network, 4, cache=cache, bit_width=8)
        assert float_point.bit_width is None
        assert quant_point.bit_width == 8
        assert float_point.max_rel_error != quant_point.max_rel_error

    def test_accuracy_layer_counts_hits(self):
        cache = EvaluationCache()
        network = get_network("vgg16-d")
        from repro.dse import evaluate_design_cached

        evaluate_design_cached(network, 4, cache=cache, bit_width=8)
        before = cache.stats["accuracy"].hits
        evaluate_design_cached(network, 4, cache=cache, bit_width=8, frequency_mhz=150.0)
        assert cache.stats["accuracy"].hits == before + 1

    def test_threaded_calibration_is_bit_identical(self):
        clear_calibration()
        results = [None] * 8
        barrier = threading.Barrier(len(results))

        def worker(index):
            barrier.wait()
            results[index] = calibrated_error(4, 3, 8)

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(len(results))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # setdefault publishes exactly one ErrorStats per key: every
        # thread must observe the same object, hence the same floats.
        assert all(stats is results[0] for stats in results)
        assert pickle.dumps(results[0]) == pickle.dumps(calibrated_error(4, 3, 8))


class TestScalarEvaluateDesign:
    def test_rejects_invalid_bit_width_before_budget_errors(self):
        network = get_network("vgg16-d")
        # Both arguments are invalid; the bit_width domain check must win,
        # because the vectorized path replicates that exact order.
        with pytest.raises(ValueError, match="bit_width must be None or an integer"):
            evaluate_design(network, 2, multiplier_budget=1, bit_width=99)

    def test_float_point_still_measures_float32_error(self):
        network = get_network("vgg16-d")
        point = evaluate_design(network, 4)
        assert point.bit_width is None
        assert 0.0 < point.max_rel_error < 1e-6

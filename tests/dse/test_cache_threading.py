"""EvaluationCache under concurrent readers/writers from threads.

The ``repro.service`` HTTP server shares one cache across request
threads, so the cache must tolerate concurrent probes without corrupting
memoised values and keep its hit/miss accounting exact: for every layer,
``lookups == hits + misses`` must equal the number of probes issued, no
matter how the threads interleave.
"""

from __future__ import annotations

import pickle
import random
import threading

from repro.core.design_point import evaluate_design
from repro.dse import EvaluationCache, evaluate_design_cached
from repro.hw.device import resolve_device
from repro.nn import vgg16_d

THREADS = 8
OPS_PER_THREAD = 400


def run_threads(worker) -> None:
    """Start THREADS copies of ``worker(thread_index)`` on a shared barrier."""
    barrier = threading.Barrier(THREADS)
    errors = []

    def wrapped(index: int) -> None:
        try:
            barrier.wait()
            worker(index)
        except BaseException as error:  # noqa: BLE001 — surfaced below
            errors.append(error)

    threads = [
        threading.Thread(target=wrapped, args=(index,)) for index in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, f"worker thread raised: {errors[0]!r}"


class TestOpCountLayerStress:
    def test_seeded_stress_keeps_accounting_exact(self):
        cache = EvaluationCache()
        keys = [(m, 3) for m in (2, 3, 4, 5, 6, 7)]
        reference = {key: cache.op_counts(*key) for key in keys}
        cache.clear()

        def worker(index: int) -> None:
            rng = random.Random(1000 + index)
            for _ in range(OPS_PER_THREAD):
                m, r = rng.choice(keys)
                counts = cache.op_counts(m, r)
                # No corruption: every probe sees the canonical value.
                assert counts == reference[(m, r)]

        run_threads(worker)

        stats = cache.stats["op_counts"]
        assert stats.lookups == THREADS * OPS_PER_THREAD
        assert stats.hits + stats.misses == stats.lookups
        # Racing threads may each miss the same cold key, but never more
        # than once per thread; after warm-up everything hits.
        assert len(keys) <= stats.misses <= len(keys) * THREADS
        assert stats.hits == stats.lookups - stats.misses
        assert 0.0 <= stats.hit_rate <= 1.0


class TestPointLayerStress:
    def test_concurrent_cached_evaluations_bit_identical(self):
        network = vgg16_d()
        device = resolve_device("xc7vx485t")
        cache = EvaluationCache()
        configs = [
            (m, budget, frequency)
            for m in (2, 3, 4)
            for budget in (256, 512)
            for frequency in (150.0, 200.0)
        ]
        expected = {
            config: pickle.dumps(
                evaluate_design(
                    network,
                    m=config[0],
                    multiplier_budget=config[1],
                    frequency_mhz=config[2],
                    device=device,
                )
            )
            for config in configs
        }

        def worker(index: int) -> None:
            rng = random.Random(7 + index)
            ordering = configs * 4
            rng.shuffle(ordering)
            for m, budget, frequency in ordering:
                point = evaluate_design_cached(
                    network,
                    m=m,
                    multiplier_budget=budget,
                    frequency_mhz=frequency,
                    device=device,
                    cache=cache,
                )
                assert pickle.dumps(point) == expected[(m, budget, frequency)]

        run_threads(worker)

        stats = cache.stats["points"]
        assert stats.lookups == THREADS * len(configs) * 4
        assert stats.hits + stats.misses == stats.lookups
        assert len(configs) <= stats.misses <= len(configs) * THREADS
        # The detached-copy contract: callers mutating their result must
        # never corrupt later cache hits.
        probe = evaluate_design_cached(
            network, m=2, multiplier_budget=256, frequency_mhz=150.0,
            device=device, cache=cache,
        )
        probe.latency.group_latency_ms.clear()
        again = evaluate_design_cached(
            network, m=2, multiplier_budget=256, frequency_mhz=150.0,
            device=device, cache=cache,
        )
        assert pickle.dumps(again) == expected[(2, 256, 150.0)]

    def test_memoised_errors_replay_consistently_across_threads(self):
        network = vgg16_d()
        device = resolve_device("xc7vx485t")
        cache = EvaluationCache()
        failures = []

        def worker(index: int) -> None:
            for _ in range(50):
                try:
                    evaluate_design_cached(
                        network, m=4, multiplier_budget=16, device=device, cache=cache
                    )
                except ValueError as error:
                    failures.append(str(error))
                else:  # pragma: no cover - would be a real bug
                    raise AssertionError("infeasible design evaluated")

        run_threads(worker)
        assert len(failures) == THREADS * 50
        assert len(set(failures)) == 1
        stats = cache.stats["points"]
        assert stats.lookups == THREADS * 50
        assert stats.hits + stats.misses == stats.lookups

"""ExperimentSpec / StrategySpec: validation, normalization, JSON round-trip."""

import json
import pickle

import pytest

from repro.core.design_space import SweepSpec, frequency_range
from repro.dse import Campaign, ExecutorConfig
from repro.experiments import EXPERIMENT_SCHEMA, ExperimentSpec, StrategySpec
from repro.hw.calibration import Calibration, PowerCalibration, ResourceCalibration
from repro.hw.device import get_device
from repro.nn import get_network


FULL_SPEC = ExperimentSpec(
    name="full",
    networks=("vgg16-d", "alexnet"),
    devices=("xc7vx485t", "xc7vx690t"),
    sweeps=(
        SweepSpec(m_values=(2, 3, 4), multiplier_budgets=(256, 512, None)),
        SweepSpec(m_values=(4,), frequencies_mhz=frequency_range(150, 250, 50)),
    ),
    strategy=StrategySpec("random", {"samples": 16, "seed": 7}),
    objectives=(("throughput_gops", True), ("total_latency_ms", False)),
    metrics=("throughput_gops", "power_watts"),
    skip_infeasible=True,
    calibration=Calibration(
        resources=ResourceCalibration(luts_per_transform_add=31.5),
        power=PowerCalibration(static_watts=1.25),
    ),
    executor=ExecutorConfig(mode="serial", max_workers=2),
    cache=False,
)


class TestStrategySpec:
    def test_defaults_and_param_freezing(self):
        spec = StrategySpec("grid")
        assert spec.params == {}
        spec = StrategySpec("random", {"samples": 8, "values": [1, 2, [3, 4]]})
        assert spec.params["values"] == (1, 2, (3, 4))

    def test_round_trip(self):
        spec = StrategySpec("random", {"samples": 8, "seed": 3, "values": [1, 2]})
        assert StrategySpec.from_dict(spec.to_dict()) == spec
        assert StrategySpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_bare_name(self):
        assert StrategySpec.from_dict("grid") == StrategySpec("grid")

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            StrategySpec("")
        with pytest.raises(ValueError):
            StrategySpec("grid", {"fn": print})  # non-JSON parameter value
        with pytest.raises(ValueError):
            StrategySpec("grid", {3: "x"})
        with pytest.raises(ValueError):
            StrategySpec.from_dict({"name": "grid", "bogus": 1})
        with pytest.raises(ValueError):
            StrategySpec.from_dict({"params": {}})


class TestValidation:
    def test_scalars_wrap_and_names_resolve_from_objects(self):
        spec = ExperimentSpec(
            networks=get_network("alexnet"), devices=get_device("xc7vx690t")
        )
        assert spec.networks == ("alexnet",)
        assert spec.devices == ("xc7vx690t",)

    def test_strategy_name_shorthand(self):
        spec = ExperimentSpec(networks="alexnet", strategy="pareto-refine")
        assert spec.strategy == StrategySpec("pareto-refine")

    def test_objective_normalization(self):
        spec = ExperimentSpec(
            networks="alexnet", objectives=("throughput_gops", ("power_watts", False))
        )
        assert spec.objectives == (("throughput_gops", True), ("power_watts", False))
        single = ExperimentSpec(networks="alexnet", objectives=("total_latency_ms", False))
        assert single.objectives == (("total_latency_ms", False),)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"networks": ()},
            {"networks": ("alexnet",), "devices": ()},
            {"networks": ("alexnet",), "sweeps": ()},
            {"networks": ("alexnet",), "sweeps": (42,)},
            {"networks": ("alexnet",), "strategy": 42},
            {"networks": ("alexnet",), "objectives": ()},
            {"networks": ("alexnet",), "metrics": ()},
            {"networks": ("alexnet",), "calibration": "default"},
            {"networks": ("alexnet",), "executor": "auto"},
            {"networks": ("alexnet",), "name": ""},
            {"networks": (42,)},
        ],
    )
    def test_invalid_specs_raise(self, kwargs):
        with pytest.raises(ValueError):
            ExperimentSpec(**kwargs)

    def test_grid_size(self):
        assert FULL_SPEC.grid_size == 2 * 2 * (9 + 3)

    def test_with_strategy(self):
        spec = ExperimentSpec(networks="alexnet")
        refined = spec.with_strategy("pareto-refine", coarse=3)
        assert refined.strategy == StrategySpec("pareto-refine", {"coarse": 3})
        assert refined.networks == spec.networks
        with pytest.raises(ValueError):
            spec.with_strategy(StrategySpec("grid"), coarse=3)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "spec",
        [
            ExperimentSpec(networks=("vgg16-d",)),
            ExperimentSpec(networks=("alexnet",), strategy="pareto-refine"),
            FULL_SPEC,
        ],
        ids=["default", "strategy-name", "fully-populated"],
    )
    def test_dict_and_json_round_trip_equality(self, spec):
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        # Through an actual JSON encode/decode (tuples become lists).
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_schema_tag_embedded(self):
        assert FULL_SPEC.to_dict()["schema"] == EXPERIMENT_SCHEMA

    def test_file_round_trip(self, tmp_path):
        path = FULL_SPEC.save(tmp_path / "spec.json")
        assert ExperimentSpec.load(path) == FULL_SPEC

    def test_pickle_round_trip(self):
        assert pickle.loads(pickle.dumps(FULL_SPEC)) == FULL_SPEC

    def test_from_dict_accepts_every_constructor_objective_form(self):
        # Hand-written spec files may use bare metric names or the
        # single-pair shorthand; from_dict must accept what the
        # constructor accepts.
        bare = ExperimentSpec.from_dict(
            {"networks": ["alexnet"], "objectives": ["throughput_gops"]}
        )
        assert bare.objectives == (("throughput_gops", True),)
        single_pair = ExperimentSpec.from_dict(
            {"networks": ["alexnet"], "objectives": ["total_latency_ms", False]}
        )
        assert single_pair.objectives == (("total_latency_ms", False),)
        mixed = ExperimentSpec.from_dict(
            {"networks": ["alexnet"], "objectives": ["throughput_gops", ["power_watts", False]]}
        )
        assert mixed.objectives == (("throughput_gops", True), ("power_watts", False))
        with pytest.raises(ValueError, match="objectives"):
            ExperimentSpec.from_dict({"networks": ["alexnet"], "objectives": "throughput_gops"})

    def test_unknown_fields_raise(self):
        data = FULL_SPEC.to_dict()
        data["grid"] = True
        with pytest.raises(ValueError, match="unknown experiment fields"):
            ExperimentSpec.from_dict(data)

    def test_unknown_sweep_fields_raise(self):
        with pytest.raises(ValueError, match="unknown SweepSpec fields"):
            SweepSpec.from_dict({"m_values": [2], "tile": 4})

    def test_wrong_schema_raises(self):
        data = FULL_SPEC.to_dict()
        data["schema"] = "repro.experiment/999"
        with pytest.raises(ValueError, match="unsupported experiment schema"):
            ExperimentSpec.from_dict(data)


class TestCampaignInterop:
    def test_to_campaign_matches_fields(self):
        campaign = FULL_SPEC.to_campaign()
        assert isinstance(campaign, Campaign)
        assert campaign.networks == FULL_SPEC.networks
        assert campaign.devices == FULL_SPEC.devices
        assert campaign.sweeps == FULL_SPEC.sweeps
        assert campaign.objectives == FULL_SPEC.objectives
        assert campaign.name == FULL_SPEC.name
        assert campaign.calibration == FULL_SPEC.calibration

    def test_from_campaign_records_names(self):
        campaign = Campaign(
            networks=(get_network("alexnet"), "vgg16-d"),
            devices=(get_device("xc7vx485t"),),
            name="legacy",
        )
        spec = ExperimentSpec.from_campaign(campaign)
        assert spec.networks == ("alexnet", "vgg16-d")
        assert spec.devices == ("xc7vx485t",)
        assert spec.strategy == StrategySpec("grid")
        assert spec.name == "legacy"
        # And the derived spec is itself round-trippable.
        assert ExperimentSpec.from_json(spec.to_json()) == spec

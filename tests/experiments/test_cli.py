"""The ``python -m repro`` command line: run, report, list, error paths."""

import json

import pytest

from repro.core.design_space import SweepSpec
from repro.dse import CampaignResult, EvaluationCache
from repro.experiments import ExperimentSpec, run_experiment
from repro.experiments.cli import main

SPEC = ExperimentSpec(
    name="cli-unit",
    networks=("alexnet",),
    devices=("xc7vx485t",),
    sweeps=(SweepSpec(m_values=(2, 3), multiplier_budgets=(256,)),),
)


@pytest.fixture()
def spec_path(tmp_path):
    return SPEC.save(tmp_path / "spec.json")


class TestRun:
    def test_run_prints_report_and_saves(self, spec_path, tmp_path, capsys):
        out_path = tmp_path / "result.json"
        csv_path = tmp_path / "points.csv"
        code = main(["run", str(spec_path), "-o", str(out_path), "--csv", str(csv_path)])
        captured = capsys.readouterr()
        assert code == 0
        assert "cli-unit" in captured.out
        assert "Best by metric" in captured.out
        loaded = CampaignResult.load(out_path)
        in_process = run_experiment(SPEC, cache=EvaluationCache())
        assert loaded.points == in_process.points
        assert loaded.pareto_fronts() == in_process.pareto_fronts()
        header = csv_path.read_text().splitlines()[0]
        assert "throughput_gops" in header

    def test_run_quiet_only_reports_artifacts(self, spec_path, tmp_path, capsys):
        out_path = tmp_path / "result.json"
        assert main(["run", str(spec_path), "-q", "-o", str(out_path)]) == 0
        captured = capsys.readouterr()
        assert "Best by metric" not in captured.out
        assert out_path.exists()

    def test_run_no_cache_and_executor_override(self, spec_path, capsys):
        assert main(["run", str(spec_path), "--no-cache", "--executor", "serial"]) == 0
        assert "feasible=2" in capsys.readouterr().out

    def test_missing_spec_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "nope.json")]) == 2
        assert "error" in capsys.readouterr().err

    def test_invalid_spec_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"networks": ["alexnet"], "bogus": 1}))
        assert main(["run", str(path)]) == 2
        assert "unknown experiment fields" in capsys.readouterr().err

    def test_unknown_network_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "unknown.json"
        path.write_text(json.dumps({"networks": ["lenet-1998"]}))
        assert main(["run", str(path)]) == 2
        assert "unknown network" in capsys.readouterr().err


class TestReport:
    def test_report_reprints_saved_result(self, spec_path, tmp_path, capsys):
        out_path = tmp_path / "result.json"
        main(["run", str(spec_path), "-q", "-o", str(out_path)])
        capsys.readouterr()
        assert main(["report", str(out_path), "--metric", "power_efficiency"]) == 0
        captured = capsys.readouterr()
        assert "power_efficiency" in captured.out
        assert "alexnet" in captured.out

    def test_report_csv_export(self, spec_path, tmp_path, capsys):
        out_path = tmp_path / "result.json"
        main(["run", str(spec_path), "-q", "-o", str(out_path)])
        csv_path = tmp_path / "points.csv"
        assert main(["report", str(out_path), "--csv", str(csv_path)]) == 0
        assert csv_path.read_text().count("\n") >= 2


class TestList:
    @pytest.mark.parametrize(
        "what,expected",
        [
            ("networks", "vgg16-d"),
            ("devices", "xc7vx485t"),
            ("strategies", "pareto-refine"),
        ],
    )
    def test_list_subcommands(self, what, expected, capsys):
        assert main(["list", what]) == 0
        assert expected in capsys.readouterr().out.splitlines()


class TestExampleSpec:
    def test_shipped_example_spec_loads_and_is_round_trippable(self):
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] / "examples" / "experiment_spec.json"
        spec = ExperimentSpec.load(path)
        assert spec.networks
        assert ExperimentSpec.from_json(spec.to_json()) == spec

"""Result persistence: save/load round-trips, schema versioning, legacy interop."""

import json

import pytest

from repro.core.design_space import SweepSpec
from repro.dse import Campaign, CampaignResult, EvaluationCache
from repro.experiments import (
    ExperimentSpec,
    point_from_dict,
    point_to_dict,
    result_from_dict,
    run_experiment,
)
from repro.experiments.persistence import RESULT_SCHEMA

SPEC = ExperimentSpec(
    name="persist-unit",
    networks=("vgg16-d", "alexnet"),
    devices=("xc7vx485t",),
    sweeps=(SweepSpec(m_values=(2, 3, 4), multiplier_budgets=(256, 512)),),
)


@pytest.fixture(scope="module")
def result() -> CampaignResult:
    return run_experiment(SPEC, cache=EvaluationCache())


class TestPointRoundTrip:
    def test_point_round_trip_equality(self, result):
        for point in result.points:
            data = json.loads(json.dumps(point_to_dict(point)))
            restored = point_from_dict(data)
            assert restored == point  # engine is provenance-only, excluded from eq
            assert restored.engine is None
            assert restored.summary_row() == point.summary_row()

    def test_missing_field_raises(self, result):
        data = point_to_dict(result.points[0])
        del data["throughput_gops"]
        with pytest.raises(ValueError, match="missing field"):
            point_from_dict(data)


class TestResultRoundTrip:
    def test_save_load_round_trip(self, result, tmp_path):
        path = result.save(tmp_path / "result.json")
        loaded = CampaignResult.load(path)
        assert loaded.points == result.points
        assert loaded.spec == SPEC
        assert loaded.evaluations == result.evaluations
        assert loaded.elapsed_seconds == result.elapsed_seconds
        assert loaded.cache_stats == result.cache_stats

    def test_loaded_analysis_matches_in_process(self, result, tmp_path):
        loaded = CampaignResult.load(result.save(tmp_path / "result.json"))
        original_fronts = result.pareto_fronts()
        loaded_fronts = loaded.pareto_fronts()
        assert set(original_fronts) == set(loaded_fronts)
        for network in original_fronts:
            assert loaded_fronts[network] == original_fronts[network]
        assert loaded.best("throughput_gops") == result.best("throughput_gops")
        assert loaded.summary_rows() == result.summary_rows()
        assert loaded.comparison_rows() == result.comparison_rows()

    def test_schema_tag_and_version_guard(self, result, tmp_path):
        path = result.save(tmp_path / "result.json")
        data = json.loads(path.read_text())
        assert data["schema"] == RESULT_SCHEMA
        data["schema"] = "repro.campaign-result/999"
        with pytest.raises(ValueError, match="unsupported campaign-result schema"):
            result_from_dict(data)
        with pytest.raises(ValueError, match="unknown campaign-result fields"):
            result_from_dict({**json.loads(path.read_text()), "bogus": 1})

    def test_legacy_campaign_result_saves_via_derived_spec(self, tmp_path):
        legacy = Campaign(
            networks=("alexnet",),
            sweeps=(SweepSpec(m_values=(2, 3)),),
            name="legacy-run",
        ).run(cache=EvaluationCache())
        assert legacy.spec is None
        loaded = CampaignResult.load(legacy.save(tmp_path / "legacy.json"))
        assert loaded.points == legacy.points
        assert loaded.spec is not None
        assert loaded.spec.networks == ("alexnet",)
        assert loaded.spec.name == "legacy-run"
        # The embedded spec is re-runnable and reproduces the same points.
        rerun = run_experiment(loaded.spec, cache=EvaluationCache())
        assert rerun.points == legacy.points

    def test_saved_file_reruns_bit_identically(self, result, tmp_path):
        loaded = CampaignResult.load(result.save(tmp_path / "result.json"))
        rerun = run_experiment(loaded.spec, cache=EvaluationCache())
        assert rerun.points == loaded.points

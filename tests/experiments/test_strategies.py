"""Search strategies: registry, grid equivalence, seeded-bound properties."""

import pickle
import random

import pytest

from repro.core.design_space import SweepSpec
from repro.dse import Campaign, EvaluationCache
from repro.experiments import (
    ExperimentSpec,
    GridStrategy,
    ParetoRefineStrategy,
    RandomStrategy,
    SearchStrategy,
    StrategySpec,
    get_strategy,
    known_strategies,
    register_strategy,
    resolve_strategy,
    run_experiment,
)
from repro.experiments.strategies import STRATEGIES

SWEEP = SweepSpec(
    m_values=(2, 3, 4, 5),
    multiplier_budgets=(256, 512),
    frequencies_mhz=(150.0, 200.0, 250.0),
)

SPEC = ExperimentSpec(
    name="strategies-unit",
    networks=("vgg16-d", "alexnet"),
    devices=("xc7vx485t",),
    sweeps=(SWEEP,),
)


def _entry_key(point):
    return (point.m, point.r, point.frequency_mhz, point.shared_data_transform)


class TestRegistry:
    def test_builtins_known(self):
        assert {"grid", "random", "pareto-refine"} <= set(known_strategies())

    def test_get_strategy_with_params(self):
        strategy = get_strategy("random", samples=5, seed=1)
        assert strategy == RandomStrategy(samples=5, seed=1)
        with pytest.raises(KeyError, match="unknown strategy"):
            get_strategy("simulated-annealing")
        with pytest.raises(ValueError, match="invalid parameters"):
            get_strategy("random", temperature=3.5)

    def test_resolve_strategy_forms(self):
        assert resolve_strategy("grid") == GridStrategy()
        assert resolve_strategy(StrategySpec("random", {"samples": 3})) == RandomStrategy(samples=3)
        concrete = ParetoRefineStrategy(coarse=3)
        assert resolve_strategy(concrete) is concrete
        with pytest.raises(TypeError):
            resolve_strategy(42)

    def test_register_guard_and_custom_strategy(self):
        class FirstTwoStrategy:
            def search(self, spec, evaluate):
                for entry in evaluate.grid_entries()[:2]:
                    point = evaluate(evaluate.networks[0], evaluate.devices[0], entry)
                    if point is not None:
                        yield point

        register_strategy("first-two-test", FirstTwoStrategy)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_strategy("first-two-test", FirstTwoStrategy)
            register_strategy("first-two-test", FirstTwoStrategy, overwrite=True)
            assert isinstance(FirstTwoStrategy(), SearchStrategy)
            result = run_experiment(
                SPEC.with_strategy("first-two-test"), cache=EvaluationCache()
            )
            assert result.evaluations == 2
        finally:
            STRATEGIES.pop("first-two-test")
        with pytest.raises(TypeError):
            register_strategy("bad", 42)

    def test_invalid_strategy_params_raise(self):
        with pytest.raises(ValueError):
            RandomStrategy(samples=0)
        with pytest.raises(ValueError):
            ParetoRefineStrategy(coarse=0)
        with pytest.raises(ValueError):
            ParetoRefineStrategy(neighborhood=-1)


class TestGridEquivalence:
    def test_grid_strategy_is_byte_identical_to_legacy_campaign(self):
        campaign = Campaign(
            networks=SPEC.networks,
            devices=SPEC.devices,
            sweeps=SPEC.sweeps,
            name=SPEC.name,
        )
        legacy = campaign.run(cache=EvaluationCache())
        modern = run_experiment(SPEC, cache=EvaluationCache())
        assert modern.points == legacy.points
        assert [pickle.dumps(a) for a in modern.points] == [
            pickle.dumps(b) for b in legacy.points
        ]
        assert modern.evaluations == legacy.evaluations == SPEC.grid_size

    def test_grid_strategy_counts_cache_stats(self):
        cache = EvaluationCache()
        first = run_experiment(SPEC, cache=cache)
        second = run_experiment(SPEC, cache=cache)
        assert first.cache_stats.misses > 0
        assert second.cache_stats.misses == 0
        assert second.cache_stats.hits == second.evaluations


class TestSeededStrategies:
    @pytest.mark.parametrize("seed", [0, 7, 2019])
    def test_random_points_are_grid_entries_within_bounds(self, seed):
        result = run_experiment(
            SPEC.with_strategy("random", samples=6, seed=seed), cache=EvaluationCache()
        )
        assert result.evaluations == 6 * len(SPEC.networks) * len(SPEC.devices)
        entries = {
            (entry.m, entry.r, entry.frequency_mhz, entry.shared_data_transform)
            for entry in SWEEP.configurations()
        }
        for point in result.points:
            assert _entry_key(point) in entries
            assert point.m in SWEEP.m_values
            assert point.frequency_mhz in SWEEP.frequencies_mhz

    def test_random_is_deterministic_per_seed(self):
        spec = SPEC.with_strategy("random", samples=6, seed=11)
        first = run_experiment(spec, cache=EvaluationCache())
        second = run_experiment(spec, cache=EvaluationCache())
        assert first.points == second.points
        other = run_experiment(
            SPEC.with_strategy("random", samples=6, seed=12), cache=EvaluationCache()
        )
        assert [_entry_key(p) for p in other.points] != [
            _entry_key(p) for p in first.points
        ]

    def test_random_larger_than_grid_degenerates_to_grid(self):
        sampled = run_experiment(
            SPEC.with_strategy("random", samples=10_000), cache=EvaluationCache()
        )
        grid = run_experiment(SPEC, cache=EvaluationCache())
        assert sampled.points == grid.points

    @pytest.mark.parametrize("seed", [3, 41])
    def test_pareto_refine_points_are_grid_entries(self, seed):
        rng = random.Random(seed)
        sweep = SweepSpec(
            m_values=tuple(sorted(rng.sample(range(2, 8), 3))),
            multiplier_budgets=tuple(sorted(rng.sample((128, 256, 384, 512, 1024), 2))),
            frequencies_mhz=tuple(float(f) for f in sorted(rng.sample(range(100, 350, 25), 3))),
        )
        spec = ExperimentSpec(
            networks=("alexnet",),
            sweeps=(sweep,),
            strategy=StrategySpec("pareto-refine", {"coarse": 2, "neighborhood": 1}),
        )
        result = run_experiment(spec, cache=EvaluationCache())
        assert 0 < result.evaluations <= spec.grid_size
        entries = {
            (entry.m, entry.r, entry.frequency_mhz, entry.shared_data_transform)
            for entry in sweep.configurations()
        }
        for point in result.points:
            assert _entry_key(point) in entries

    def test_pareto_refine_front_matches_grid_front(self):
        grid = run_experiment(SPEC, cache=EvaluationCache())
        refined = run_experiment(
            SPEC.with_strategy("pareto-refine", coarse=2, neighborhood=1),
            cache=EvaluationCache(),
        )
        assert refined.evaluations <= grid.evaluations
        grid_fronts = grid.pareto_fronts()
        refined_fronts = refined.pareto_fronts()
        for network, front in grid_fronts.items():
            assert {_entry_key(p) for p in front} == {
                _entry_key(p) for p in refined_fronts[network]
            }

    def test_pareto_refine_with_coarse_one_covers_the_grid(self):
        refined = run_experiment(
            SPEC.with_strategy("pareto-refine", coarse=1), cache=EvaluationCache()
        )
        grid = run_experiment(SPEC, cache=EvaluationCache())
        assert refined.evaluations == grid.evaluations
        assert sorted(p.name for p in refined.points) == sorted(p.name for p in grid.points)

"""Result-schema error reporting + spec fingerprinting.

Before the :mod:`repro.service` store ingests third-party result files,
``CampaignResult.load`` must fail descriptively — naming the found vs.
supported schema version — on both unknown and missing ``schema`` fields.
Spec fingerprints are the store's primary key, so their stability and
sensitivity are locked here too.
"""

from __future__ import annotations

import json

import pytest

from repro.core.design_space import SweepSpec
from repro.dse import Campaign, CampaignResult
from repro.experiments import ExperimentSpec
from repro.experiments.persistence import RESULT_SCHEMA, result_to_dict


@pytest.fixture(scope="module")
def saved(tmp_path_factory):
    result = Campaign(
        networks=("alexnet",),
        sweeps=(
            SweepSpec(
                m_values=(2, 3), multiplier_budgets=(256,), frequencies_mhz=(200.0,)
            ),
        ),
    ).run()
    path = tmp_path_factory.mktemp("results") / "result.json"
    result.save(path)
    return path


class TestLoadSchemaErrors:
    def test_unknown_schema_names_found_and_supported(self, saved, tmp_path):
        data = json.loads(saved.read_text())
        data["schema"] = "repro.campaign-result/999"
        path = tmp_path / "future.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError) as excinfo:
            CampaignResult.load(path)
        message = str(excinfo.value)
        assert "repro.campaign-result/999" in message  # what was found
        assert RESULT_SCHEMA in message  # what is supported

    def test_missing_schema_names_supported(self, saved, tmp_path):
        data = json.loads(saved.read_text())
        del data["schema"]
        path = tmp_path / "unversioned.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError) as excinfo:
            CampaignResult.load(path)
        message = str(excinfo.value)
        assert "no 'schema' field" in message
        assert RESULT_SCHEMA in message

    def test_valid_schema_still_loads(self, saved):
        result = CampaignResult.load(saved)
        assert result.points
        assert result_to_dict(result)["schema"] == RESULT_SCHEMA


class TestSpecFingerprint:
    SPEC = ExperimentSpec(networks=("vgg16-d",), name="fp")

    def test_stable_across_round_trip(self):
        clone = ExperimentSpec.from_dict(self.SPEC.to_dict())
        assert clone.fingerprint() == self.SPEC.fingerprint()

    def test_stable_across_equivalent_construction(self):
        # Concrete objects and registry names fingerprint identically.
        from repro.nn import vgg16_d

        by_object = ExperimentSpec(networks=(vgg16_d(),), name="fp")
        assert by_object.fingerprint() == self.SPEC.fingerprint()

    def test_sensitive_to_semantic_changes(self):
        fingerprints = {
            self.SPEC.fingerprint(),
            ExperimentSpec(networks=("alexnet",), name="fp").fingerprint(),
            ExperimentSpec(networks=("vgg16-d",), name="other").fingerprint(),
            ExperimentSpec(
                networks=("vgg16-d",),
                name="fp",
                sweeps=(SweepSpec(m_values=(2,)),),
            ).fingerprint(),
        }
        assert len(fingerprints) == 4

    def test_insensitive_to_execution_tuning(self):
        # Every executor mode returns bit-identical points and the cache
        # only memoises, so specs differing solely in how evaluation
        # executes describe the same search — one fingerprint.
        from repro.dse import ExecutorConfig

        vectorized = ExperimentSpec(
            networks=("vgg16-d",),
            name="fp",
            executor=ExecutorConfig(mode="vectorized"),
            cache=False,
        )
        assert vectorized.fingerprint() == self.SPEC.fingerprint()

    def test_shape(self):
        fingerprint = self.SPEC.fingerprint()
        assert isinstance(fingerprint, str)
        assert len(fingerprint) == 64
        assert set(fingerprint) <= set("0123456789abcdef")

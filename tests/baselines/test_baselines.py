"""Tests for the baseline accelerator models and published reference data."""


import pytest

from repro.baselines import (
    FIG2_PUBLISHED_MFLOPS,
    FIG3_PUBLISHED,
    FIG6_PUBLISHED_GOPS,
    TABLE1_PUBLISHED,
    TABLE2_PUBLISHED,
    VIRTEX7_AVAILABLE,
    podili_design,
    podili_normalized_design,
    qiu_parametric_design,
    qiu_published_design,
    reference_style_design,
    spatial_engine_design,
)


class TestPodili:
    def test_original_matches_table2(self, vgg16):
        point = podili_design(vgg16)
        assert point.m == 2
        assert point.parallel_pes == 16
        assert point.multipliers == 256
        assert point.total_latency_ms == pytest.approx(133.22, abs=0.2)
        assert point.throughput_gops == pytest.approx(230.4, rel=0.005)
        assert point.multiplier_efficiency == pytest.approx(0.90, abs=0.01)

    def test_normalized_matches_table2(self, vgg16):
        point = podili_normalized_design(vgg16)
        assert point.parallel_pes == 43
        assert point.multipliers == 688
        assert point.total_latency_ms == pytest.approx(49.57, abs=0.1)
        assert point.throughput_gops == pytest.approx(619.2, rel=0.005)

    def test_normalized_custom_budget(self, vgg16):
        point = podili_normalized_design(vgg16, multipliers=512)
        assert point.parallel_pes == 32

    def test_reference_style_uses_per_pe_transform(self, vgg16):
        reference = reference_style_design(vgg16, m=4, parallel_pes=19)
        assert not reference.shared_data_transform
        assert reference.multipliers == 684

    def test_per_group_latencies(self, vgg16):
        point = podili_design(vgg16)
        published = TABLE2_PUBLISHED["podili_asap17"]
        for index in range(1, 6):
            assert point.group_latency_ms[f"Conv{index}"] == pytest.approx(
                published[f"conv{index}_ms"], abs=0.05
            )


class TestQiu:
    def test_published_design_carries_paper_numbers(self, vgg16):
        point = qiu_published_design(vgg16)
        published = TABLE2_PUBLISHED["qiu_fpga16"]
        assert point.throughput_gops == published["throughput_gops"]
        assert point.power_watts == published["power_w"]
        assert point.total_latency_ms == published["overall_latency_ms"]
        assert point.precision == "fixed16"
        assert point.multipliers == 780

    def test_parametric_design_runs_analytical_model(self, vgg16):
        point = qiu_parametric_design(vgg16)
        assert point.m == 1
        assert point.frequency_mhz == 150
        assert point.throughput_gops > 0
        # A spatial machine with 780 multipliers at 150 MHz peaks at
        # 2 * floor(780/9) * 9 * 0.15 = 232.2 GOPS; the published 187.8 GOPS of
        # [12] sits below that roof, as expected for a real memory-bound design.
        assert point.throughput_gops == pytest.approx(2 * 86 * 9 * 0.15, rel=0.01)
        assert point.throughput_gops > TABLE2_PUBLISHED["qiu_fpga16"]["throughput_gops"]


class TestSpatialEngine:
    def test_matches_fig6_spatial_series(self, vgg16):
        point = spatial_engine_design(vgg16, multipliers=256)
        assert point.throughput_gops == pytest.approx(100.8, rel=0.005)
        point = spatial_engine_design(vgg16, multipliers=512)
        assert point.throughput_gops == pytest.approx(201.6, rel=0.005)

    def test_m_is_one(self, vgg16):
        assert spatial_engine_design(vgg16, multipliers=256).m == 1


class TestPublishedData:
    def test_table1_internal_consistency(self):
        for design in TABLE1_PUBLISHED.values():
            assert design["dsp_slices"] == 4 * design["multipliers"]
        assert TABLE1_PUBLISHED["proposed_design"]["luts"] < TABLE1_PUBLISHED["reference_design"]["luts"]
        assert VIRTEX7_AVAILABLE["luts"] == 303600

    def test_table1_lut_savings_claim(self):
        reference = TABLE1_PUBLISHED["reference_design"]["luts"]
        proposed = TABLE1_PUBLISHED["proposed_design"]["luts"]
        assert 100 * (1 - proposed / reference) == pytest.approx(53.6, abs=0.3)

    def test_table2_throughput_latency_consistency(self, vgg16):
        """Published throughput equals OS / published latency for every design."""
        os_gops = vgg16.total_conv_flops / 1e9
        for name, row in TABLE2_PUBLISHED.items():
            implied = os_gops / (row["overall_latency_ms"] * 1e-3)
            assert implied == pytest.approx(row["throughput_gops"], rel=0.01), name

    def test_table2_power_efficiency_consistency(self):
        # The published Table II is internally consistent (throughput / power ==
        # power efficiency) for every row except "proposed m=2", where the paper
        # reports 41.34 GOPS/W but 619.2 GOPS / 13.03 W = 47.5 GOPS/W.  That
        # inconsistency is in the source data, so it is excluded here and noted
        # in EXPERIMENTS.md.
        for name, row in TABLE2_PUBLISHED.items():
            if name == "proposed_m2":
                continue
            assert row["throughput_gops"] / row["power_w"] == pytest.approx(
                row["power_efficiency"], rel=0.02
            ), name

    def test_fig3_and_fig2_keys(self):
        assert set(FIG2_PUBLISHED_MFLOPS) == set(range(2, 8))
        assert set(FIG3_PUBLISHED) == set(range(2, 8))

    def test_fig6_contains_all_series(self):
        methods = {key[0] for key in FIG6_PUBLISHED_GOPS}
        assert methods == {"spatial", 2, 3, 4, 5, 6, 7}
        budgets = {key[1] for key in FIG6_PUBLISHED_GOPS}
        assert budgets == {256, 512, 1024}

    def test_fig6_linear_in_multipliers(self):
        for method in (2, 3, 4, 5, 6, 7):
            small = FIG6_PUBLISHED_GOPS[(method, 256)]
            large = FIG6_PUBLISHED_GOPS[(method, 1024)]
            assert large == pytest.approx(4 * small, rel=0.01)

    def test_headline_ratios_from_published_data(self):
        table = TABLE2_PUBLISHED
        assert table["proposed_m4"]["throughput_gops"] / table["podili_asap17"][
            "throughput_gops"
        ] == pytest.approx(4.75, abs=0.01)
        assert table["proposed_m2"]["power_efficiency"] / table["podili_asap17"][
            "power_efficiency"
        ] == pytest.approx(1.44, abs=0.01)

"""End-to-end integration tests across substrates.

These exercise chains of subsystems together: functional Winograd inference on
a real (down-scaled) network feeding the same shapes the DSE reasons about,
the cycle simulator agreeing with the analytical engine model it was derived
from, and the public package namespace staying importable and coherent.
"""

import numpy as np
import pytest

import repro
from repro import EngineConfig, EngineSimConfig, WinogradEngineSim, build_engine, evaluate_design
from repro.core.throughput import layer_cycles
from repro.nn import ConvLayer, InputSpec, Network, generate_weights, run_forward
from repro.sim.validation import validate_layer


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.2.0"

    def test_docstring_example(self):
        designs = repro.proposed_designs(repro.vgg16_d())
        assert round(designs[-1].throughput_gops, 1) == pytest.approx(1094.4, abs=0.2)


class TestFunctionalPipeline:
    def test_winograd_inference_matches_direct_on_small_vgg_block(self, rng):
        """A VGG-like block runs identically through all three backends."""
        network = Network("vgg-block", InputSpec(1, 8, 24, 24))
        network.add(ConvLayer("b_conv1", 8, 16, 24, 24, group="B"))
        network.add(ConvLayer("b_conv2", 16, 16, 24, 24, group="B"))
        x = rng.standard_normal(network.input_spec.shape)
        weights = generate_weights(network, seed=9)
        outputs = {
            backend: run_forward(network, x, weights, backend=backend, m=4).output
            for backend in ("direct", "im2col", "winograd")
        }
        np.testing.assert_allclose(outputs["direct"], outputs["im2col"], atol=1e-9)
        np.testing.assert_allclose(outputs["direct"], outputs["winograd"], atol=1e-8)


class TestSimulatorVsAnalyticalModel:
    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_cycle_counts_track_eq9(self, m):
        """Simulated cycles equal Eq. (9) applied to the actual tile grid.

        For layer shapes that tile exactly (H and W multiples of m), the
        simulator's count also equals the idealised NHWCK/(m^2 P) expression
        used by the DSE, up to the pipeline-fill constant.
        """
        height = width = 4 * m  # tiles exactly for every m in 2..4
        layer = ConvLayer("exact", in_channels=4, out_channels=6, height=height, width=width, padding=1)
        config = EngineSimConfig(m=m, parallel_pes=3)
        validation = validate_layer(layer, config, functional=False)
        assert validation.simulated_cycles == validation.analytical_cycles

        kernel_passes = -(-layer.out_channels // config.parallel_pes)
        effective_pes = layer.out_channels / kernel_passes
        ideal = layer_cycles(layer, m, effective_pes)
        fill = config.pipeline_depth - 1
        # The idealised expression ignores padding-induced partial tiles; with
        # exact tiling the two agree exactly.
        assert validation.simulated_cycles == pytest.approx(ideal + fill, rel=1e-9)

    def test_sim_latency_consistent_with_design_point(self):
        """Scaling the simulator's measured latency by the workload ratio lands
        on the analytical design-point latency for the same configuration."""
        layer = ConvLayer("block", in_channels=8, out_channels=8, height=16, width=16, padding=1)
        network = Network("one-layer", InputSpec(1, 8, 16, 16), [layer])
        point = evaluate_design(network, m=2, parallel_pes=4, include_pipeline_depth=False)
        config = EngineSimConfig(m=2, parallel_pes=4, frequency_mhz=200.0)
        sim = WinogradEngineSim(config)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((1, 8, 16, 16))
        w = rng.standard_normal((8, 8, 3, 3))
        result = sim.run_layer(layer, x, w, functional=False)
        sim_ms = result.latency_ms()
        # The analytical point ignores the pipeline-fill cycles; subtract them.
        fill_ms = (config.pipeline_depth - 1) / (200e6) * 1e3
        assert sim_ms - fill_ms == pytest.approx(point.total_latency_ms, rel=1e-6)


class TestEngineAndDesignPointConsistency:
    def test_design_point_reuses_engine_model(self, vgg16):
        point = evaluate_design(vgg16, m=3, parallel_pes=28)
        engine = build_engine(EngineConfig(m=3, parallel_pes=28))
        assert point.resources.luts == pytest.approx(engine.resources.luts)
        assert point.multipliers == engine.total_multipliers

    def test_throughput_equals_outputs_per_cycle_times_ops(self, vgg16):
        """Eq. (10) restated: throughput = 2 r^2 * (P m^2) * f for VGG16-D."""
        point = evaluate_design(vgg16, m=4, parallel_pes=19, include_pipeline_depth=False)
        engine = build_engine(EngineConfig(m=4, parallel_pes=19))
        expected = 2 * 9 * engine.outputs_per_cycle * 200e6 / 1e9
        assert point.throughput_gops == pytest.approx(expected, rel=1e-6)

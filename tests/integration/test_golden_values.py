"""Golden regression tests: lock the headline outputs against fixed values.

Two layers of locking, both against ``repro.baselines.published``-era truth:

* **paper agreement** — the quantities the reproduction claims to match
  (Table II latency/throughput/efficiency, the abstract's 4.75x / 2.67x
  factors) are asserted against the published numbers with the documented
  tolerances;
* **model snapshot** — every metric of ``headline_claims()``,
  ``performance_table()`` and ``resource_table()`` is locked to the exact
  value the models produce today (tolerance 1e-9 relative).  These snapshots
  are intentionally brittle: any refactor that drifts a modelled number —
  even one still "within paper tolerance" — must show up in review as an
  explicit golden-value update, not slip through silently.
"""

import pytest

from repro import headline_claims, performance_table, resource_table, vgg16_d
from repro.baselines import TABLE2_PUBLISHED

EXACT = 1e-9

#: Snapshot of ``headline_claims(vgg16_d()).as_dict()``.
GOLDEN_HEADLINE = {
    "throughput_improvement": 4.75,
    "power_efficiency_improvement_m2": 1.587901391444568,
    "multiplier_ratio": 2.671875,
    "lut_savings_pct": 51.61568820917613,
    "multiplier_efficiency_best": 1.5999999999999999,
}

#: Snapshot of ``performance_table(vgg16_d())`` — one row per design.
GOLDEN_PERFORMANCE = {
    "qiu-fpga16": {
        "total_latency_ms": 163.4,
        "throughput_gops": 187.8,
        "multiplier_efficiency": 0.24,
        "power_watts": 9.63,
        "power_efficiency": 19.5,
        "multipliers": 780,
        "parallel_pes": 0,
    },
    "podili-asap17": {
        "total_latency_ms": 133.21728000000002,
        "throughput_gops": 230.39999999999998,
        "multiplier_efficiency": 0.8999999999999999,
        "power_watts": 12.047559999999999,
        "power_efficiency": 19.124204403215256,
        "multipliers": 256,
        "parallel_pes": 16,
    },
    "podili-normalized": {
        "total_latency_ms": 49.56922046511628,
        "throughput_gops": 619.2,
        "multiplier_efficiency": 0.9,
        "power_watts": 29.045679999999997,
        "power_efficiency": 21.318144384982556,
        "multipliers": 688,
        "parallel_pes": 43,
    },
    "proposed-m2": {
        "total_latency_ms": 49.56922046511628,
        "throughput_gops": 619.2,
        "multiplier_efficiency": 0.9,
        "power_watts": 20.39032,
        "power_efficiency": 30.36735078213584,
        "multipliers": 688,
        "parallel_pes": 43,
    },
    "proposed-m3": {
        "total_latency_ms": 33.83296000000001,
        "throughput_gops": 907.1999999999997,
        "multiplier_efficiency": 1.2959999999999996,
        "power_watts": 26.58744,
        "power_efficiency": 34.12137460394832,
        "multipliers": 700,
        "parallel_pes": 28,
    },
    "proposed-m4": {
        "total_latency_ms": 28.04574315789474,
        "throughput_gops": 1094.3999999999999,
        "multiplier_efficiency": 1.5999999999999999,
        "power_watts": 32.60912,
        "power_efficiency": 33.56116325739548,
        "multipliers": 684,
        "parallel_pes": 19,
    },
}

#: Snapshot of ``resource_table(vgg16_d(), m=4)``.
GOLDEN_RESOURCES = {
    "reference_design": {
        "luts": 259456.0,
        "registers": 127728.0,
        "dsp_slices": 2736,
        "multipliers": 684,
    },
    "proposed_design": {
        "luts": 125536.0,
        "registers": 73296.0,
        "dsp_slices": 2736,
        "multipliers": 684,
    },
}


@pytest.fixture(scope="module")
def network():
    return vgg16_d()


class TestGoldenHeadlineClaims:
    def test_snapshot(self, network):
        claims = headline_claims(network).as_dict()
        assert set(claims) == set(GOLDEN_HEADLINE)
        for key, expected in GOLDEN_HEADLINE.items():
            assert claims[key] == pytest.approx(expected, rel=EXACT), key

    def test_abstract_factors_against_paper(self, network):
        claims = headline_claims(network)
        # The abstract quotes 4.75x throughput and 2.67x multipliers exactly.
        assert claims.throughput_improvement == pytest.approx(4.75, abs=0.005)
        assert claims.multiplier_ratio == pytest.approx(2.67, abs=0.005)
        # Power efficiency (1.44x) and LUT savings (53.6 %) come from the
        # calibrated analytical power/resource models; the reproduction lands
        # in the same regime and, critically, on the same side of 1x / 50 %.
        assert claims.power_efficiency_improvement_m2 > 1.0
        assert claims.power_efficiency_improvement_m2 == pytest.approx(1.44, rel=0.25)
        assert claims.lut_savings_pct == pytest.approx(53.6, abs=5.0)
        assert claims.multiplier_efficiency_best == pytest.approx(1.60, abs=0.005)


class TestGoldenPerformanceTable:
    def test_lineup(self, network):
        names = [point.name for point in performance_table(network)]
        assert names == list(GOLDEN_PERFORMANCE)

    @pytest.mark.parametrize("design", list(GOLDEN_PERFORMANCE))
    def test_snapshot(self, network, design):
        table = {point.name: point for point in performance_table(network)}
        point = table[design]
        golden = GOLDEN_PERFORMANCE[design]
        for metric, expected in golden.items():
            assert getattr(point, metric) == pytest.approx(expected, rel=EXACT), metric

    @pytest.mark.parametrize("design", list(GOLDEN_PERFORMANCE))
    def test_latency_against_paper(self, network, design):
        published = TABLE2_PUBLISHED[design.replace("-", "_")]
        table = {point.name: point for point in performance_table(network)}
        assert table[design].total_latency_ms == pytest.approx(
            published["overall_latency_ms"], rel=0.005
        )
        assert table[design].throughput_gops == pytest.approx(
            published["throughput_gops"], rel=0.005
        )


class TestGoldenResourceTable:
    def test_snapshot(self, network):
        table = resource_table(network, m=4)
        assert set(table) == set(GOLDEN_RESOURCES)
        for design, golden in GOLDEN_RESOURCES.items():
            point = table[design]
            assert point.resources.luts == pytest.approx(golden["luts"], rel=EXACT)
            assert point.resources.registers == pytest.approx(golden["registers"], rel=EXACT)
            assert point.resources.dsp_slices == golden["dsp_slices"]
            assert point.multipliers == golden["multipliers"]

    def test_orderings_match_paper(self, network):
        table = resource_table(network, m=4)
        # Table I's qualitative content: same DSP/multiplier budget, large
        # LUT and register savings for the proposed design.
        assert (
            table["proposed_design"].resources.luts
            < table["reference_design"].resources.luts * 0.55
        )
        assert (
            table["proposed_design"].resources.registers
            < table["reference_design"].resources.registers
        )

"""Smoke-run every benchmark script in fast mode.

The ``benchmarks/bench_*.py`` files double as the reproduction report, but
their filenames do not match pytest's default collection patterns, so
nothing ran them in tier-1 — an import error or a drifted API could hide
there until someone ran the benchmark harness by hand.  This test executes
each benchmark file in a subprocess with ``--benchmark-disable`` (every
benchmarked function runs exactly once, untimed) and ``REPRO_BENCH_FAST=1``
(scripts with scalable grids shrink them), turning the whole harness into a
CI-friendly smoke target.
"""

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_DIR = REPO_ROOT / "benchmarks"
BENCH_FILES = sorted(BENCH_DIR.glob("bench_*.py"))


def test_benchmark_suite_is_discovered():
    """The repository ships benchmark scripts and this smoke test sees them."""
    assert len(BENCH_FILES) >= 10
    assert any(path.name == "bench_dse_campaign.py" for path in BENCH_FILES)


def _subprocess_env():
    env = dict(os.environ)
    env["REPRO_BENCH_FAST"] = "1"
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    return env


@pytest.mark.slow
@pytest.mark.parametrize("bench_file", BENCH_FILES, ids=lambda path: path.stem)
def test_benchmark_runs_in_fast_mode(bench_file):
    env = _subprocess_env()
    process = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            str(bench_file),
            "-q",
            "--benchmark-disable",
            "-p",
            "no:cacheprovider",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    output = process.stdout + process.stderr
    assert process.returncode == 0, f"{bench_file.name} failed:\n{output}"
    match = re.search(r"(\d+) passed", output)
    assert match and int(match.group(1)) >= 1, (
        f"{bench_file.name} collected no tests:\n{output}"
    )


@pytest.mark.slow
def test_cli_runs_a_spec_end_to_end(tmp_path):
    """``python -m repro run`` on a tiny spec file is part of the smoke target.

    Exercises the whole declarative path in a fresh interpreter: spec file ->
    strategy -> evaluation -> report -> persisted result -> ``report``
    reload, the same flow CI and users drive.
    """
    import json

    spec_path = tmp_path / "tiny_spec.json"
    spec_path.write_text(
        json.dumps(
            {
                "name": "smoke",
                "networks": ["alexnet"],
                "devices": ["xc7vx485t"],
                "sweeps": [{"m_values": [2, 3], "multiplier_budgets": [256]}],
                "strategy": {"name": "grid", "params": {}},
            }
        )
    )
    result_path = tmp_path / "result.json"
    env = _subprocess_env()
    run = subprocess.run(
        [sys.executable, "-m", "repro", "run", str(spec_path), "-o", str(result_path)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert run.returncode == 0, f"CLI run failed:\n{run.stdout}{run.stderr}"
    assert "Best by metric" in run.stdout
    assert result_path.exists()
    report = subprocess.run(
        [sys.executable, "-m", "repro", "report", str(result_path)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert report.returncode == 0, f"CLI report failed:\n{report.stdout}{report.stderr}"
    assert "alexnet" in report.stdout

"""Smoke-run every benchmark script in fast mode.

The ``benchmarks/bench_*.py`` files double as the reproduction report, but
their filenames do not match pytest's default collection patterns, so
nothing ran them in tier-1 — an import error or a drifted API could hide
there until someone ran the benchmark harness by hand.  This test executes
each benchmark file in a subprocess with ``--benchmark-disable`` (every
benchmarked function runs exactly once, untimed) and ``REPRO_BENCH_FAST=1``
(scripts with scalable grids shrink them), turning the whole harness into a
CI-friendly smoke target.
"""

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_DIR = REPO_ROOT / "benchmarks"
BENCH_FILES = sorted(BENCH_DIR.glob("bench_*.py"))


def test_benchmark_suite_is_discovered():
    """The repository ships benchmark scripts and this smoke test sees them."""
    assert len(BENCH_FILES) >= 10
    assert any(path.name == "bench_dse_campaign.py" for path in BENCH_FILES)


@pytest.mark.slow
@pytest.mark.parametrize("bench_file", BENCH_FILES, ids=lambda path: path.stem)
def test_benchmark_runs_in_fast_mode(bench_file):
    env = dict(os.environ)
    env["REPRO_BENCH_FAST"] = "1"
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    process = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            str(bench_file),
            "-q",
            "--benchmark-disable",
            "-p",
            "no:cacheprovider",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    output = process.stdout + process.stderr
    assert process.returncode == 0, f"{bench_file.name} failed:\n{output}"
    match = re.search(r"(\d+) passed", output)
    assert match and int(match.group(1)) >= 1, (
        f"{bench_file.name} collected no tests:\n{output}"
    )

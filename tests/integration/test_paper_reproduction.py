"""Integration tests: the reproduction's end-to-end agreement with the paper.

These tests pin the quantities the repository claims to reproduce — the exact
Table II latency/throughput/efficiency columns, the Fig. 6 throughput sweep,
the Fig. 1/Fig. 3 complexity trends and the abstract's headline factors — so
any regression in the models breaks loudly.
"""

import pytest

from repro import (
    headline_claims,
    ideal_throughput_gops,
    multiplication_complexity,
    performance_table,
    resource_table,
    vgg16_d,
)
from repro.baselines import FIG6_PUBLISHED_GOPS, TABLE1_PUBLISHED, TABLE2_PUBLISHED
from repro.core import complexity_breakdown


@pytest.fixture(scope="module")
def network():
    return vgg16_d()


@pytest.fixture(scope="module")
def table2(network):
    return {point.name: point for point in performance_table(network)}


NAME_MAP = {
    "podili_asap17": "podili-asap17",
    "podili_normalized": "podili-normalized",
    "proposed_m2": "proposed-m2",
    "proposed_m3": "proposed-m3",
    "proposed_m4": "proposed-m4",
}


class TestTable2Reproduction:
    @pytest.mark.parametrize("published_key", sorted(NAME_MAP))
    def test_latency_columns_exact(self, table2, published_key):
        published = TABLE2_PUBLISHED[published_key]
        point = table2[NAME_MAP[published_key]]
        for index in range(1, 6):
            assert point.group_latency_ms[f"Conv{index}"] == pytest.approx(
                published[f"conv{index}_ms"], abs=0.02
            )
        assert point.total_latency_ms == pytest.approx(
            published["overall_latency_ms"], rel=0.005
        )

    @pytest.mark.parametrize("published_key", sorted(NAME_MAP))
    def test_throughput_and_efficiency(self, table2, published_key):
        published = TABLE2_PUBLISHED[published_key]
        point = table2[NAME_MAP[published_key]]
        assert point.throughput_gops == pytest.approx(published["throughput_gops"], rel=0.005)
        assert point.multiplier_efficiency == pytest.approx(
            published["multiplier_efficiency"], abs=0.02
        )
        assert point.multipliers == published["multipliers"]
        assert point.parallel_pes == published["pes"]

    @pytest.mark.parametrize("published_key", sorted(NAME_MAP))
    def test_power_within_model_tolerance(self, table2, published_key):
        """Power comes from a calibrated analytical model, not synthesis: the
        reproduction targets the right regime (within ~2x) rather than the
        exact wattage; the power-efficiency *ordering* against [3] is asserted
        separately in test_headline_claims."""
        published = TABLE2_PUBLISHED[published_key]
        point = table2[NAME_MAP[published_key]]
        assert published["power_w"] / 2 < point.power_watts < published["power_w"] * 2

    def test_qiu_row_uses_published_values(self, table2):
        point = table2["qiu-fpga16"]
        published = TABLE2_PUBLISHED["qiu_fpga16"]
        assert point.throughput_gops == published["throughput_gops"]
        assert point.power_watts == published["power_w"]


class TestTable1Reproduction:
    def test_dsp_and_multiplier_columns_exact(self, network):
        table = resource_table(network, m=4)
        for key in ("reference_design", "proposed_design"):
            assert table[key].resources.dsp_slices == TABLE1_PUBLISHED[key]["dsp_slices"]
            assert table[key].multipliers == TABLE1_PUBLISHED[key]["multipliers"]

    def test_lut_and_register_columns_in_regime(self, network):
        """Modelled LUT/register counts land within 35% of the synthesis numbers
        and preserve the proposed < reference ordering."""
        table = resource_table(network, m=4)
        for key in ("reference_design", "proposed_design"):
            published = TABLE1_PUBLISHED[key]
            assert table[key].resources.luts == pytest.approx(published["luts"], rel=0.35)
            assert table[key].resources.registers == pytest.approx(
                published["registers"], rel=0.6
            )
        assert (
            table["proposed_design"].resources.luts < table["reference_design"].resources.luts
        )

    def test_lut_savings_match_claim(self, network):
        table = resource_table(network, m=4)
        savings = 1 - table["proposed_design"].resources.luts / table[
            "reference_design"
        ].resources.luts
        published_savings = 1 - TABLE1_PUBLISHED["proposed_design"]["luts"] / TABLE1_PUBLISHED[
            "reference_design"
        ]["luts"]
        assert savings == pytest.approx(published_savings, abs=0.1)


class TestFig6Reproduction:
    @pytest.mark.parametrize("method,budget", sorted(FIG6_PUBLISHED_GOPS, key=str))
    def test_throughput_series(self, method, budget):
        published = FIG6_PUBLISHED_GOPS[(method, budget)]
        if method == "spatial":
            # The paper's spatial series scales the 256-multiplier point (28
            # PEs) linearly, while Eq. (8) re-floors each budget; the two can
            # differ by one PE's worth (< 1%) at 1024 multipliers.
            measured = ideal_throughput_gops(1, 3, budget, fractional_pes=False)
            assert measured == pytest.approx(published, rel=0.02)
        else:
            measured = ideal_throughput_gops(method, 3, budget, fractional_pes=True)
            assert measured == pytest.approx(published, rel=0.005)


class TestFig1Fig3Reproduction:
    def test_fig1_total_multiplication_series(self, network):
        """Summed over all groups, Fig. 1's bars per m (in multiplications)."""
        expected_totals = {
            1: 15.346e9,  # 1.936 + 2.775 + 4.624 + 4.624 + 1.387
            2: 6.821e9,   # 0.861 + 1.233 + 2.055 + 2.055 + 0.617
            4: 3.837e9,   # 0.484 + 0.694 + 1.156 + 1.156 + 0.347
            7: 2.819e9,   # 0.356 + 0.510 + 0.849 + 0.849 + 0.255
        }
        for m, expected in expected_totals.items():
            assert multiplication_complexity(network, m) == pytest.approx(expected, rel=0.01)

    def test_fig3_diminishing_returns_and_knee(self, network):
        """Section III-C: multiplication savings shrink with every step of m
        while transform overhead keeps growing, so beyond m=4/5 raising the
        tile size stops paying off."""
        breakdowns = {m: complexity_breakdown(network, m) for m in range(2, 8)}
        mult_decreases = []
        for m in range(3, 8):
            mult_decrease = 1 - (
                breakdowns[m].winograd_multiplications
                / breakdowns[m - 1].winograd_multiplications
            )
            transform_increase = (
                breakdowns[m].transform_ops / breakdowns[m - 1].transform_ops - 1
            )
            mult_decreases.append(mult_decrease)
            # Transform work never shrinks when m grows.
            assert transform_increase > -0.05
            if m >= 5:
                # Past the paper's knee the overhead growth dominates.
                assert transform_increase > mult_decrease
        # Diminishing returns: each step saves less than the previous one.
        assert all(b < a for a, b in zip(mult_decreases, mult_decreases[1:]))


class TestHeadlineClaims:
    def test_all_claims(self, network):
        claims = headline_claims(network)
        assert claims.throughput_improvement == pytest.approx(4.75, abs=0.01)
        assert claims.multiplier_ratio == pytest.approx(2.67, abs=0.01)
        assert claims.multiplier_efficiency_best == pytest.approx(1.60, abs=0.01)
        assert claims.power_efficiency_improvement_m2 > 1.0
        assert claims.lut_savings_pct > 40.0

"""Property-based tests (hypothesis) on the analytical model invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.complexity import (
    implementation_transform_complexity,
    multiplication_complexity,
    spatial_multiplications,
    transform_complexity,
)
from repro.core.throughput import ideal_throughput_gops, layer_cycles, parallel_pes
from repro.hw.engine import EngineConfig, build_engine, max_parallel_pes
from repro.hw.power import PowerModel
from repro.hw.resources import ResourceEstimate
from repro.nn import ConvLayer


layer_strategy = st.builds(
    ConvLayer,
    name=st.just("prop"),
    in_channels=st.integers(min_value=1, max_value=512),
    out_channels=st.integers(min_value=1, max_value=512),
    height=st.integers(min_value=7, max_value=224),
    width=st.integers(min_value=7, max_value=224),
    kernel_size=st.just(3),
    padding=st.just(1),
    batch=st.integers(min_value=1, max_value=4),
)


@settings(max_examples=50, deadline=None)
@given(layer=layer_strategy, m=st.integers(min_value=2, max_value=8))
def test_winograd_always_reduces_multiplications(layer, m):
    """Eq. (4): the element-wise stage always needs fewer multiplications than
    spatial convolution for m >= 2 and r = 3."""
    assert multiplication_complexity(layer, m) < spatial_multiplications(layer)


@settings(max_examples=50, deadline=None)
@given(layer=layer_strategy, m=st.integers(min_value=2, max_value=7))
def test_multiplication_complexity_scales_with_workload(layer, m):
    """Om is exactly proportional to NHWCK."""
    single = multiplication_complexity(layer, m)
    doubled = multiplication_complexity(layer.with_batch(layer.batch * 2), m)
    assert doubled == pytest.approx(2 * single, rel=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    layer=layer_strategy,
    m=st.integers(min_value=2, max_value=6),
    pes_small=st.integers(min_value=1, max_value=8),
    extra=st.integers(min_value=1, max_value=32),
)
def test_more_pes_never_increase_implementation_transform_ops(layer, m, pes_small, extra):
    """Eq. (7): OT is non-increasing in the number of parallel PEs."""
    few = implementation_transform_complexity(layer, m, parallel_pes=pes_small)
    many = implementation_transform_complexity(layer, m, parallel_pes=pes_small + extra)
    assert many <= few


@settings(max_examples=30, deadline=None)
@given(layer=layer_strategy, m=st.integers(min_value=2, max_value=6))
def test_transform_complexity_positive_and_additive(layer, m):
    total = transform_complexity(layer, m)
    without_filter = transform_complexity(layer, m, include_filter=False)
    assert total > 0
    assert total >= without_filter


@settings(max_examples=60, deadline=None)
@given(
    m=st.integers(min_value=1, max_value=8),
    r=st.integers(min_value=2, max_value=5),
    budget=st.integers(min_value=0, max_value=4096),
)
def test_eq8_floor_properties(m, r, budget):
    """Eq. (8): the floored PE count never exceeds the fractional one and uses
    no more multipliers than the budget."""
    floored = parallel_pes(m, r, budget)
    fractional = parallel_pes(m, r, budget, fractional=True)
    assert floored <= fractional
    assert floored * (m + r - 1) ** 2 <= budget
    assert max_parallel_pes(m, r, budget) == int(floored)


@settings(max_examples=40, deadline=None)
@given(
    layer=layer_strategy,
    m=st.integers(min_value=1, max_value=6),
    pes=st.integers(min_value=1, max_value=64),
)
def test_eq9_latency_inverse_in_pes(layer, m, pes):
    """Doubling the PE count halves the tile-issue cycles."""
    single = layer_cycles(layer, m, pes)
    double = layer_cycles(layer, m, 2 * pes)
    assert double == pytest.approx(single / 2, rel=1e-9)


@settings(max_examples=60, deadline=None)
@given(
    m=st.integers(min_value=1, max_value=8),
    budget=st.integers(min_value=16, max_value=4096),
    frequency=st.floats(min_value=50, max_value=500),
)
def test_eq10_ideal_throughput_monotonic_in_m_and_budget(m, budget, frequency):
    """Ideal throughput grows with the output tile size and the budget."""
    base = ideal_throughput_gops(m, 3, budget, frequency)
    assert ideal_throughput_gops(m + 1, 3, budget, frequency) > base
    assert ideal_throughput_gops(m, 3, budget * 2, frequency) == pytest.approx(
        2 * base, rel=1e-9
    )


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(min_value=2, max_value=5),
    pes=st.integers(min_value=1, max_value=30),
)
def test_engine_resources_monotonic_in_pes(m, pes):
    """Adding PEs never reduces any resource class."""
    small = build_engine(EngineConfig(m=m, parallel_pes=pes)).resources
    large = build_engine(EngineConfig(m=m, parallel_pes=pes + 1)).resources
    assert large.luts > small.luts
    assert large.dsp_slices > small.dsp_slices
    assert large.registers > small.registers


@settings(max_examples=50, deadline=None)
@given(
    luts=st.floats(min_value=0, max_value=5e5),
    dsps=st.integers(min_value=0, max_value=3600),
    registers=st.floats(min_value=0, max_value=1e6),
    frequency=st.floats(min_value=50, max_value=400),
)
def test_power_model_monotonic_and_above_static(luts, dsps, registers, frequency):
    model = PowerModel()
    resources = ResourceEstimate(luts=luts, registers=registers, dsp_slices=dsps)
    watts = model.total_watts(resources, frequency)
    assert watts >= model.calibration.static_watts
    bigger = model.total_watts(
        ResourceEstimate(luts=luts + 1000, registers=registers, dsp_slices=dsps), frequency
    )
    assert bigger > watts

"""Unit tests for the benchmark regression gate (benchmarks/check_regression.py).

The satellite-critical behaviour: a benchmark with *no* trend history (a
fresh clone, an expired CI artifact, a not-yet-created trend file) seeds
the baseline — clear message, exit 0 — while a real out-of-bounds metric
still fails.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parents[2] / "benchmarks" / "check_regression.py"

spec = importlib.util.spec_from_file_location("check_regression", SCRIPT)
check_regression = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_regression)


BASELINES = {
    "demo_bench": {"mode": "full", "metrics": {"speedup": {"min": 5.0}}},
}


def trend_file(tmp_path: Path, records) -> Path:
    path = tmp_path / "BENCH_demo.json"
    path.write_text(
        json.dumps({"schema": check_regression.RECORD_SCHEMA, "records": records})
    )
    return path


def baselines_file(tmp_path: Path, baselines=None) -> Path:
    path = tmp_path / "baselines.json"
    path.write_text(json.dumps(baselines or BASELINES))
    return path


def record(speedup: float, mode: str = "full") -> dict:
    return {
        "benchmark": "demo_bench",
        "mode": mode,
        "speedup": speedup,
        "timestamp": "2026-01-01T00:00:00+00:00",
    }


class TestNoHistorySeedsBaseline:
    def test_empty_trend_exits_zero_with_seed_message(self, tmp_path, capsys):
        trend = trend_file(tmp_path, [])
        code = check_regression.main(
            [str(trend), "--baselines", str(baselines_file(tmp_path))]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "no history" in out
        assert "seeding baseline" in out

    def test_missing_trend_file_exits_zero(self, tmp_path, capsys):
        missing = tmp_path / "BENCH_not_yet.json"
        code = check_regression.main(
            [str(missing), "--baselines", str(baselines_file(tmp_path))]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "does not exist yet" in out
        assert "seeding baseline" in out

    def test_wrong_mode_counts_as_no_history(self, tmp_path, capsys):
        trend = trend_file(tmp_path, [record(speedup=100.0, mode="fast")])
        code = check_regression.main(
            [str(trend), "--baselines", str(baselines_file(tmp_path))]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "mode='full'" in out

    def test_check_returns_unseeded_separately(self):
        failures, unseeded = check_regression.check([], BASELINES)
        assert failures == []
        assert len(unseeded) == 1
        assert "seeding baseline" in unseeded[0]


class TestRealRegressionsStillFail:
    def test_below_minimum_fails(self, tmp_path, capsys):
        trend = trend_file(tmp_path, [record(speedup=2.0)])
        code = check_regression.main(
            [str(trend), "--baselines", str(baselines_file(tmp_path))]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "regressed below baseline" in out

    def test_newest_record_wins(self, tmp_path):
        trend = trend_file(tmp_path, [record(speedup=2.0), record(speedup=9.0)])
        code = check_regression.main(
            [str(trend), "--baselines", str(baselines_file(tmp_path))]
        )
        assert code == 0

    def test_non_numeric_metric_fails(self, tmp_path, capsys):
        trend = trend_file(tmp_path, [record(speedup="fast")])
        code = check_regression.main(
            [str(trend), "--baselines", str(baselines_file(tmp_path))]
        )
        assert code == 1
        assert "no numeric" in capsys.readouterr().out

    def test_malformed_trend_file_still_errors(self, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        path.write_text(json.dumps({"schema": "wrong/1", "records": []}))
        with pytest.raises(ValueError, match="unexpected schema"):
            check_regression.load_records([path])

    def test_ok_run_reports_values(self, tmp_path, capsys):
        trend = trend_file(tmp_path, [record(speedup=9.0)])
        code = check_regression.main(
            [str(trend), "--baselines", str(baselines_file(tmp_path))]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "OK" in out
        assert "speedup=9.0" in out


class TestDefaults:
    def test_service_trend_file_in_defaults(self):
        names = {path.name for path in check_regression.DEFAULT_TREND_FILES}
        assert "BENCH_dse.json" in names
        assert "BENCH_service.json" in names

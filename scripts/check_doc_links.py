#!/usr/bin/env python3
"""Check that every relative markdown link in README.md + docs/ resolves.

Stdlib-only so CI can run it before installing anything. External
(``http(s)://``, ``mailto:``) links are skipped — CI must not depend on
third-party uptime — and ``#anchor`` fragments are stripped before the
existence check. Exits 1 listing every broken link.

Usage::

    python scripts/check_doc_links.py [FILE_OR_DIR ...]

Defaults to ``README.md`` and ``docs/`` at the repository root.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links: ``[text](target)`` (images share the syntax).
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def markdown_files(arguments: List[str]) -> List[Path]:
    """The files to scan: explicit arguments, or README.md + docs/*.md."""
    if arguments:
        paths: List[Path] = []
        for argument in arguments:
            path = Path(argument)
            paths.extend(sorted(path.rglob("*.md")) if path.is_dir() else [path])
        return paths
    return [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").rglob("*.md"))]


def broken_links(files: Iterable[Path]) -> List[Tuple[Path, str]]:
    """Every (file, target) pair whose relative target does not exist."""
    missing: List[Tuple[Path, str]] = []
    for path in files:
        if not path.exists():
            missing.append((path, "<file itself missing>"))
            continue
        for target in LINK.findall(path.read_text()):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            resolved = target.split("#", 1)[0]
            if not resolved:  # pure in-page anchor
                continue
            if not (path.parent / resolved).exists():
                missing.append((path, target))
    return missing


def main(argv: List[str]) -> int:
    """Scan, report, and return a process exit code."""
    files = markdown_files(argv)
    missing = broken_links(files)
    for path, target in missing:
        print(f"BROKEN  {path}: {target}")
    if missing:
        return 1
    print(f"ok: {len(files)} markdown files, all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

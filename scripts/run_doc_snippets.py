#!/usr/bin/env python3
"""Execute the runnable snippets in ``docs/http-api.md`` against a server.

Keeps the API documentation honest: CI starts the real server and runs
every fenced ```bash`` block (in document order, each block as one bash
script, so ``VAR=$(...)`` chaining works) and every fenced ```python``
block from the doc, with the documented port rewritten to the live
server's. A snippet that exits non-zero fails the run. Blocks fenced as
```console`` or ```json`` are illustrative and are not executed.

Usage::

    PYTHONPATH=src python scripts/run_doc_snippets.py --port 8356 [--doc docs/http-api.md]

Must run from the repository root (snippets reference
``examples/experiment_spec.json``).
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The port the documentation shows in its examples.
DOCUMENTED = "127.0.0.1:8787"

FENCE = re.compile(r"^```(\w*)\s*$")


def extract_blocks(text: str) -> List[Tuple[str, str]]:
    """Every fenced code block as ``(language, body)``, in order."""
    blocks: List[Tuple[str, str]] = []
    language = None
    body: List[str] = []
    for line in text.splitlines():
        match = FENCE.match(line)
        if match:
            if language is None:
                language = match.group(1) or "text"
                body = []
            else:
                blocks.append((language, "\n".join(body)))
                language = None
        elif language is not None:
            body.append(line)
    return blocks


def run_bash(snippet: str) -> None:
    """Run one bash block; raises on non-zero exit."""
    completed = subprocess.run(
        ["bash", "-euo", "pipefail", "-c", snippet],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    sys.stdout.write(completed.stdout)
    if completed.returncode != 0:
        sys.stderr.write(completed.stderr)
        raise SystemExit(f"snippet failed (exit {completed.returncode}):\n{snippet}")


def run_python(snippet: str) -> None:
    """Run one python block in a subprocess (inherits PYTHONPATH)."""
    completed = subprocess.run(
        [sys.executable, "-c", snippet],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    sys.stdout.write(completed.stdout)
    if completed.returncode != 0:
        sys.stderr.write(completed.stderr)
        raise SystemExit(f"python snippet failed (exit {completed.returncode}):\n{snippet}")


def main() -> int:
    """Extract, rewrite and execute the doc's runnable snippets."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--port", type=int, required=True, help="live server port")
    parser.add_argument(
        "--doc", default="docs/http-api.md", help="markdown file to execute"
    )
    args = parser.parse_args()

    text = (REPO_ROOT / args.doc).read_text()
    live = f"127.0.0.1:{args.port}"
    ran = 0
    for language, body in extract_blocks(text):
        body = body.replace(DOCUMENTED, live).replace("port=8787", f"port={args.port}")
        if language == "bash":
            run_bash(body)
            ran += 1
        elif language == "python":
            run_python(body)
            ran += 1
    if ran == 0:
        raise SystemExit(f"no runnable snippets found in {args.doc}")
    print(f"ok: {ran} snippets from {args.doc} ran clean against :{args.port}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

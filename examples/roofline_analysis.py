#!/usr/bin/env python3
"""Roofline analysis of the proposed designs (extension experiment E8).

The paper assumes the memory system can always keep the engine's double
buffers full.  This example quantifies that assumption: for each proposed
design it computes the compute roof, the operational intensity of every
VGG16-D layer and the attainable throughput at the Virtex-7's DRAM bandwidth,
reporting which layers (if any) become bandwidth bound.

Run with:  python examples/roofline_analysis.py
"""

from repro import roofline_report, vgg16_d
from repro.core.proposed import PROPOSED_CONFIGS
from repro.hw import virtex7_485t
from repro.reporting import format_table


def main() -> None:
    network = vgg16_d()
    device = virtex7_485t()
    for m, config in sorted(PROPOSED_CONFIGS.items()):
        report = roofline_report(
            network, m=m, parallel_pes=config["parallel_pes"], device=device
        )
        rows = [
            {
                "layer": layer.layer_name,
                "ops_per_byte": layer.operational_intensity,
                "compute_roof_GOPS": layer.compute_roof_gops,
                "bandwidth_roof_GOPS": layer.bandwidth_roof_gops,
                "attainable_GOPS": layer.attainable_gops,
                "bound": "compute" if layer.compute_bound else "bandwidth",
            }
            for layer in report.layers
        ]
        title = (
            f"Roofline, proposed m={m} (P={config['parallel_pes']}, peak "
            f"{report.peak_gops:.0f} GOPS, DRAM {report.bandwidth_gbps} GB/s)"
        )
        print(format_table(rows, title=title))
        status = "compute bound" if report.all_compute_bound else (
            "bandwidth bound on: " + ", ".join(report.bandwidth_bound_layers)
        )
        print(f"  -> double-buffering assumption: {status}\n")


if __name__ == "__main__":
    main()

"""Declarative experiments: spec files, pluggable strategies, persistence.

Builds the same experiment three ways — exhaustive grid, seeded random
subsample, Pareto-front refinement — from one declarative
:class:`~repro.experiments.ExperimentSpec`, compares evaluation costs and
fronts, then round-trips the spec and the evaluated result through JSON
files (the same artifacts ``python -m repro run`` consumes and produces).

Run from the repository root:

    PYTHONPATH=src python examples/declarative_experiment.py
"""

import tempfile
from pathlib import Path

from repro import CampaignResult, ExperimentSpec, SweepSpec, frequency_range, run_experiment
from repro.reporting import campaign_summary_table

spec = ExperimentSpec(
    name="declarative-demo",
    networks=("vgg16-d", "alexnet"),
    devices=("xc7vx485t",),
    sweeps=(
        SweepSpec(
            m_values=(2, 3, 4, 5, 6),
            multiplier_budgets=(256, 512, 1024),
            frequencies_mhz=frequency_range(150, 250, 50),
        ),
    ),
    strategy="grid",
)

# The spec is data: save it, diff it, hand it to `python -m repro run`.
workdir = Path(tempfile.mkdtemp(prefix="repro-demo-"))
spec_path = spec.save(workdir / "experiment.json")
assert ExperimentSpec.load(spec_path) == spec
print(f"spec saved to {spec_path} ({spec.grid_size} grid configurations)\n")

# Swap the solver without touching the rest of the description.
solvers = {
    "grid": spec,
    "random": spec.with_strategy("random", samples=20, seed=2019),
    "pareto-refine": spec.with_strategy("pareto-refine", coarse=2, neighborhood=1),
}
for strategy, variant in solvers.items():
    result = run_experiment(variant)
    front_sizes = {name: len(front) for name, front in result.pareto_fronts().items()}
    print(
        f"{strategy:>14}: {result.evaluations:3d}/{spec.grid_size} evaluations, "
        f"{result.feasible:3d} feasible, Pareto front sizes {front_sizes}"
    )

# Persist the exhaustive run and reload it for analysis — no re-evaluation.
result = run_experiment(spec)
result_path = result.save(workdir / "result.json")
reloaded = CampaignResult.load(result_path)
assert reloaded.points == result.points
print(f"\nresult saved to {result_path} and reloaded losslessly\n")
print(campaign_summary_table(reloaded))

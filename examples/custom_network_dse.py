#!/usr/bin/env python3
"""Design-space exploration for networks beyond VGG16-D.

The paper motivates fast algorithms with modern small-kernel CNNs in general;
this example shows how to run the same exploration on ResNet-18, AlexNet and a
user-defined network, how to identify which layers are Winograd-eligible, how
to pick the best engine configuration per workload with the optimizer — and
how registering the custom network makes it addressable by name from a
declarative :class:`~repro.experiments.ExperimentSpec` (and hence from
``python -m repro run`` spec files).

Run with:  python examples/custom_network_dse.py
"""

from repro import (
    ExperimentSpec,
    Network,
    alexnet,
    optimize,
    register_network,
    resnet18,
    run_experiment,
)
from repro.nn import ConvLayer, InputSpec, winograd_eligible_layers
from repro.reporting import campaign_summary_table, format_table


def tiny_detector() -> Network:
    """A small custom detection backbone (all 3x3, shrinking resolution)."""
    network = Network("tiny-detector", InputSpec(batch=1, channels=3, height=128, width=128))
    channels = [3, 32, 64, 128, 128, 256]
    size = 128
    for index in range(1, len(channels)):
        network.add(
            ConvLayer(
                name=f"conv{index}",
                in_channels=channels[index - 1],
                out_channels=channels[index],
                height=size,
                width=size,
                kernel_size=3,
                padding=1,
                group=f"Stage{index}",
            )
        )
        if index % 2 == 0:
            size //= 2
    return network


def explore_network(network: Network) -> dict:
    """Optimise the tile size for a workload and summarise the result."""
    eligible = winograd_eligible_layers(network)
    coverage = sum(layer.flops for layer in eligible) / max(1, network.total_conv_flops)
    result = optimize(network, metric="throughput_gops", m_values=(2, 3, 4, 5, 6))
    best = result.best
    return {
        "network": network.name,
        "conv_GFLOPs": network.total_conv_flops / 1e9,
        "winograd_coverage_%": 100.0 * coverage,
        "best_design": best.name,
        "PEs": best.parallel_pes,
        "throughput_GOPS": best.throughput_gops,
        "latency_ms": best.total_latency_ms,
        "GOPS/W": best.power_efficiency,
    }


def main() -> None:
    workloads = [tiny_detector(), resnet18(), alexnet()]
    rows = [explore_network(network) for network in workloads]
    print(format_table(rows, title="Best Winograd engine per workload (Virtex-7, 200 MHz)"))
    print(
        "\nNote: coverage below 100% means some layers (non-3x3 kernels or"
        " strided convolutions) fall back to spatial convolution and are not"
        " timed by the Winograd engine model."
    )

    # ------------------------------------------------------------------ #
    # Declarative route: once registered, the custom workload is reachable
    # by name from any ExperimentSpec (including JSON spec files run via
    # `python -m repro run`).
    # ------------------------------------------------------------------ #
    register_network("tiny-detector", tiny_detector)
    spec = ExperimentSpec(
        name="custom-network-demo",
        networks=("tiny-detector", "resnet18", "alexnet"),
        strategy="pareto-refine",
    )
    result = run_experiment(spec)
    print()
    print(campaign_summary_table(result))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Design-space exploration on VGG16-D (the paper's Section III study).

Sweeps the output tile size m = 2..7 and several multiplier budgets, prints
the multiplication-complexity / transform-complexity trade-off behind
Figs. 1-3, the throughput scaling of Fig. 6 and the Pareto-optimal
configurations for throughput vs. power.

Run with:  python examples/vgg16_design_space.py
"""

from repro import (
    complexity_breakdown,
    explore,
    ideal_throughput_gops,
    pareto_front,
    vgg16_d,
)
from repro.core import SweepSpec
from repro.reporting import bar_chart, format_table


def main() -> None:
    network = vgg16_d()

    # ------------------------------------------------------------------ #
    # Section III: complexity trade-off
    # ------------------------------------------------------------------ #
    rows = []
    previous = None
    for m in range(2, 8):
        breakdown = complexity_breakdown(network, m)
        row = {
            "m": m,
            "ewise_mults_G": breakdown.winograd_multiplications / 1e9,
            "mult_saving_x": breakdown.multiplication_saving_factor,
            "transform_MFLOPs": breakdown.transform_ops / 1e6,
        }
        if previous is not None:
            row["mult_decrease_%"] = 100.0 * (
                1 - breakdown.winograd_multiplications / previous.winograd_multiplications
            )
            row["transform_increase_%"] = 100.0 * (
                breakdown.transform_ops / previous.transform_ops - 1
            )
        rows.append(row)
        previous = breakdown
    print(format_table(rows, title="Complexity trade-off on VGG16-D (Figs. 1-3)"))
    print()

    # ------------------------------------------------------------------ #
    # Fig. 6: throughput vs. m and multiplier budget
    # ------------------------------------------------------------------ #
    budgets = (256, 512, 1024)
    for budget in budgets:
        series = {
            f"F({m}x{m},3x3)": ideal_throughput_gops(m, 3, budget) for m in range(2, 8)
        }
        series["spatial"] = ideal_throughput_gops(1, 3, budget, fractional_pes=False)
        print(bar_chart(series, title=f"Throughput at 200 MHz, {budget} multipliers (GOPS)"))
        print()

    # ------------------------------------------------------------------ #
    # Pareto frontier: throughput vs. power on the Virtex-7
    # ------------------------------------------------------------------ #
    points = explore(network, SweepSpec(m_values=(2, 3, 4, 5, 6)))
    front = pareto_front(points, [("throughput_gops", True), ("power_watts", False)])
    rows = [
        {
            "design": point.name,
            "throughput_GOPS": point.throughput_gops,
            "power_W": point.power_watts,
            "GOPS/W": point.power_efficiency,
            "LUTs": point.resources.luts,
        }
        for point in sorted(front, key=lambda p: p.throughput_gops)
    ]
    print(format_table(rows, title="Pareto-optimal designs (throughput vs. power) on Virtex-7"))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: reproduce the paper's headline results in a few lines.

Evaluates the three proposed Winograd engine configurations (F(2x2,3x3),
F(3x3,3x3), F(4x4,3x3)) on VGG16-D, prints the Table II style comparison
against the Podili et al. [3] and Qiu et al. [12] baselines and the abstract's
headline improvement factors.

Run with:  python examples/quickstart.py
"""

from repro import headline_claims, performance_table, vgg16_d
from repro.reporting import format_table


def main() -> None:
    network = vgg16_d()
    print(f"Workload: {network.name}, convolutional FLOPs = "
          f"{network.total_conv_flops / 1e9:.2f} GOPs\n")

    designs = performance_table(network)
    rows = []
    for design in designs:
        rows.append(
            {
                "design": design.name,
                "m": design.m,
                "multipliers": design.multipliers,
                "PEs": design.parallel_pes,
                "latency_ms": design.total_latency_ms,
                "throughput_GOPS": design.throughput_gops,
                "GOPS/mult": design.multiplier_efficiency,
                "power_W": design.power_watts,
                "GOPS/W": design.power_efficiency,
            }
        )
    print(format_table(rows, title="Table II (reproduced): VGG16-D performance comparison"))

    claims = headline_claims(network)
    print("\nHeadline claims (model vs. paper):")
    print(f"  throughput improvement over [3]    : {claims.throughput_improvement:.2f}x  (paper: 4.75x)")
    print(f"  power-efficiency improvement (m=2) : {claims.power_efficiency_improvement_m2:.2f}x  (paper: 1.44x)")
    print(f"  multiplier ratio (m=4 vs [3])      : {claims.multiplier_ratio:.2f}x  (paper: 2.67x)")
    print(f"  LUT savings at m=4, 19 PEs         : {claims.lut_savings_pct:.1f}%   (paper: 53.6%)")
    print(f"  best multiplier efficiency          : {claims.multiplier_efficiency_best:.2f} GOPS/mult (paper: 1.60)")
    print(
        "\nNext: describe a whole exploration declaratively with "
        "ExperimentSpec (see examples/declarative_experiment.py) or run a "
        "spec file end-to-end with `python -m repro run examples/experiment_spec.json`."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Validate the analytical latency model against the cycle-level simulator.

Runs the behavioural engine simulator (shared data transform, P parallel PEs,
channel accumulation) on a set of down-scaled convolutional layers, checks
that the produced feature maps match direct convolution bit-for-bit (up to
floating-point rounding) and that the measured cycle counts match Eq. (9) of
the paper.

Run with:  python examples/cycle_accurate_validation.py
"""

from repro.nn import ConvLayer
from repro.sim import EngineSimConfig, validate_layer
from repro.reporting import format_table


def main() -> None:
    layers = [
        ConvLayer("vgg-like_56x56", in_channels=8, out_channels=8, height=56, width=56),
        ConvLayer("edge_tiles_30x30", in_channels=4, out_channels=6, height=30, width=30),
        ConvLayer("multi_pass_14x14", in_channels=16, out_channels=24, height=14, width=14),
        ConvLayer("batch2_20x20", in_channels=3, out_channels=5, height=20, width=20, batch=2),
    ]
    rows = []
    for m in (2, 3, 4):
        config = EngineSimConfig(m=m, r=3, parallel_pes=8)
        for layer in layers:
            validation = validate_layer(layer, config)
            rows.append(
                {
                    "layer": layer.name,
                    "m": m,
                    "sim_cycles": validation.simulated_cycles,
                    "eq9_cycles": validation.analytical_cycles,
                    "cycle_err_%": validation.cycle_error_pct,
                    "max_abs_err": validation.max_abs_error,
                    "correct": str(validation.numerically_correct),
                }
            )
    print(format_table(rows, title="Cycle-level simulator vs. Eq. (9) and direct convolution", precision=3))


if __name__ == "__main__":
    main()

"""Rendering of campaign results: summary tables, comparisons, CSV export.

Sits on top of the generic :mod:`repro.reporting.tables` primitives and the
aggregate views a :class:`~repro.dse.campaign.CampaignResult` computes, so
benchmark scripts, notebooks and the ``python -m repro`` CLI can print a
whole campaign in one call — whether the result came from a live
:func:`~repro.experiments.run_experiment` call or was reloaded from a saved
JSON artifact via ``CampaignResult.load``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

from .tables import format_table, rows_to_csv

__all__ = [
    "campaign_summary_table",
    "campaign_comparison_table",
    "campaign_to_csv",
    "json_sanitize",
    "jsonable_rows",
    "campaign_report_payload",
]

SUMMARY_COLUMNS = (
    "network",
    "device",
    "points",
    "pareto",
    "best_gops",
    "best_gops_design",
    "best_gops_per_w",
    "min_latency_ms",
)


def campaign_summary_table(result, title: Optional[str] = None, precision: int = 2) -> str:
    """One-line-per-cell summary of a :class:`~repro.dse.CampaignResult`.

    Shows, per (network, device) cell: the number of feasible points, how
    many sit on the per-network Pareto front, and the best
    throughput / power-efficiency / latency picks.
    """
    if title is None:
        result_name = result.campaign.name
        title = (
            f"Campaign {result_name!r}: {result.feasible}/{result.evaluations} "
            f"feasible points in {result.elapsed_seconds * 1e3:.1f} ms "
            f"(cache hit rate {result.cache_stats.hit_rate:.0%})"
        )
    return format_table(result.summary_rows(), columns=SUMMARY_COLUMNS, title=title, precision=precision)


def campaign_comparison_table(
    result,
    metric: str = "throughput_gops",
    title: Optional[str] = None,
    precision: int = 2,
) -> str:
    """Networks x devices table of the best ``metric`` per cell."""
    if title is None:
        title = f"Best {metric} by network and device"
    rows = result.comparison_rows(metric)
    return format_table(rows, title=title, precision=precision)


def json_sanitize(value: Any) -> Any:
    """``value`` made strict-JSON-safe: non-finite floats become ``None``.

    Recurses through dicts and lists/tuples.  The comparison view marks
    empty (network, device) cells with ``NaN``, which ``json.dumps``
    emits as the non-standard ``NaN`` token most HTTP clients reject —
    this is the single implementation of the scrub policy, shared by
    :func:`jsonable_rows` and the ``repro.service`` HTTP server.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: json_sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_sanitize(item) for item in value]
    return value


def jsonable_rows(rows: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Row tables made strict-JSON-safe (see :func:`json_sanitize`)."""
    return [json_sanitize(row) for row in rows]


def campaign_report_payload(result, metric: Optional[str] = None) -> Dict[str, Any]:
    """One JSON-ready report of a campaign: the summary and comparison
    views a :class:`~repro.dse.CampaignResult` computes, as plain row
    dicts instead of formatted tables — what the ``repro.service`` HTTP
    server returns for a stored result's ``/report`` endpoint.

    ``metric`` picks the comparison metric (defaults to the embedded
    spec's first metric, falling back to throughput).
    """
    spec = getattr(result, "spec", None)
    if metric is None:
        metric = spec.metrics[0] if spec is not None else "throughput_gops"
    return {
        "name": result.campaign.name,
        "evaluations": result.evaluations,
        "feasible": result.feasible,
        "elapsed_seconds": result.elapsed_seconds,
        "networks": result.network_names(),
        "devices": result.device_names(),
        "summary": jsonable_rows(result.summary_rows()),
        "comparison": {
            "metric": metric,
            "rows": jsonable_rows(result.comparison_rows(metric)),
        },
    }


def campaign_to_csv(result, columns: Optional[Sequence[str]] = None) -> str:
    """Every feasible design point of a campaign as CSV text.

    Columns default to the union of keys across all rows in first-seen
    order: different networks report different per-group latency columns
    (``latency_conv1_ms`` vs ResNet stage groups), and taking only the
    first row's keys would silently drop the rest.
    """
    rows = result.point_rows()
    if columns is None:
        seen: dict = {}
        for row in rows:
            for key in row:
                seen.setdefault(key)
        columns = list(seen)
    return rows_to_csv(rows, columns=columns)

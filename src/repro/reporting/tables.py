"""Plain-text and CSV rendering of comparison tables and sweep results.

The benchmark harness prints the same rows the paper's tables report; this
module owns the formatting so benchmarks stay focused on producing numbers.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Mapping, Optional, Sequence, Union

Number = Union[int, float]
Row = Mapping[str, Union[str, Number]]

__all__ = ["format_table", "rows_to_csv", "format_comparison", "format_ratio"]


def _format_cell(value: Union[str, Number], precision: int) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "-"
    magnitude = abs(value)
    if magnitude >= 1e5:
        return f"{value:,.0f}"
    return f"{value:.{precision}f}"


def format_table(
    rows: Sequence[Row],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    precision: int = 2,
) -> str:
    """Render rows of dicts as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return title or "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(column) for column in columns]
    body = [[_format_cell(row.get(column, ""), precision) for column in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) for i in range(len(columns))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(columns))))
    lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for line in body:
        lines.append("  ".join(line[i].rjust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Row], columns: Optional[Sequence[str]] = None) -> str:
    """Render rows of dicts as CSV text."""
    rows = list(rows)
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns), extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow({key: row.get(key, "") for key in columns})
    return buffer.getvalue()


def format_ratio(measured: float, published: float) -> str:
    """Render a measured/published pair as ``measured (paper published, xN.NN)``."""
    if published == 0:
        return f"{measured:.2f} (paper {published:.2f})"
    return f"{measured:.2f} (paper {published:.2f}, x{measured / published:.2f})"


def format_comparison(
    measured: Mapping[str, Number],
    published: Mapping[str, Number],
    title: Optional[str] = None,
    precision: int = 2,
) -> str:
    """Two-column measured-vs-published comparison for EXPERIMENTS.md."""
    rows = []
    for key in measured:
        row: Dict[str, Union[str, Number]] = {"metric": key, "measured": measured[key]}
        row["published"] = published.get(key, float("nan"))
        published_value = published.get(key)
        if isinstance(published_value, (int, float)) and published_value:
            row["ratio"] = float(measured[key]) / float(published_value)
        else:
            row["ratio"] = float("nan")
        rows.append(row)
    return format_table(rows, columns=["metric", "measured", "published", "ratio"], title=title, precision=precision)

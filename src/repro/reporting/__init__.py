"""Reporting helpers: plain-text tables, CSV export and ASCII figures."""

from .campaign import (
    campaign_comparison_table,
    campaign_report_payload,
    campaign_summary_table,
    campaign_to_csv,
    json_sanitize,
    jsonable_rows,
)
from .figures import bar_chart, grouped_series
from .tables import format_comparison, format_ratio, format_table, rows_to_csv

__all__ = [
    "format_table",
    "rows_to_csv",
    "format_comparison",
    "format_ratio",
    "bar_chart",
    "grouped_series",
    "campaign_summary_table",
    "campaign_comparison_table",
    "campaign_report_payload",
    "campaign_to_csv",
    "json_sanitize",
    "jsonable_rows",
]

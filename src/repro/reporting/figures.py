"""ASCII rendering of the paper's figures.

No plotting dependencies are assumed in the offline environment, so the
benchmark harness renders figure data as simple ASCII bar/series charts —
enough to see the shapes (quadratic decrease of Fig. 1, the knee of Fig. 3,
the linear-in-multipliers scaling of Fig. 6) directly in the benchmark output.
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

Number = Union[int, float]

__all__ = ["bar_chart", "grouped_series"]


def bar_chart(
    values: Mapping[str, Number],
    title: Optional[str] = None,
    width: int = 50,
    unit: str = "",
) -> str:
    """Render a labelled horizontal bar chart."""
    if not values:
        return title or "(empty chart)"
    maximum = max(float(v) for v in values.values())
    maximum = maximum if maximum > 0 else 1.0
    label_width = max(len(str(label)) for label in values)
    lines = []
    if title:
        lines.append(title)
    for label, value in values.items():
        bar = "#" * max(1, int(round(width * float(value) / maximum))) if value else ""
        lines.append(f"{str(label).ljust(label_width)} | {bar} {float(value):.3f}{unit}")
    return "\n".join(lines)


def grouped_series(
    series: Mapping[str, Mapping[str, Number]],
    title: Optional[str] = None,
    width: int = 40,
    unit: str = "",
) -> str:
    """Render several named series of labelled values (Fig. 1 / Fig. 6 style).

    ``series`` maps series name -> {category -> value}.
    """
    if not series:
        return title or "(empty chart)"
    maximum = max(
        (float(v) for values in series.values() for v in values.values()), default=1.0
    )
    maximum = maximum if maximum > 0 else 1.0
    lines = []
    if title:
        lines.append(title)
    for name, values in series.items():
        lines.append(f"[{name}]")
        label_width = max(len(str(label)) for label in values)
        for label, value in values.items():
            bar = "*" * max(1, int(round(width * float(value) / maximum))) if value else ""
            lines.append(f"  {str(label).ljust(label_width)} | {bar} {float(value):.2f}{unit}")
    return "\n".join(lines)

"""Entry point for ``python -m repro`` (see :mod:`repro.experiments.cli`)."""

from .experiments.cli import main

if __name__ == "__main__":
    raise SystemExit(main())

"""Batch evaluation of heterogeneous request sets.

:func:`repro.dse.vectorized.evaluate_cell_batch` evaluates many grid
entries of *one* ``(network, device)`` cell at once.  An online service
sees the opposite shape: a micro-batch of independent requests that may
mix networks, devices and calibrations freely.  :func:`evaluate_requests`
bridges the two — it groups a request list by cell, dispatches each group
through the vectorized engine (or the scalar evaluator when numpy is
unavailable) and returns one :class:`BatchOutcome` per request, aligned
with the input order.

Guarantees:

* **Bit-identical to serial.**  Every returned point is byte-for-byte the
  point :func:`repro.core.design_point.evaluate_design` produces for the
  same request, regardless of which other requests share the batch — the
  vectorized engine computes the elementwise IEEE-754 twin of the scalar
  expressions, and grouping never mixes state between cells.  This is what
  lets a request-batching server coalesce traffic without changing any
  response.
* **Total.**  Infeasible requests do not abort the batch: their outcome
  carries the scalar path's error message (or the device-fit reason)
  instead of a point.  The vectorized engine reports skip reasons from
  the same pass that skips them (``collect_errors=True``), so failures
  cost no second evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

from ..core.design_point import DesignPoint
from ..core.design_space import GridEntry
from ..hw.calibration import Calibration, DEFAULT_CALIBRATION
from ..hw.device import FpgaDevice, resolve_device
from ..nn.model import Network
from ..nn.registry import resolve_network
from .cache import network_fingerprint
from .engine import CacheLike, _evaluate_entry
from .vectorized import DOES_NOT_FIT, EXCEEDS_ERROR_BUDGET

__all__ = ["EvalRequest", "BatchOutcome", "evaluate_requests"]


class EvalRequest(NamedTuple):
    """One ad-hoc design-point evaluation request.

    ``network`` and ``device`` accept registry names as well as concrete
    objects; ``entry`` is the fully specified grid configuration.
    """

    network: Union[Network, str]
    device: Union[FpgaDevice, str]
    entry: GridEntry
    calibration: Calibration = DEFAULT_CALIBRATION


@dataclass(frozen=True)
class BatchOutcome:
    """Result of one request: a design point, or why there is none.

    Exactly one of ``point``/``error`` is set.  ``error`` carries the
    scalar evaluator's ``ValueError`` message for infeasible
    configurations, or a device-fit message when the design evaluates but
    exceeds the device budget.
    """

    point: Optional[DesignPoint] = None
    error: Optional[str] = None

    @property
    def feasible(self) -> bool:
        """True when the request produced a design point."""
        return self.point is not None


def _serial_outcome(
    network: Network,
    device: FpgaDevice,
    calibration: Calibration,
    entry: GridEntry,
    cache: CacheLike,
    fingerprint: Optional[str],
) -> BatchOutcome:
    """One request through the scalar path — a single evaluation."""
    try:
        point = _evaluate_entry(
            network, device, calibration, entry,
            skip_infeasible=False, cache=cache, fingerprint=fingerprint,
        )
    except ValueError as error:
        return BatchOutcome(error=str(error))
    if not point.resources.fits(device):
        return BatchOutcome(error=DOES_NOT_FIT.format(device=device.name))
    if entry.error_budget is not None and point.max_rel_error > entry.error_budget:
        return BatchOutcome(
            error=EXCEEDS_ERROR_BUDGET.format(
                error=point.max_rel_error, budget=entry.error_budget
            )
        )
    return BatchOutcome(point=point)


def evaluate_requests(
    requests: Sequence[EvalRequest],
    cache: CacheLike = None,
    vectorized: Optional[bool] = None,
) -> List[BatchOutcome]:
    """Evaluate a heterogeneous request batch; one outcome per request.

    Requests are grouped by ``(network, device, calibration)`` cell and
    each group is evaluated as one stacked NumPy batch
    (:func:`repro.dse.vectorized.evaluate_cell_batch`); results come back
    in request order and are bit-identical to evaluating every request
    alone through the scalar path.

    Parameters
    ----------
    cache:
        Serves the scalar fallback path (``None`` = the process-wide
        cache, ``False`` = uncached).  The vectorized fast path never
        touches it.
    vectorized:
        ``None`` uses the NumPy engine when importable; ``False`` forces
        the scalar evaluator (identical results); ``True`` requires numpy
        and raises ``RuntimeError`` without it.
    """
    from .vectorized import evaluate_cell_batch, numpy_available

    if vectorized is None:
        vectorized = numpy_available()
    elif vectorized and not numpy_available():
        raise RuntimeError("vectorized batch evaluation requires numpy")

    requests = list(requests)
    outcomes: List[Optional[BatchOutcome]] = [None] * len(requests)

    # Group request indexes by cell.  Networks are unhashable, so the key
    # uses the content fingerprint; resolution and fingerprinting are
    # memoised across the batch (registry lookups rebuild the network per
    # call, which a thousand-request batch must not pay per request).
    networks_by_name: Dict[str, Network] = {}
    fingerprints_by_id: Dict[int, str] = {}
    devices_by_name: Dict[str, FpgaDevice] = {}
    cells: Dict[Tuple, Tuple[Network, FpgaDevice, Calibration, List[int]]] = {}
    use_cache = cache is not False
    for index, request in enumerate(requests):
        if isinstance(request.network, str):
            network = networks_by_name.get(request.network)
            if network is None:
                network = networks_by_name[request.network] = resolve_network(request.network)
        else:
            network = request.network
        fingerprint = fingerprints_by_id.get(id(network))
        if fingerprint is None:
            fingerprint = fingerprints_by_id[id(network)] = network_fingerprint(network)
        if isinstance(request.device, str):
            device = devices_by_name.get(request.device)
            if device is None:
                device = devices_by_name[request.device] = resolve_device(request.device)
        else:
            device = request.device
        key = (fingerprint, device, request.calibration)
        cell = cells.get(key)
        if cell is None:
            cells[key] = (network, device, request.calibration, [index])
        else:
            cell[3].append(index)

    for (fingerprint, _, _), (network, device, calibration, indexes) in cells.items():
        entries = [requests[index].entry for index in indexes]
        if vectorized:
            batch = evaluate_cell_batch(
                network, device, calibration, entries,
                skip_infeasible=True, collect_errors=True,
            )
            assert batch.errors is not None
            for index, point, error in zip(indexes, batch.points, batch.errors):
                if point is not None:
                    outcomes[index] = BatchOutcome(point=point)
                else:
                    outcomes[index] = BatchOutcome(error=error)
        else:
            probe_fingerprint = fingerprint if use_cache else None
            for index, entry in zip(indexes, entries):
                outcomes[index] = _serial_outcome(
                    network, device, calibration, entry, cache, probe_fingerprint
                )
    assert all(outcome is not None for outcome in outcomes)
    return outcomes  # type: ignore[return-value]

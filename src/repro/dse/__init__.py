"""Campaign-scale design-space exploration: caching, parallelism, aggregation.

The seed :func:`repro.core.explore` evaluated one network on one device with
a scalar nested loop, recomputing identical ``(m, r)`` transform and
complexity work for every budget x frequency combination.  This subsystem
turns that into a campaign engine:

* :mod:`repro.dse.cache` — :class:`EvaluationCache`, a layered memo keyed on
  ``(network, device, calibration, m, r, budget, frequency, shared)`` that
  makes repeated sweeps and overlapping grids near-free;
* :mod:`repro.dse.engine` — :func:`iter_explore`, a streaming evaluator over
  networks x devices x sweep specs with a chunked ``ProcessPoolExecutor``
  path and a serial fallback, both returning identical points in identical
  order;
* :mod:`repro.dse.vectorized` — :func:`evaluate_cell_batch`, the NumPy
  batch engine behind ``ExecutorConfig(mode="vectorized")``: one
  ``(network, device)`` cell's whole ``m x r x budget x frequency`` grid as
  stacked array operations, bit-identical to the scalar path and an order
  of magnitude faster on Fig. 6-scale sweeps;
* :mod:`repro.dse.batch` — :func:`evaluate_requests`, the heterogeneous
  batch entry point: a mixed list of (network, device, entry) requests
  grouped by cell and dispatched through the vectorized engine, one
  outcome per request — what the :mod:`repro.service` micro-batcher
  feeds;
* :mod:`repro.dse.campaign` — :class:`Campaign` / :class:`CampaignResult`,
  the campaign description and its aggregated outcome (per-network Pareto
  fronts, best-by-metric picks, comparison tables, JSON ``save``/``load``).

This package is the *evaluation engine*; the declarative layer on top of it
lives in :mod:`repro.experiments` (``ExperimentSpec`` + pluggable search
strategies + the ``python -m repro`` CLI).  ``Campaign.run()`` and
:func:`run_campaign` are thin shims over that API's exhaustive
``GridStrategy`` — signatures, ordering and results are unchanged.

Quickstart — a 3-network x 2-device campaign:

>>> from repro.dse import Campaign
>>> result = Campaign(
...     networks=("vgg16-d", "alexnet", "resnet18"),
...     devices=("xc7vx485t", "xc7vx690t"),
... ).run()
>>> result.best("throughput_gops").name
'F(7x7,3x3)-P11'
"""

from .batch import BatchOutcome, EvalRequest, evaluate_requests
from .cache import CacheStats, EvaluationCache, global_cache, network_fingerprint
from .campaign import (
    Campaign,
    CampaignResult,
    DEFAULT_OBJECTIVES,
    METRIC_DIRECTIONS,
    run_campaign,
)
from .engine import (
    ExecutorConfig,
    evaluate_design_cached,
    explore_cached,
    iter_explore,
)
from .vectorized import (
    BatchResult,
    DOES_NOT_FIT,
    EXCEEDS_ERROR_BUDGET,
    evaluate_cell_batch,
    numpy_available,
)

__all__ = [
    "BatchOutcome",
    "EvalRequest",
    "evaluate_requests",
    "BatchResult",
    "DOES_NOT_FIT",
    "EXCEEDS_ERROR_BUDGET",
    "evaluate_cell_batch",
    "numpy_available",
    "CacheStats",
    "EvaluationCache",
    "global_cache",
    "network_fingerprint",
    "Campaign",
    "CampaignResult",
    "DEFAULT_OBJECTIVES",
    "METRIC_DIRECTIONS",
    "run_campaign",
    "ExecutorConfig",
    "evaluate_design_cached",
    "explore_cached",
    "iter_explore",
]

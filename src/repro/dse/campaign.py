"""Campaign-scale design-space exploration.

A :class:`Campaign` is the declarative description of a full exploration —
the cross-product of networks x devices x sweep specifications — and a
:class:`CampaignResult` is the evaluated outcome, with the aggregate views a
DSE report needs: per-network Pareto fronts, best-by-metric picks and
cross-network comparison rows.

>>> from repro.dse import Campaign
>>> result = Campaign(
...     networks=("vgg16-d", "alexnet"),
...     devices=("xc7vx485t", "xc7vx690t"),
... ).run()
>>> best = result.best("throughput_gops")
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from ..core.design_point import DesignPoint
from ..core.design_space import SweepSpec, best_by
from ..core.pareto import Objective, ObjectiveLike, pareto_front
from ..hw.calibration import Calibration, DEFAULT_CALIBRATION
from ..hw.device import FpgaDevice
from ..nn.model import Network
from .cache import CacheStats
from .engine import (
    CacheLike,
    ExecutorConfig,
    _ensure_tuple,
    _normalize_devices,
    _normalize_networks,
    _normalize_specs,
)

if TYPE_CHECKING:  # pragma: no cover - typing only; runtime import would cycle
    from ..experiments.spec import ExperimentSpec

__all__ = ["Campaign", "CampaignResult", "run_campaign", "METRIC_DIRECTIONS"]

#: Whether a named DesignPoint metric improves upward (True) or downward.
METRIC_DIRECTIONS: Dict[str, bool] = {
    "throughput_gops": True,
    "power_efficiency": True,
    "multiplier_efficiency": True,
    "total_latency_ms": False,
    "power_watts": False,
    "max_rel_error": False,
    "mean_rel_error": False,
}

#: Default campaign objectives: the paper's throughput / power-efficiency
#: trade-off of Section V.
DEFAULT_OBJECTIVES: Tuple[Tuple[str, bool], ...] = (
    ("throughput_gops", True),
    ("power_efficiency", True),
)


def metric_direction(metric: str) -> bool:
    """Default optimisation direction for a metric (maximize unless known cost)."""
    return METRIC_DIRECTIONS.get(metric, True)


@dataclass(frozen=True)
class Campaign:
    """Declarative description of one exploration campaign.

    ``networks`` and ``devices`` accept registry names as well as concrete
    objects; ``sweeps`` is one or more :class:`SweepSpec` whose grids are
    concatenated per (network, device) cell.
    """

    networks: Sequence[Union[Network, str]]
    devices: Sequence[Union[FpgaDevice, str]] = ("xc7vx485t",)
    sweeps: Sequence[SweepSpec] = (SweepSpec(),)
    calibration: Calibration = DEFAULT_CALIBRATION
    skip_infeasible: bool = True
    objectives: Sequence[ObjectiveLike] = DEFAULT_OBJECTIVES
    name: str = "campaign"

    # ------------------------------------------------------------------ #
    def __post_init__(self) -> None:
        # Normalize the inputs exactly once (shared scalar-wrapping rules
        # with iter_explore): one-shot iterables such as generators must
        # survive being read by both grid_size and run().
        object.__setattr__(self, "networks", _ensure_tuple(self.networks, (Network, str)))
        object.__setattr__(self, "devices", _ensure_tuple(self.devices, (FpgaDevice, str)))
        object.__setattr__(self, "sweeps", _ensure_tuple(self.sweeps, (SweepSpec,)))
        objectives = _ensure_tuple(self.objectives, (str, Objective))
        if (
            len(objectives) == 2
            and isinstance(objectives[0], str)
            and isinstance(objectives[1], bool)
        ):
            # A single ("metric", maximize) pair, not two objectives.
            objectives = (tuple(objectives),)
        object.__setattr__(self, "objectives", objectives)

    def resolved_networks(self) -> List[Network]:
        """Concrete :class:`Network` objects (registry names resolved)."""
        return _normalize_networks(self.networks)

    def resolved_devices(self) -> List[FpgaDevice]:
        """Concrete :class:`FpgaDevice` objects (registry names resolved)."""
        return _normalize_devices(self.devices)

    def resolved_sweeps(self) -> Tuple[SweepSpec, ...]:
        """The campaign's sweeps as a validated tuple."""
        return _normalize_specs(self.sweeps)

    @property
    def grid_size(self) -> int:
        """Total number of configurations the campaign will evaluate."""
        per_cell = sum(spec.size for spec in self.resolved_sweeps())
        return len(self.networks) * len(self.devices) * per_cell

    def run(
        self,
        cache: CacheLike = None,
        executor: Optional[ExecutorConfig] = None,
    ) -> "CampaignResult":
        """Evaluate the campaign; see :func:`run_campaign`."""
        return run_campaign(self, cache=cache, executor=executor)


@dataclass
class CampaignResult:
    """Evaluated campaign: every feasible design point plus aggregate views.

    ``spec`` carries the declarative :class:`~repro.experiments.ExperimentSpec`
    the run came from (set by :func:`repro.experiments.run_experiment`;
    ``None`` for legacy ``Campaign.run()`` calls, where an equivalent spec is
    derived on save), making every saved result a re-runnable artifact.
    """

    campaign: Campaign
    points: List[DesignPoint]
    evaluations: int
    elapsed_seconds: float
    cache_stats: CacheStats = field(default_factory=CacheStats)
    spec: Optional["ExperimentSpec"] = field(default=None, repr=False)

    # ------------------------------------------------------------------ #
    @property
    def feasible(self) -> int:
        """Number of feasible (kept) design points."""
        return len(self.points)

    @property
    def skipped(self) -> int:
        """Grid configurations dropped as infeasible."""
        return self.evaluations - self.feasible

    def network_names(self) -> List[str]:
        """Workload names in first-appearance order."""
        seen: Dict[str, None] = {}
        for point in self.points:
            seen.setdefault(point.workload_name)
        return list(seen)

    def device_names(self) -> List[str]:
        """Device names in first-appearance order."""
        seen: Dict[str, None] = {}
        for point in self.points:
            seen.setdefault(point.device_name)
        return list(seen)

    # ------------------------------------------------------------------ #
    def by_network(self) -> Dict[str, List[DesignPoint]]:
        """Design points grouped by workload name (insertion order kept)."""
        groups: Dict[str, List[DesignPoint]] = {}
        for point in self.points:
            groups.setdefault(point.workload_name, []).append(point)
        return groups

    def by_cell(self) -> Dict[Tuple[str, str], List[DesignPoint]]:
        """Design points grouped by (workload, device) cell."""
        groups: Dict[Tuple[str, str], List[DesignPoint]] = {}
        for point in self.points:
            groups.setdefault((point.workload_name, point.device_name), []).append(point)
        return groups

    def select(
        self, network: Optional[str] = None, device: Optional[str] = None
    ) -> List[DesignPoint]:
        """Points filtered by workload and/or device name."""
        return [
            point
            for point in self.points
            if (network is None or point.workload_name == network)
            and (device is None or point.device_name == device)
        ]

    # ------------------------------------------------------------------ #
    def pareto_fronts(
        self, objectives: Optional[Sequence[ObjectiveLike]] = None
    ) -> Dict[str, List[DesignPoint]]:
        """Per-network Pareto fronts on the campaign objectives."""
        objectives = tuple(objectives or self.campaign.objectives)
        return {
            name: pareto_front(points, objectives)
            for name, points in self.by_network().items()
        }

    def best(
        self,
        metric: str,
        maximize: Optional[bool] = None,
        network: Optional[str] = None,
        device: Optional[str] = None,
    ) -> DesignPoint:
        """Best point by a metric, optionally within one network/device."""
        if maximize is None:
            maximize = metric_direction(metric)
        return best_by(self.select(network, device), metric, maximize=maximize)

    def best_by_metric(
        self, metrics: Sequence[str] = ("throughput_gops", "power_efficiency", "total_latency_ms")
    ) -> Dict[str, Dict[str, DesignPoint]]:
        """Per-network best picks for each named metric."""
        return {
            name: {
                metric: best_by(points, metric, maximize=metric_direction(metric))
                for metric in metrics
            }
            for name, points in self.by_network().items()
        }

    # ------------------------------------------------------------------ #
    def summary_rows(self) -> List[Dict[str, Union[str, float, int]]]:
        """One row per (network, device) cell for the campaign summary table."""
        fronts = self.pareto_fronts()
        rows: List[Dict[str, Union[str, float, int]]] = []
        for (network, device), points in self.by_cell().items():
            front_ids = {id(point) for point in fronts.get(network, [])}
            best_throughput = best_by(points, "throughput_gops")
            best_power = best_by(points, "power_efficiency")
            fastest = best_by(points, "total_latency_ms", maximize=False)
            rows.append(
                {
                    "network": network,
                    "device": device,
                    "points": len(points),
                    "pareto": sum(1 for point in points if id(point) in front_ids),
                    "best_gops": best_throughput.throughput_gops,
                    "best_gops_design": best_throughput.name,
                    "best_gops_per_w": best_power.power_efficiency,
                    "min_latency_ms": fastest.total_latency_ms,
                }
            )
        return rows

    def comparison_rows(
        self, metric: str = "throughput_gops"
    ) -> List[Dict[str, Union[str, float]]]:
        """Networks x devices comparison of the best value of ``metric``."""
        maximize = metric_direction(metric)
        devices = self.device_names()
        cells = self.by_cell()
        rows: List[Dict[str, Union[str, float]]] = []
        for network in self.network_names():
            row: Dict[str, Union[str, float]] = {"network": network}
            for device in devices:
                cell = cells.get((network, device))
                if cell:
                    best = best_by(cell, metric, maximize=maximize)
                    row[device] = float(getattr(best, metric))
                else:
                    row[device] = float("nan")
            rows.append(row)
        return rows

    def point_rows(self) -> List[Dict[str, Union[str, float, int]]]:
        """Flat per-point rows (network/device plus the Table II columns)."""
        rows = []
        for point in self.points:
            row: Dict[str, Union[str, float, int]] = {
                "network": point.workload_name,
                "device": point.device_name,
                "design": point.name,
            }
            row.update(point.summary_row())
            rows.append(row)
        return rows

    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, "Path"]) -> "Path":
        """Persist the result (points, bookkeeping and the embedded spec) as
        versioned JSON, so it can be reloaded and re-analysed — or the spec
        re-run — without re-evaluating anything.  Returns the path written.
        """
        from ..experiments.persistence import save_result  # deferred: avoids cycle

        return save_result(self, path)

    @classmethod
    def load(cls, path: Union[str, "Path"]) -> "CampaignResult":
        """Reload a result previously written by :meth:`save`."""
        from ..experiments.persistence import load_result  # deferred: avoids cycle

        return load_result(path)


def run_campaign(
    campaign: Campaign,
    cache: CacheLike = None,
    executor: Optional[ExecutorConfig] = None,
) -> CampaignResult:
    """Evaluate every cell of ``campaign`` and aggregate the results.

    A thin shim over the :mod:`repro.experiments` runner with the exhaustive
    :class:`~repro.experiments.GridStrategy` — signatures, point ordering
    and results are unchanged from the historical campaign engine (the
    strategy streams through the same :func:`~repro.dse.engine.iter_explore`
    core).  Uses the shared memoising evaluator (so overlapping grids across
    sweeps and repeated campaigns are near-free).  Runs serially unless an
    ``executor`` opting into the vectorized batch engine or the chunked
    process pool is given (``ExecutorConfig(mode="auto")``, ``"vectorized"``
    or ``"process"``; the vectorized engine evaluates whole cells as NumPy
    array operations with bit-identical results).  ``cache_stats`` on
    the result counts this run's cache traffic (worker-side counters
    included in process mode; approximate if other threads share the same
    cache concurrently); it stays zero when ``cache=False``.
    """
    from ..experiments.runner import Evaluator  # deferred: avoids import cycle
    from ..experiments.strategies import GridStrategy

    evaluator = Evaluator(
        networks=campaign.resolved_networks(),
        devices=campaign.resolved_devices(),
        sweeps=campaign.resolved_sweeps(),
        calibration=campaign.calibration,
        skip_infeasible=campaign.skip_infeasible,
        objectives=campaign.objectives,
        cache=cache,
        executor=executor,
    )
    started = time.perf_counter()
    points = list(GridStrategy().search(None, evaluator))
    elapsed = time.perf_counter() - started
    return CampaignResult(
        campaign=campaign,
        points=points,
        evaluations=campaign.grid_size,
        elapsed_seconds=elapsed,
        cache_stats=evaluator.stats,
    )

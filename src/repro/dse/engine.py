"""Cached, parallel evaluation engine behind ``explore`` and campaigns.

Three pieces live here:

* :func:`evaluate_design_cached` — a drop-in for
  :func:`repro.core.design_point.evaluate_design` that routes every
  sub-computation through an :class:`~repro.dse.cache.EvaluationCache`.
  Results are bit-identical to the uncached path (the cache only memoises
  calls the uncached path would make with the same arguments).
* :func:`iter_explore` — a streaming iterator over the cross-product of
  networks x devices x sweep configurations, yielding fully evaluated
  design points in deterministic order.
* the process-pool executor — work is chunked so that every chunk shares one
  ``(network, device)`` cell and a contiguous run of grid entries (which the
  canonical ``m``-major ordering keeps clustered by ``(m, r)``), letting each
  worker's cache serve most of its chunk.  Results are re-assembled in
  submission order, so the parallel path returns exactly the serial
  sequence; a serial fallback runs everything in-process when the machine
  has a single core, the grid is small, or ``mode="serial"`` is forced.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from ..core.design_point import DesignPoint, evaluate_design
from ..core.design_space import GridEntry, SweepSpec
from ..hw.calibration import Calibration, DEFAULT_CALIBRATION
from ..hw.device import FpgaDevice, resolve_device, virtex7_485t
from ..nn.model import Network
from ..nn.registry import resolve_network
from .cache import CacheStats, EvaluationCache, global_cache, network_fingerprint

__all__ = [
    "ExecutorConfig",
    "chunk_entries",
    "evaluate_design_cached",
    "iter_explore",
    "explore_cached",
]

NetworkLike = Union[Network, str]
DeviceLike = Union[FpgaDevice, str]
SpecLike = Union[SweepSpec, Sequence[SweepSpec]]
CacheLike = Union[EvaluationCache, None, bool]


@dataclass(frozen=True)
class ExecutorConfig:
    """How a sweep's evaluations are executed.

    Attributes
    ----------
    mode:
        ``"serial"`` evaluates in-process one entry at a time;
        ``"vectorized"`` evaluates each ``(network, device)`` cell as
        stacked NumPy array operations (see :mod:`repro.dse.vectorized`),
        bit-identical to serial; ``"process"`` forces a
        ``ProcessPoolExecutor``; ``"auto"`` picks the vectorized engine for
        grids of at least ``min_grid_for_vectorized`` entries (falling back
        to the process pool, then serial, when numpy or cores are missing).
    max_workers:
        Pool size; defaults to ``os.cpu_count()`` capped at 8.
    chunk_size:
        Grid entries per work chunk; auto-sized to give each worker several
        chunks while keeping per-chunk pickling overhead small.
    min_grid_for_processes:
        ``"auto"`` does not use the process pool below this many total
        evaluations.
    min_grid_for_vectorized:
        ``"auto"`` does not use the vectorized engine below this many total
        evaluations (tiny grids do not amortise the array set-up).
    """

    mode: str = "auto"
    max_workers: Optional[int] = None
    chunk_size: Optional[int] = None
    min_grid_for_processes: int = 64
    min_grid_for_vectorized: int = 32

    def __post_init__(self) -> None:
        if self.mode not in ("auto", "serial", "vectorized", "process"):
            raise ValueError(f"unknown executor mode {self.mode!r}")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.min_grid_for_vectorized < 0:
            raise ValueError("min_grid_for_vectorized must be >= 0")

    def resolved_workers(self) -> int:
        """Effective pool size (``max_workers`` or cpu count capped at 8)."""
        if self.max_workers is not None:
            return self.max_workers
        return max(1, min(os.cpu_count() or 1, 8))

    def choose_mode(self, total_evaluations: int, explicit_cache: bool = False) -> str:
        """Resolve the execution mode for a run of ``total_evaluations``.

        ``explicit_cache`` marks a caller-supplied
        :class:`~repro.dse.cache.EvaluationCache`: that is a request for
        evaluation *through* the cache, which only the serial path honours
        (workers memoise per-process, the vectorized engine not at all), so
        ``"auto"`` prefers serial then.  Forced modes win over the cache
        preference; a forced ``"vectorized"`` without numpy degrades to
        serial (identical results, just slower) with a warning.
        """
        from .vectorized import numpy_available  # deferred: optional numpy gate

        if self.mode == "serial":
            return "serial"
        if self.mode == "vectorized":
            if not numpy_available():
                import warnings

                warnings.warn(
                    "ExecutorConfig(mode='vectorized') requires numpy, which is "
                    "not importable; falling back to the serial path "
                    "(identical results)",
                    RuntimeWarning,
                    stacklevel=3,
                )
                return "serial"
            return "vectorized"
        if self.mode == "process":
            return "process"
        # auto
        if explicit_cache:
            return "serial"
        if numpy_available() and total_evaluations >= self.min_grid_for_vectorized:
            return "vectorized"
        if (
            (os.cpu_count() or 1) > 1
            and self.resolved_workers() > 1
            and total_evaluations >= self.min_grid_for_processes
        ):
            return "process"
        return "serial"

    def resolved_chunk_size(self, cell_entries: int) -> int:
        """Entries per work chunk (explicit, or ~4 chunks per worker)."""
        if self.chunk_size is not None:
            return self.chunk_size
        workers = self.resolved_workers()
        return max(4, -(-cell_entries // (workers * 4)))


def chunk_entries(entries: Sequence[GridEntry], chunk_size: int) -> List[Tuple[GridEntry, ...]]:
    """Split ``entries`` into contiguous chunks of at most ``chunk_size``.

    Order-preserving: concatenating the chunks reproduces ``entries``
    exactly, which is what lets both the process-pool executor and the
    service's job scheduler (:mod:`repro.service.jobs`) reassemble chunk
    results into the serial evaluation order.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    entries = list(entries)
    return [
        tuple(entries[start : start + chunk_size])
        for start in range(0, len(entries), chunk_size)
    ]


# --------------------------------------------------------------------- #
# Cached single-point evaluation
# --------------------------------------------------------------------- #
def evaluate_design_cached(
    network: Network,
    m: int,
    r: int = 3,
    parallel_pes: Optional[int] = None,
    multiplier_budget: Optional[int] = None,
    frequency_mhz: float = 200.0,
    shared_data_transform: bool = True,
    device: Optional[FpgaDevice] = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
    include_pipeline_depth: bool = True,
    name: Optional[str] = None,
    cache: CacheLike = None,
    fingerprint: Optional[str] = None,
    bit_width: Optional[int] = None,
) -> DesignPoint:
    """Memoised twin of :func:`repro.core.design_point.evaluate_design`.

    Identical semantics and results; repeated evaluations with overlapping
    ``(m, r)``, engine or workload sub-problems are served from ``cache``
    (the process-wide cache when ``None``; ``False`` falls through to the
    uncached evaluator).  Infeasible configurations raise the same
    ``ValueError`` as the uncached path — and the failure itself is
    memoised, so re-probing an infeasible corner of the grid is free.
    """
    if cache is False:
        return evaluate_design(
            network,
            m=m,
            r=r,
            parallel_pes=parallel_pes,
            multiplier_budget=multiplier_budget,
            frequency_mhz=frequency_mhz,
            shared_data_transform=shared_data_transform,
            device=device,
            calibration=calibration,
            include_pipeline_depth=include_pipeline_depth,
            name=name,
            bit_width=bit_width,
        )
    cache = cache if cache is not None else global_cache()
    device = device or virtex7_485t()
    fingerprint = fingerprint or network_fingerprint(network)
    key = (
        fingerprint,
        device,
        calibration,
        m,
        r,
        parallel_pes,
        multiplier_budget,
        frequency_mhz,
        shared_data_transform,
        include_pipeline_depth,
        name,
        bit_width,
    )
    entry = cache.lookup_point(key)
    if entry is not None:
        status, value = entry
        if status == "err":
            # Replay the original exception class and args so callers see
            # the same error whether the probe was cached or not.
            error_type, error_args = value
            raise error_type(*error_args)
        return _detached(value)

    try:
        point = evaluate_design(
            network,
            m=m,
            r=r,
            parallel_pes=parallel_pes,
            multiplier_budget=multiplier_budget,
            frequency_mhz=frequency_mhz,
            shared_data_transform=shared_data_transform,
            device=device,
            calibration=calibration,
            include_pipeline_depth=include_pipeline_depth,
            name=name,
            components=_CachedComponents(cache, fingerprint),
            bit_width=bit_width,
        )
    except ValueError as error:
        cache.store_point(key, ("err", (type(error), error.args)))
        raise
    cache.store_point(key, ("ok", point))
    return _detached(point)


def _detached(point: DesignPoint) -> DesignPoint:
    """Copy of a cached point whose mutable latency mapping is private.

    Cached points (and the latency reports they embed) are shared across
    callers and processes-lifetime; handing each caller its own
    ``group_latency_ms`` dict means mutating a result can never corrupt
    later cache hits.  Everything else on the point is immutable or
    provenance-only.
    """
    latency = point.latency
    return replace(
        point,
        latency=replace(latency, group_latency_ms=dict(latency.group_latency_ms)),
    )


class _CachedComponents:
    """Component provider backed by an :class:`EvaluationCache`.

    Plugged into :func:`repro.core.design_point.evaluate_design` so the
    cached and uncached evaluators share one body — the only difference is
    where each sub-model result comes from.
    """

    def __init__(self, cache: EvaluationCache, fingerprint: str) -> None:
        self._cache = cache
        self._fingerprint = fingerprint

    def engine(self, config, device, calibration):
        """Memoised engine resource/performance model for ``config``."""
        return self._cache.engine(config, device, calibration)

    def latency(self, network, m, pes, frequency_mhz, r, pipeline_depth):
        """Memoised per-network latency report."""
        return self._cache.latency(
            self._fingerprint, network, m, pes, frequency_mhz, r, pipeline_depth
        )

    def spatial_multiplications(self, network):
        """Memoised spatial multiplication count of ``network``."""
        return self._cache.spatial_multiplications(self._fingerprint, network)

    def multiplication_complexity(self, network, m):
        """Memoised Winograd multiplication complexity for tile ``m``."""
        return self._cache.multiplication_complexity(self._fingerprint, network, m)

    def implementation_transform_complexity(self, network, m, parallel_pes):
        """Memoised implementation transform operation count."""
        return self._cache.implementation_transform_complexity(
            self._fingerprint, network, m, parallel_pes
        )

    def tile_error_stats(self, m, r, bit_width):
        """Memoised calibration-table entry for ``(m, r, bit_width)``."""
        return self._cache.tile_error_stats(m, r, bit_width)


# --------------------------------------------------------------------- #
# Grid evaluation (serial and chunked-parallel)
# --------------------------------------------------------------------- #
def _evaluate_entry(
    network: Network,
    device: FpgaDevice,
    calibration: Calibration,
    entry: GridEntry,
    skip_infeasible: bool,
    cache: CacheLike,
    fingerprint: Optional[str],
) -> Optional[DesignPoint]:
    """Evaluate one grid entry with the seed ``explore`` feasibility rules."""
    try:
        point = evaluate_design_cached(
            network,
            m=entry.m,
            r=entry.r,
            multiplier_budget=entry.multiplier_budget,
            frequency_mhz=entry.frequency_mhz,
            shared_data_transform=entry.shared_data_transform,
            device=device,
            calibration=calibration,
            cache=cache,
            fingerprint=fingerprint,
            bit_width=entry.bit_width,
        )
    except ValueError:
        if skip_infeasible:
            return None
        raise
    if skip_infeasible and not point.resources.fits(device):
        return None
    if (
        skip_infeasible
        and entry.error_budget is not None
        and point.max_rel_error > entry.error_budget
    ):
        return None
    return point


@dataclass(frozen=True)
class _Chunk:
    """One unit of parallel work: a slice of grid entries on one cell."""

    network: Network
    device: FpgaDevice
    calibration: Calibration
    entries: Tuple[GridEntry, ...]
    skip_infeasible: bool
    use_cache: bool


def _evaluate_chunk(chunk: _Chunk) -> Tuple[List[Optional[DesignPoint]], int, int]:
    """Worker entry point.

    Caches cannot cross process boundaries, so a worker uses its own
    process-wide cache when caching is enabled (warm-started by fork on
    platforms that fork) and the raw evaluator when it is disabled.
    Returns the evaluated slice plus the cache hits/misses it incurred, so
    the parent can aggregate per-run statistics.
    """
    cache = global_cache() if chunk.use_cache else False
    before = global_cache().total if chunk.use_cache else None
    fingerprint = network_fingerprint(chunk.network) if chunk.use_cache else None
    results = [
        _evaluate_entry(
            chunk.network,
            chunk.device,
            chunk.calibration,
            entry,
            chunk.skip_infeasible,
            cache,
            fingerprint,
        )
        for entry in chunk.entries
    ]
    if before is None:
        return results, 0, 0
    delta = global_cache().total.delta_since(before)
    return results, delta.hits, delta.misses


def _ensure_tuple(value, scalar_types: tuple) -> tuple:
    """Wrap a bare scalar (a name would otherwise iterate per character)
    into a one-element tuple; materialize any other iterable."""
    if isinstance(value, scalar_types):
        return (value,)
    return tuple(value)


def _normalize_specs(spec: SpecLike) -> Tuple[SweepSpec, ...]:
    specs = _ensure_tuple(spec, (SweepSpec,))
    if not specs or not all(isinstance(item, SweepSpec) for item in specs):
        raise TypeError("spec must be a SweepSpec or a non-empty sequence of SweepSpecs")
    return specs


def _normalize_networks(networks: Union[NetworkLike, Sequence[NetworkLike]]) -> List[Network]:
    resolved = [
        resolve_network(network) for network in _ensure_tuple(networks, (Network, str))
    ]
    if not resolved:
        raise ValueError("at least one network is required")
    return resolved


def _normalize_devices(
    devices: Union[DeviceLike, Sequence[DeviceLike], None]
) -> List[FpgaDevice]:
    if devices is None:
        return [virtex7_485t()]
    resolved = [
        resolve_device(device) for device in _ensure_tuple(devices, (FpgaDevice, str))
    ]
    if not resolved:
        raise ValueError("at least one device is required")
    return resolved


def iter_explore(
    networks: Union[NetworkLike, Sequence[NetworkLike]],
    spec: SpecLike = SweepSpec(),
    devices: Union[DeviceLike, Sequence[DeviceLike], None] = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
    skip_infeasible: bool = True,
    cache: CacheLike = None,
    executor: Optional[ExecutorConfig] = None,
    stats_out: Optional[CacheStats] = None,
) -> Iterator[DesignPoint]:
    """Stream design points for a networks x devices x sweeps cross-product.

    Points are yielded in deterministic order — network-major, then device,
    then sweep-spec, then the spec's canonical grid order — regardless of the
    execution mode, so serial and parallel runs are interchangeable.

    ``networks`` and ``devices`` accept registry names (see
    :func:`repro.nn.registry.get_network` / :func:`repro.hw.device.get_device`)
    as well as concrete objects.  ``cache=None`` uses the process-wide cache
    and ``cache=False`` disables memoisation, in every execution mode; a
    caller-supplied :class:`EvaluationCache` serves the serial path, while
    process-pool workers always memoise in their own per-process caches
    (objects cannot be shared across process boundaries — fork-based
    platforms warm-start workers from the parent's process-wide cache).

    ``stats_out``, when given, accumulates the cache hits/misses incurred by
    this call (including worker-side counters in process mode).  Attribution
    works by snapshotting the serving cache's counters around the run, so
    when several explorations share one cache *concurrently* (threads, or
    interleaved generators) the split between them is approximate.

    ``executor=None`` runs strictly serially — the safe library default.
    Pass ``ExecutorConfig(mode="vectorized")`` to evaluate each cell as
    stacked NumPy array operations (bit-identical results, an order of
    magnitude faster on Fig. 6-scale grids; no cache traffic, so
    ``stats_out`` stays untouched), or ``mode="process"`` for the chunked
    process pool; ``mode="auto"`` picks the vectorized engine for grids of
    ``min_grid_for_vectorized`` entries or more.  As with any
    ``ProcessPoolExecutor`` user, scripts that may select the pool on
    spawn-start platforms (Windows, macOS) must guard their entry point
    with ``if __name__ == "__main__":``.
    """
    nets = _normalize_networks(networks)
    devs = _normalize_devices(devices)
    specs = _normalize_specs(spec)
    executor = executor or ExecutorConfig(mode="serial")

    entries: List[GridEntry] = [
        entry for one_spec in specs for entry in one_spec.configurations()
    ]
    total = len(nets) * len(devs) * len(entries)
    if total == 0:
        return

    use_cache = cache is not False
    explicit_cache = isinstance(cache, EvaluationCache)
    shared_cache = (cache if explicit_cache else global_cache()) if use_cache else False

    # A caller-supplied cache is a request for evaluation *through* that
    # cache, which only the serial path honours — worker processes memoise
    # in their own per-process caches and the vectorized engine memoises
    # nothing — so auto mode prefers the serial path then.  Forcing
    # mode="process"/"vectorized" overrides (the explicit mode wins over
    # the cache preference), but the supplied cache then goes unused — warn
    # rather than silently ignore it.
    mode = executor.choose_mode(total, explicit_cache=explicit_cache)
    if mode != "serial" and explicit_cache:
        import warnings

        warnings.warn(
            f"iter_explore: the supplied EvaluationCache cannot serve the "
            f"{mode!r} executor (workers memoise in per-process caches, the "
            f"vectorized engine not at all); use mode='auto' or 'serial' to "
            f"evaluate through it",
            RuntimeWarning,
            stacklevel=2,
        )

    if mode == "vectorized":
        from .vectorized import evaluate_cell_batch

        for network in nets:
            for device in devs:
                batch = evaluate_cell_batch(
                    network, device, calibration, entries, skip_infeasible
                )
                yield from batch.feasible()
                if batch.pending_error is not None:
                    raise batch.pending_error
        return

    if mode == "serial":
        before = shared_cache.total if use_cache else CacheStats()
        try:
            for network in nets:
                fingerprint = network_fingerprint(network) if use_cache else None
                for device in devs:
                    for entry in entries:
                        point = _evaluate_entry(
                            network, device, calibration, entry, skip_infeasible,
                            shared_cache, fingerprint,
                        )
                        if point is not None:
                            yield point
        finally:
            if stats_out is not None and use_cache:
                delta = shared_cache.total.delta_since(before)
                stats_out.hits += delta.hits
                stats_out.misses += delta.misses
        return

    chunk_size = executor.resolved_chunk_size(len(entries))
    chunks = [
        _Chunk(
            network=network,
            device=device,
            calibration=calibration,
            entries=chunk,
            skip_infeasible=skip_infeasible,
            use_cache=use_cache,
        )
        for network in nets
        for device in devs
        for chunk in chunk_entries(entries, chunk_size)
    ]

    from collections import deque
    from concurrent.futures import ProcessPoolExecutor

    workers = executor.resolved_workers()
    with ProcessPoolExecutor(max_workers=workers) as pool:
        # Submit chunks with a bounded in-flight window rather than all at
        # once, so abandoning the iterator early cancels the un-started
        # tail instead of evaluating the whole grid.  FIFO consumption of
        # the window preserves the serial ordering.
        chunk_iter = iter(chunks)
        in_flight = deque()
        try:
            for _ in range(2 * workers):
                chunk = next(chunk_iter, None)
                if chunk is None:
                    break
                in_flight.append(pool.submit(_evaluate_chunk, chunk))
            while in_flight:
                results, hits, misses = in_flight.popleft().result()
                chunk = next(chunk_iter, None)
                if chunk is not None:
                    in_flight.append(pool.submit(_evaluate_chunk, chunk))
                if stats_out is not None:
                    stats_out.hits += hits
                    stats_out.misses += misses
                for point in results:
                    if point is not None:
                        yield point
        finally:
            for future in in_flight:
                future.cancel()


def explore_cached(
    network: Network,
    spec: SweepSpec = SweepSpec(),
    device: Optional[FpgaDevice] = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
    skip_infeasible: bool = True,
    cache: CacheLike = None,
    executor: Optional[ExecutorConfig] = None,
) -> List[DesignPoint]:
    """List-returning single-network sweep used by ``repro.core.explore``."""
    return list(
        iter_explore(
            network,
            spec,
            devices=device,
            calibration=calibration,
            skip_infeasible=skip_infeasible,
            cache=cache,
            executor=executor,
        )
    )

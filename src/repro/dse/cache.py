"""Memoised evaluation layer for the design-space campaign engine.

A design-space grid re-uses the same expensive sub-computations over and over:
the transform operator counts depend only on ``(m, r)``, the engine resource
model only on ``(m, r, P, shared, device, calibration)``, and the workload
complexity terms only on the network and ``(m, r, P)`` — yet the seed
``explore`` loop recomputed all of them for every budget x frequency
combination.  :class:`EvaluationCache` memoises each of those layers plus the
fully evaluated :class:`~repro.core.design_point.DesignPoint` itself, keyed on
``(network, device, calibration, m, r, budget, frequency, shared)``, so that
repeated sweeps and overlapping grids are near-free.

Networks are mutable and unhashable, so cache keys use
:func:`network_fingerprint` — a content hash over the network's name and
layer stack.  Mutating a network between sweeps therefore changes its key and
cannot serve stale results.

Every memoised value is produced by calling the *same* model functions with
the *same* arguments the uncached path uses, so cached and uncached
evaluations are bit-identical — a property the test suite locks down.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Optional, Tuple

from ..core.complexity import (
    implementation_transform_complexity,
    multiplication_complexity,
    spatial_multiplications,
)
from ..core.throughput import LatencyReport, network_latency
from ..hw.calibration import Calibration
from ..hw.device import FpgaDevice
from ..hw.engine import EngineConfig, EngineModel, build_engine
from ..nn.model import Network
from ..winograd.numerical import ErrorStats
from ..winograd.op_count import TransformOpCounts, count_transform_ops
from ..winograd.quantized import calibrated_error

__all__ = ["CacheStats", "EvaluationCache", "network_fingerprint", "global_cache"]


def network_fingerprint(network: Network) -> str:
    """Stable content hash of a network's evaluation-relevant structure.

    Covers the name (used for design-point provenance) and the full layer
    stack, so two structurally identical networks share cache entries while
    any layer edit produces a fresh key.
    """
    hasher = hashlib.sha256()
    hasher.update(network.name.encode())
    for layer in network.layers:
        hasher.update(b"|")
        hasher.update(repr(layer).encode())
    return hasher.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters for one cache layer (or the aggregate)."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        """Total probes: hits plus misses."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def __add__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(hits=self.hits + other.hits, misses=self.misses + other.misses)

    def delta_since(self, earlier: "CacheStats") -> "CacheStats":
        """Counters accumulated since an ``earlier`` snapshot of this cache."""
        return CacheStats(hits=self.hits - earlier.hits, misses=self.misses - earlier.misses)


class EvaluationCache:
    """Layered memo for design-point evaluation.

    The layers, coarsest to finest:

    * ``points`` — fully evaluated design points (or the ``ValueError`` an
      infeasible configuration raised, so repeated infeasible probes are
      also free);
    * ``engines`` — :func:`repro.hw.engine.build_engine` results, keyed
      independently of clock frequency (resources and pipeline depth do not
      depend on it; the config is re-attached per request);
    * ``latency`` — :func:`repro.core.throughput.network_latency` reports;
    * ``op_counts`` / ``complexity`` — transform operator counts per
      ``(m, r)`` and the Section III workload terms;
    * ``accuracy`` — the per-``(m, r, bit_width)`` numerical-error
      calibration table (:func:`repro.winograd.quantized.calibrated_error`).
    """

    DEFAULT_MAX_POINTS = 16384

    def __init__(self, max_points: int = DEFAULT_MAX_POINTS) -> None:
        #: Bound applied to every memo layer (FIFO eviction, 0 = unbounded).
        #: It matters most for the per-configuration layers (design points,
        #: latency reports) and the per-network complexity/engine layers,
        #: whose key spaces grow with each distinct grid entry or workload
        #: evaluated; the shared (m, r) op-count layer never gets near it.
        self.max_points = max_points
        self._evict_lock = threading.Lock()
        #: Serializes hit/miss counter updates.  Memo reads/writes are
        #: individually atomic under the GIL, but ``stats.hits += 1`` is a
        #: read-modify-write that loses updates under thread interleaving —
        #: and the result-serving HTTP server shares one cache across
        #: request threads, so the accounting must stay exact (lookups ==
        #: hits + misses) no matter how many threads probe concurrently.
        self._stats_lock = threading.Lock()
        self._op_counts: Dict[Tuple, TransformOpCounts] = {}
        self._engines: Dict[Tuple, EngineModel] = {}
        self._latency: Dict[Tuple, LatencyReport] = {}
        self._spatial: Dict[str, int] = {}
        self._mults: Dict[Tuple, float] = {}
        self._impl_transform: Dict[Tuple, float] = {}
        self._accuracy: Dict[Tuple, ErrorStats] = {}
        self._points: Dict[Tuple, Tuple[str, Any]] = {}
        self.stats: Dict[str, CacheStats] = {
            name: CacheStats()
            for name in (
                "points", "engines", "latency", "op_counts", "complexity", "accuracy",
            )
        }

    # ------------------------------------------------------------------ #
    def _memo(self, store: Dict, key: Tuple, stat: str, factory: Callable[[], Any]) -> Any:
        stats = self.stats[stat]
        try:
            value = store[key]
        except KeyError:
            with self._stats_lock:
                stats.misses += 1
            # The factory runs outside any lock so concurrent misses never
            # serialize on model evaluation; two threads racing the same
            # key each compute the (bit-identical) value and the last
            # store wins — both count as misses, keeping lookups ==
            # hits + misses exact.
            value = store[key] = factory()
            self._evict_over_bound(store)
            return value
        with self._stats_lock:
            stats.hits += 1
        return value

    # ------------------------------------------------------------------ #
    def op_counts(self, m: int, r: int, prefer_canonical: bool = True) -> TransformOpCounts:
        """Transform operator counts for ``F(m x m, r x r)``."""
        return self._memo(
            self._op_counts,
            (m, r, prefer_canonical),
            "op_counts",
            lambda: count_transform_ops(m, r, prefer_canonical),
        )

    def engine(
        self, config: EngineConfig, device: FpgaDevice, calibration: Calibration
    ) -> EngineModel:
        """Engine model for ``config``; frequency-agnostic under the hood."""
        key = (
            config.m,
            config.r,
            config.parallel_pes,
            config.shared_data_transform,
            config.precision,
            config.buffer_kbits,
            device,
            calibration,
        )
        counts = self.op_counts(config.m, config.r)
        engine = self._memo(
            self._engines,
            key,
            "engines",
            lambda: build_engine(config, device=device, calibration=calibration, op_counts=counts),
        )
        if engine.config != config or engine.device is not device:
            # Re-attach the requester's config and device: the cached engine
            # may have been built at a different clock frequency (resources
            # and pipeline depth are frequency-independent) or with an equal
            # but distinct device object (e.g. across process boundaries);
            # sharing the caller's objects keeps serialized design points
            # byte-identical to an uncached evaluation.
            engine = replace(engine, config=config, device=device)
        return engine

    def latency(
        self,
        fingerprint: str,
        network: Network,
        m: int,
        pes: float,
        frequency_mhz: float,
        r: int,
        pipeline_depth: int,
    ) -> LatencyReport:
        """Eq. (9) latency report for one configuration on one network."""
        key = (fingerprint, m, pes, frequency_mhz, r, pipeline_depth)
        report = self._memo(
            self._latency,
            key,
            "latency",
            lambda: network_latency(
                network,
                m=m,
                pes=pes,
                frequency_mhz=frequency_mhz,
                r=r,
                pipeline_depth=pipeline_depth,
            ),
        )
        return report

    def spatial_multiplications(self, fingerprint: str, network: Network) -> int:
        """Spatial-convolution multiplication count of the workload."""
        return self._memo(
            self._spatial,
            fingerprint,
            "complexity",
            lambda: spatial_multiplications(network),
        )

    def multiplication_complexity(self, fingerprint: str, network: Network, m: int) -> float:
        """Eq. (4) element-wise multiplication count for tile size ``m``."""
        return self._memo(
            self._mults,
            (fingerprint, m),
            "complexity",
            lambda: multiplication_complexity(network, m),
        )

    def implementation_transform_complexity(
        self, fingerprint: str, network: Network, m: int, parallel_pes: int
    ) -> float:
        """Eq. (7) implementation transform complexity.

        For uniform-kernel networks the per-``(m, r)`` operator counts are
        supplied from the cache, which skips the transform regeneration that
        dominates the uncached call; mixed-kernel networks fall back to the
        plain call (still memoised per ``(network, m, P)``).
        """
        uniform_r = network.uniform_kernel_size()

        def compute() -> float:
            """Cache-miss path: evaluate the transform complexity model."""
            if uniform_r is not None:
                return implementation_transform_complexity(
                    network, m, parallel_pes, op_counts=self.op_counts(m, uniform_r)
                )
            return implementation_transform_complexity(network, m, parallel_pes)

        return self._memo(
            self._impl_transform,
            (fingerprint, m, parallel_pes),
            "complexity",
            compute,
        )

    def tile_error_stats(self, m: int, r: int, bit_width: Optional[int]) -> ErrorStats:
        """Calibrated numerical error of the ``(m, r, bit_width)`` cell.

        Backed by the deterministic module-level calibration table, so
        concurrent misses (and separate caches) always observe
        bit-identical statistics.
        """
        return self._memo(
            self._accuracy,
            (m, r, bit_width),
            "accuracy",
            lambda: calibrated_error(m, r, bit_width),
        )

    # ------------------------------------------------------------------ #
    def lookup_point(self, key: Tuple) -> Optional[Tuple[str, Any]]:
        """Raw design-point lookup: ``("ok", point)``, ``("err", msg)`` or None."""
        entry = self._points.get(key)
        with self._stats_lock:
            if entry is None:
                self.stats["points"].misses += 1
            else:
                self.stats["points"].hits += 1
        return entry

    def store_point(self, key: Tuple, entry: Tuple[str, Any]) -> None:
        """Record a design-point outcome (``("ok", point)``/``("err", …)``)."""
        self._points[key] = entry
        self._evict_over_bound(self._points)

    def _evict_over_bound(self, store: Dict) -> None:
        """Best-effort FIFO eviction down to ``max_points`` entries.

        Concurrent explorers may share this cache (the process-global one in
        particular); eviction is serialized under a lock and tolerates keys
        vanishing or the dict changing shape underneath — worst case the
        bound is enforced on the next store, never an exception.
        """
        if not self.max_points or len(store) <= self.max_points:
            return
        with self._evict_lock:
            while len(store) > self.max_points:
                try:
                    del store[next(iter(store))]
                except (KeyError, StopIteration, RuntimeError):
                    break

    # ------------------------------------------------------------------ #
    @property
    def total(self) -> CacheStats:
        """Aggregate hit/miss counters across all layers."""
        total = CacheStats()
        for stats in self.stats.values():
            total = total + stats
        return total

    @property
    def entries(self) -> int:
        """Number of memoised values across all layers."""
        return (
            len(self._op_counts)
            + len(self._engines)
            + len(self._latency)
            + len(self._spatial)
            + len(self._mults)
            + len(self._impl_transform)
            + len(self._accuracy)
            + len(self._points)
        )

    def clear(self) -> None:
        """Drop every memoised value and reset the counters."""
        for store in (
            self._op_counts,
            self._engines,
            self._latency,
            self._spatial,
            self._mults,
            self._impl_transform,
            self._accuracy,
            self._points,
        ):
            store.clear()
        for stats in self.stats.values():
            stats.hits = 0
            stats.misses = 0

    def __repr__(self) -> str:
        total = self.total
        return (
            f"EvaluationCache(entries={self.entries}, hits={total.hits}, "
            f"misses={total.misses})"
        )


#: Process-wide cache shared by default across sweeps and campaigns.
_GLOBAL_CACHE = EvaluationCache()


def global_cache() -> EvaluationCache:
    """The process-wide :class:`EvaluationCache` used when none is supplied."""
    return _GLOBAL_CACHE

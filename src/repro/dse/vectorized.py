"""NumPy batch evaluation of whole design-space grid cells.

The paper's Fig. 6 sweep — tile size ``m`` x multiplier budget x clock
frequency — is embarrassingly data-parallel: within one ``(network,
device)`` cell every design shares the workload, the device and the
calibration, and designs with the same ``(m, r, shared_data_transform)``
share the entire engine structure (transform op counts, PE build, shared
stage, pipeline depth).  The scalar path nevertheless re-walks the
per-layer latency model and the power model once per grid entry in Python.

This module evaluates a whole cell at once instead:

1. entries are grouped by ``(m, r, shared_data_transform)``;
2. each group's engine skeleton is built (and memoised) once through
   :func:`repro.hw.engine.engine_cell_model`;
3. the per-design quantities — PE counts, resources, latency, throughput,
   power, efficiency and complexity metrics — are computed as stacked
   float64 array operations over the group's ``budget x frequency`` plane,
   using the ``batch_*`` twins that live next to each scalar model
   (:mod:`repro.core.throughput`, :mod:`repro.core.complexity`,
   :mod:`repro.hw.resources`, :mod:`repro.hw.power`);
4. the resulting :class:`BatchResult` table materializes back into the
   ordinary :class:`~repro.core.design_point.DesignPoint` list.

Because every batch operation is the elementwise IEEE-754 twin of the
scalar expression (same operations, same association order), the
materialized points are **bit-identical** to the serial path — same
floats, same ordering, same infeasibility skips and the same ``ValueError``
on the same entry when ``skip_infeasible=False``.  The property suite in
``tests/dse/test_vectorized.py`` and ``benchmarks/bench_vectorized.py``
both enforce this with pickled-bytes comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.complexity import (
    batch_implementation_transform_complexity,
    multiplication_complexity,
    spatial_multiplications,
)
from ..core.design_point import DesignPoint
from ..core.design_space import GridEntry
from ..core.throughput import LatencyReport, batch_network_latency
from ..hw.calibration import Calibration
from ..hw.device import FpgaDevice
from ..hw.engine import EngineCellModel, EngineConfig, EngineModel, engine_cell_model
from ..hw.power import PowerModel
from ..hw.resources import ResourceEstimate, batch_fits, batch_linear_resources
from ..nn.model import Network
from ..winograd.quantized import calibrated_error, validate_bit_width

__all__ = [
    "numpy_available",
    "BatchResult",
    "evaluate_cell_batch",
    "DOES_NOT_FIT",
    "EXCEEDS_ERROR_BUDGET",
]

#: Skip reason for designs that evaluate but exceed the device budget
#: (the scalar path has no message for this case — it silently drops the
#: point — so batch consumers share this one).
DOES_NOT_FIT = "design does not fit device {device!r}"

#: Skip reason for designs whose calibrated error exceeds the sweep's
#: ``error_budget`` — the accuracy twin of :data:`DOES_NOT_FIT`, shared
#: verbatim by the scalar request path and the vectorized engine.
EXCEEDS_ERROR_BUDGET = (
    "design max_rel_error {error:.6g} exceeds error budget {budget:.6g}"
)


def numpy_available() -> bool:
    """Whether the optional numpy dependency is importable.

    The vectorized executor is gated on this so environments without numpy
    degrade to the (identical-result) serial path instead of failing.
    """
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


@dataclass
class _Group:
    """Entries of one cell sharing ``(m, r, shared_data_transform)``."""

    m: int
    r: int
    shared: bool
    model: EngineCellModel
    indexes: List[int] = field(default_factory=list)
    pes: List[int] = field(default_factory=list)
    frequencies: List[float] = field(default_factory=list)
    budget_given: List[bool] = field(default_factory=list)
    bit_widths: List[Optional[int]] = field(default_factory=list)
    error_budgets: List[Optional[float]] = field(default_factory=list)


@dataclass
class BatchResult:
    """Evaluated cell: per-entry design points plus a deferred error.

    ``points`` is aligned with the input entries — ``None`` marks an entry
    skipped as infeasible.  ``pending_error`` carries the ``ValueError`` the
    scalar path would have raised mid-stream when ``skip_infeasible=False``:
    entries before the failing one are evaluated (so a streaming caller can
    yield them first, exactly like the serial generator), entries at and
    after it are left ``None``, and the caller re-raises after draining.

    ``errors`` (populated only when ``collect_errors=True``) is aligned
    with the entries too: the scalar path's ``ValueError`` message for
    each skipped entry, or the :data:`DOES_NOT_FIT` reason for designs
    that evaluate but exceed the device budget — what a serving layer
    reports back instead of a point, with no re-evaluation.
    """

    points: List[Optional[DesignPoint]]
    pending_error: Optional[ValueError] = None
    errors: Optional[List[Optional[str]]] = None

    def feasible(self) -> List[DesignPoint]:
        """The evaluated points in entry order, infeasible entries dropped."""
        return [point for point in self.points if point is not None]


def _entry_pes(
    entry: GridEntry, get_model, device: FpgaDevice
) -> Tuple[Optional[int], Optional[ValueError]]:
    """PE count for one entry, or the ValueError the scalar path raises.

    ``get_model`` lazily returns the entry's :class:`EngineCellModel` (or
    the ``ValueError`` its build raised).  Mirrors the scalar check order
    exactly: the ``bit_width`` domain check comes first (the first thing
    ``evaluate_design`` does), then an explicit multiplier budget (still
    before the engine config exists), then the ``EngineConfig`` field
    validations, then the engine build (transform generation), and only
    then the whole-device budget of Eq. (8).  Entries from a validated
    ``SweepSpec`` can only hit the budget checks, but hand-made entries
    fail identically to the scalar path too.
    """
    try:
        validate_bit_width(entry.bit_width)
    except ValueError as error:
        return None, error
    pes: Optional[int] = None
    if entry.multiplier_budget is not None:
        per_pe = (entry.m + entry.r - 1) ** 2
        pes = entry.multiplier_budget // per_pe
        if pes < 1:
            return None, ValueError(
                f"multiplier budget {entry.multiplier_budget} cannot host one "
                f"F({entry.m},{entry.r}) PE"
            )
    # EngineConfig.__post_init__ twins (NaN frequencies pass, as there).
    if entry.m < 1 or entry.r < 1:
        return None, ValueError("m and r must be >= 1")
    if entry.frequency_mhz <= 0:
        return None, ValueError("frequency must be positive")
    model_or_error = get_model()
    if isinstance(model_or_error, ValueError):
        return None, model_or_error
    if pes is not None:
        return pes, None
    pes = model_or_error.device_parallel_pes
    if pes < 1:
        return None, ValueError(
            f"device {device.name} cannot host a single F({entry.m}x{entry.m}, "
            f"{entry.r}x{entry.r}) PE"
        )
    return pes, None


def evaluate_cell_batch(
    network: Network,
    device: FpgaDevice,
    calibration: Calibration,
    entries: Sequence[GridEntry],
    skip_infeasible: bool = True,
    collect_errors: bool = False,
) -> BatchResult:
    """Evaluate every grid entry of one ``(network, device)`` cell at once.

    Entries may mix tile sizes, kernel sizes, budgets (including ``None``
    for "whole device"), frequencies and architecture variants in any
    order; results come back aligned with the input.  Bit-identical to
    evaluating each entry through
    :func:`repro.core.design_point.evaluate_design` with the same
    feasibility rules — see the module docstring for why.

    Entries are assumed to come from a validated
    :class:`~repro.core.design_space.SweepSpec` (positive finite
    frequencies, integral ``m``/``r``/budgets), which is what every caller
    in :mod:`repro.dse` guarantees.

    ``collect_errors=True`` additionally records *why* each skipped entry
    was skipped on ``BatchResult.errors`` (only meaningful with
    ``skip_infeasible=True``) — the request-batching service uses this to
    answer infeasible queries without a second evaluation.
    """
    import numpy as np

    entries = list(entries)
    results: List[Optional[DesignPoint]] = [None] * len(entries)
    errors: Optional[List[Optional[str]]] = [None] * len(entries) if collect_errors else None

    # ---- pass 1: resolve PE counts, engine skeletons and scalar errors --- #
    models: Dict[Tuple[int, int, bool], object] = {}
    groups: Dict[Tuple[int, int, bool], _Group] = {}
    pending_error: Optional[ValueError] = None
    for index, entry in enumerate(entries):
        key = (entry.m, entry.r, entry.shared_data_transform)

        def get_model(key=key, entry=entry):
            """The memoised engine cell model, or None when infeasible."""
            model = models.get(key)
            if model is None:
                try:
                    model = engine_cell_model(
                        entry.m, entry.r, entry.shared_data_transform, device, calibration
                    )
                except ValueError as error:
                    model = error
                models[key] = model
            return model

        pes, error = _entry_pes(entry, get_model, device)
        if error is None:
            # The scalar path measures the calibration-table entry inside
            # ``evaluate_design`` (after the engine build, before the fit
            # check); an unsupported quantized transform raises the same
            # ``ValueError`` here, in the same relative order.
            try:
                calibrated_error(entry.m, entry.r, entry.bit_width)
            except ValueError as stats_error:
                error = stats_error
        if error is not None:
            if skip_infeasible:
                if errors is not None:
                    errors[index] = str(error)
                continue
            pending_error = error
            break
        group = groups.get(key)
        if group is None:
            group = groups[key] = _Group(
                m=entry.m, r=entry.r, shared=entry.shared_data_transform, model=models[key]
            )
        group.indexes.append(index)
        group.pes.append(pes)
        group.frequencies.append(entry.frequency_mhz)
        group.budget_given.append(entry.multiplier_budget is not None)
        group.bit_widths.append(entry.bit_width)
        group.error_budgets.append(entry.error_budget)

    # ---- pass 2: stacked array evaluation per group ---------------------- #
    power_model = PowerModel(calibration.power)
    spatial_mults = float(spatial_multiplications(network))
    winograd_by_m: Dict[int, float] = {}
    for group in groups.values():
        model = group.model
        pes = np.asarray(group.pes, dtype=np.int64)
        frequencies = np.asarray(group.frequencies, dtype=np.float64)

        table = batch_network_latency(
            network,
            group.m,
            pes,
            frequencies,
            r=group.r,
            pipeline_depth=model.pipeline_depth,
        )
        resources = batch_linear_resources(model.base_resources, model.pe.resources, pes)
        keep = batch_fits(resources, device) if skip_infeasible else np.ones(len(pes), bool)
        if errors is not None:
            for j, index in enumerate(group.indexes):
                if not keep[j]:
                    errors[index] = DOES_NOT_FIT.format(device=device.name)
        if skip_infeasible:
            # Accuracy twin of the fit check, in the same scalar order:
            # a design that fits but misses its error budget is skipped.
            for j, index in enumerate(group.indexes):
                budget = group.error_budgets[j]
                if not keep[j] or budget is None:
                    continue
                stats = calibrated_error(group.m, group.r, group.bit_widths[j])
                if stats.max_rel > budget:
                    keep[j] = False
                    if errors is not None:
                        errors[index] = EXCEEDS_ERROR_BUDGET.format(
                            error=stats.max_rel, budget=budget
                        )
        if not keep.any():
            continue

        throughput = table.throughput_gops
        power_watts = power_model.batch_total_watts(resources, frequencies)
        total_multipliers = pes * model.pe.multipliers
        multiplier_eff = throughput / total_multipliers
        power_eff = throughput / power_watts
        winograd = winograd_by_m.get(group.m)
        if winograd is None:
            winograd = winograd_by_m[group.m] = multiplication_complexity(network, group.m)
        transform_ops = batch_implementation_transform_complexity(network, group.m, pes)

        # ---- materialize the table back into DesignPoints --------------- #
        group_names = list(table.group_latency_ms)
        group_columns = [column.tolist() for column in table.group_latency_ms.values()]
        totals = table.total_latency_ms.tolist()
        throughputs = throughput.tolist()
        powers = power_watts.tolist()
        multiplier_effs = multiplier_eff.tolist()
        power_effs = power_eff.tolist()
        transform_ops_list = transform_ops.tolist()
        luts = resources["luts"].tolist()
        registers = resources["registers"].tolist()
        dsps = resources["dsp_slices"].tolist()
        brams = resources["bram_kbits"].tolist()
        multipliers = resources["multipliers"].tolist()
        totals_mult = total_multipliers.tolist()

        m, r, shared = group.m, group.r, group.shared
        for j, index in enumerate(group.indexes):
            if not keep[j]:
                continue
            point_pes = group.pes[j]
            frequency = group.frequencies[j]
            bit_width = group.bit_widths[j]
            error_stats = calibrated_error(m, r, bit_width)
            latency = LatencyReport(
                m=m,
                r=r,
                parallel_pes=point_pes,
                frequency_mhz=frequency,
                pipeline_depth=model.pipeline_depth,
                group_latency_ms={
                    name: column[j] for name, column in zip(group_names, group_columns)
                },
                total_latency_ms=totals[j],
                spatial_ops=table.spatial_ops,
            )
            estimate = ResourceEstimate(
                luts=luts[j],
                registers=registers[j],
                dsp_slices=dsps[j],
                bram_kbits=brams[j],
                multipliers=multipliers[j],
            )
            config = EngineConfig(
                m=m,
                r=r,
                parallel_pes=point_pes if group.budget_given[j] else None,
                shared_data_transform=shared,
                frequency_mhz=frequency,
            )
            engine = EngineModel(
                config=config,
                device=device,
                pe=model.pe,
                parallel_pes=point_pes,
                shared_stage=model.shared_stage,
                resources=estimate,
                pipeline_depth=model.pipeline_depth,
                op_counts=model.op_counts,
            )
            point_name = f"F({m}x{m},{r}x{r})-P{point_pes}"
            if bit_width is not None:
                point_name = f"{point_name}-Q{bit_width}"
            results[index] = DesignPoint(
                name=point_name,
                m=m,
                r=r,
                parallel_pes=point_pes,
                multipliers=totals_mult[j],
                frequency_mhz=frequency,
                shared_data_transform=shared,
                device_name=device.name,
                precision=config.precision.name,
                latency=latency,
                throughput_gops=throughputs[j],
                multiplier_efficiency=multiplier_effs[j],
                resources=estimate,
                power_watts=powers[j],
                power_efficiency=power_effs[j],
                spatial_multiplications=spatial_mults,
                winograd_multiplications=winograd,
                implementation_transform_ops=transform_ops_list[j],
                engine=engine,
                workload_name=network.name,
                bit_width=bit_width,
                max_rel_error=error_stats.max_rel,
                mean_rel_error=error_stats.mean_rel,
            )

    return BatchResult(points=results, pending_error=pending_error, errors=errors)

"""Client-side lease records and their explicit state machine.

The server's :class:`~repro.service.jobs.LeaseLedger` is the authority on
who holds what; this module is the *worker's* view of one granted lease.
Every lease a :class:`~repro.worker.loop.WorkerLoop` holds moves through
an explicit, validated state machine — an illegal transition is a bug in
the loop, and raising :class:`InvalidLeaseTransition` immediately beats
silently double-completing a shard or abandoning one that looked done.

States::

    acquired ──> running ──> completing ──> completed
        │            │            │
        │            └──> failed  └────────────> lost
        └──> released            (any non-terminal ──> lost)

``lost`` is the server telling us the lease expired or was revoked (the
job was cancelled, or we heartbeated too late): the shard belongs to
someone else now and the local result, if any, is discarded.
``released`` is the worker handing an un-started shard back during
shutdown.  ``failed`` is a real execution error, reported to the server
so the job fails the same way a local-pool failure would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "LEASE_STATES",
    "TERMINAL_LEASE_STATES",
    "VALID_TRANSITIONS",
    "InvalidLeaseTransition",
    "WorkerLease",
]

#: Every state a worker-held lease can be in.
LEASE_STATES = (
    "acquired",
    "running",
    "completing",
    "completed",
    "failed",
    "released",
    "lost",
)

#: States with no outgoing transitions.
TERMINAL_LEASE_STATES = ("completed", "failed", "released", "lost")

#: The legal state machine: ``state -> states reachable from it``.
#: ``lost`` is reachable from every non-terminal state because the server
#: can expire or revoke a lease at any protocol call.
VALID_TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    "acquired": ("running", "released", "lost"),
    "running": ("completing", "failed", "lost"),
    "completing": ("completed", "lost"),
    "completed": (),
    "failed": (),
    "released": (),
    "lost": (),
}


class InvalidLeaseTransition(RuntimeError):
    """An illegal lease state transition (a worker-loop bug, not bad luck)."""

    def __init__(self, lease_id: str, current: str, target: str) -> None:
        allowed = VALID_TRANSITIONS.get(current, ())
        super().__init__(
            f"lease {lease_id}: cannot move {current!r} -> {target!r}; "
            f"allowed from {current!r}: {sorted(allowed)}"
        )
        self.lease_id = lease_id
        self.current = current
        self.target = target


@dataclass
class WorkerLease:
    """One lease this worker holds, as granted by ``POST /v1/leases``.

    Carries everything needed to execute the shard (``spec_payload``, the
    complete shard spec in ``to_dict`` form) and to keep the lease alive
    (``ttl_s`` drives the heartbeat cadence).
    """

    id: str
    job_id: str
    shard_index: int
    fingerprint: str
    entries: int
    spec_payload: Dict[str, Any]
    ttl_s: float
    deadline: float
    state: str = "acquired"
    #: The submitting request's trace id, carried through the lease grant
    #: so worker log lines correlate with the server's for the same job.
    trace_id: Optional[str] = None
    #: Execution error message once the lease is ``failed``.
    error: Optional[str] = None
    #: Shard execution wall-clock seconds, reported with the completion.
    seconds: Optional[float] = None
    #: Next wall-clock instant the heartbeat loop should beat this lease.
    next_beat: float = field(default=0.0, repr=False)

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "WorkerLease":
        """Build a lease from one entry of the acquire response's ``leases``."""
        shard = payload["shard"]
        return cls(
            id=payload["id"],
            job_id=payload["job_id"],
            shard_index=shard["index"],
            fingerprint=shard["fingerprint"],
            entries=shard["entries"],
            spec_payload=shard["spec"],
            ttl_s=float(payload["ttl_s"]),
            deadline=float(payload["deadline"]),
            trace_id=payload.get("trace_id"),
        )

    @property
    def terminal(self) -> bool:
        """Whether the lease reached a state with no outgoing transitions."""
        return self.state in TERMINAL_LEASE_STATES

    def advance(self, target: str) -> None:
        """Move to ``target``; raises :class:`InvalidLeaseTransition` if illegal."""
        if target not in LEASE_STATES:
            raise InvalidLeaseTransition(self.id, self.state, target)
        if target not in VALID_TRANSITIONS[self.state]:
            raise InvalidLeaseTransition(self.id, self.state, target)
        self.state = target

"""The worker control loop: acquire, execute, heartbeat, complete.

One :class:`WorkerLoop` is one fleet worker process.  Control is
single-threaded — acquire polls, heartbeats, completion pushes and
shutdown all happen on the main thread, so there is exactly one writer of
lease state and the :class:`~repro.worker.leases.WorkerLease` state
machine is enforced without locks.  Shard execution (the CPU work) runs
on a ``ThreadPoolExecutor`` of ``concurrency`` threads, each thread
evaluating a shard through :func:`repro.service.jobs.execute_shard` —
the identical entry point the server's local pool uses, which is what
keeps fleet results bit-identical to single-host runs.

The loop is deliberately pull-based and stateless across restarts: a
worker that crashes simply stops heartbeating, its leases expire
server-side and the shards re-queue.  Restarting it needs no recovery
protocol — it just starts acquiring again.
"""

from __future__ import annotations

import http.client
import os
import random
import signal
import socket
import time
from concurrent.futures import Future, ThreadPoolExecutor
from threading import Event
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from ..obs.logging import get_logger
from ..obs.tracing import set_trace_id
from ..service.client import ServiceClient, ServiceError
from ..service.jobs import execute_shard
from .leases import WorkerLease

__all__ = ["WorkerLoop", "run_worker", "parse_server_url"]

#: Transport-level exceptions treated as "the server is unreachable right
#: now" (retried with backoff) rather than protocol answers.
_CONNECTION_ERRORS = (OSError, http.client.HTTPException)

#: Environment variable enabling chaos hooks in tests and drills — never
#: set it in production.  Value ``exit-after-acquire`` makes the worker
#: ``os._exit(17)`` immediately after its first successful acquire,
#: simulating a machine dying mid-shard with leases held (the server must
#: recover the shards via lease expiry).
CHAOS_ENV = "REPRO_WORKER_CHAOS"


def parse_server_url(url: str) -> Tuple[str, int]:
    """``(host, port)`` from a ``--server`` URL (scheme optional, http only)."""
    if "://" not in url:
        url = f"http://{url}"
    split = urlsplit(url)
    if split.scheme != "http":
        raise ValueError(f"--server must be an http:// URL, got {url!r}")
    return split.hostname or "127.0.0.1", split.port or 8787


class WorkerLoop:
    """Acquire/execute/heartbeat/complete loop for one fleet worker.

    ``concurrency`` shards execute at once; the loop only acquires as
    many leases as it has free execution slots, so a worker never hoards
    shards it cannot start (hoarded shards would just expire and bounce).
    ``heartbeat_s`` overrides the cadence (default: a third of the lease
    TTL the server grants); ``max_shards`` stops the worker after that
    many leases, which is what the smoke tests use for bounded runs.

    :meth:`request_stop` (wired to ``SIGTERM``/``SIGINT`` by
    :func:`run_worker`) is graceful: stop acquiring, finish and complete
    the in-flight shards, then return.  Call :meth:`run` to block until
    the loop exits; it returns the worker's counter dict.
    """

    def __init__(
        self,
        client: ServiceClient,
        worker_id: Optional[str] = None,
        concurrency: int = 1,
        ttl_s: Optional[float] = None,
        heartbeat_s: Optional[float] = None,
        poll_s: float = 0.5,
        max_shards: Optional[int] = None,
        quiet: bool = False,
    ) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if poll_s <= 0:
            raise ValueError("poll_s must be > 0")
        if max_shards is not None and max_shards < 1:
            raise ValueError("max_shards must be >= 1")
        self.client = client
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.concurrency = concurrency
        self.ttl_s = ttl_s
        self.heartbeat_s = heartbeat_s
        self.poll_s = poll_s
        self.max_shards = max_shards
        self.quiet = quiet
        self.counters: Dict[str, int] = {
            "acquired": 0,
            "completed": 0,
            "duplicates": 0,
            "failed": 0,
            "lost": 0,
            "released": 0,
            "heartbeats": 0,
            "connection_errors": 0,
        }
        self._stop = Event()
        self._inflight: List[Tuple[WorkerLease, Future]] = []
        #: Structured JSON log lines (stderr).  Deliberately *not* gated
        #: on ``quiet``: ``-q`` silences the human progress lines, while
        #: the machine-readable stream stays available for log shippers
        #: and the trace-propagation tests.
        self.obs = get_logger("worker")

    # ------------------------------------------------------------------ #
    def request_stop(self) -> None:
        """Begin a graceful shutdown (signal-handler safe: just sets a flag)."""
        self._stop.set()

    @property
    def stopping(self) -> bool:
        """Whether a graceful shutdown has been requested."""
        return self._stop.is_set()

    def _say(self, message: str) -> None:
        if not self.quiet:
            print(f"[worker {self.worker_id}] {message}", flush=True)

    # ------------------------------------------------------------------ #
    def run(self) -> Dict[str, int]:
        """Block until stopped (or ``max_shards`` served); returns counters."""
        self._say(
            f"attached to http://{self.client.host}:{self.client.port} "
            f"(concurrency {self.concurrency})"
        )
        executor = ThreadPoolExecutor(
            max_workers=self.concurrency, thread_name_prefix="repro-worker"
        )
        acquire_failures = 0
        try:
            while True:
                self._reap_finished()
                self._heartbeat_due()
                if self._stop.is_set() and not self._inflight:
                    break
                budget_left = self.max_shards is None or (
                    self.counters["acquired"] < self.max_shards
                )
                if self.max_shards is not None and not budget_left and not self._inflight:
                    break
                free = self.concurrency - len(self._inflight)
                if free > 0 and budget_left and not self._stop.is_set():
                    if self.max_shards is not None:
                        free = min(free, self.max_shards - self.counters["acquired"])
                    try:
                        response = self.client.acquire_leases(
                            self.worker_id, count=free, ttl_s=self.ttl_s
                        )
                        acquire_failures = 0
                    except _CONNECTION_ERRORS:
                        self.counters["connection_errors"] += 1
                        acquire_failures += 1
                        self._backoff(acquire_failures)
                        continue
                    leases = response.get("leases", [])
                    if leases:
                        self._chaos("exit-after-acquire")
                        for payload in leases:
                            self._start_shard(executor, WorkerLease.from_payload(payload))
                    elif not self._inflight:
                        # Nothing claimable and nothing running: idle-poll
                        # at the server's suggested cadence.
                        self._stop.wait(
                            float(response.get("retry_after_s") or 0.0) or self.poll_s
                        )
                        continue
                # Short tick while shards are in flight so completions and
                # heartbeats stay timely without busy-spinning.
                if self._inflight:
                    self._stop.wait(0.05)
        finally:
            self._drain(executor)
            executor.shutdown(wait=True)
        self._say(
            "exiting: "
            + ", ".join(f"{name}={value}" for name, value in sorted(self.counters.items()))
        )
        return dict(self.counters)

    # ------------------------------------------------------------------ #
    def _chaos(self, hook: str) -> None:
        """Die abruptly when the named chaos hook is armed (tests only)."""
        if os.environ.get(CHAOS_ENV) == hook:
            # A hard exit, not an exception: the point is to vanish with
            # leases held, exactly like a powered-off machine.
            os._exit(17)

    def _start_shard(self, executor: ThreadPoolExecutor, lease: WorkerLease) -> None:
        """Begin executing a freshly acquired lease on the shard pool."""
        self.counters["acquired"] += 1
        interval = self.heartbeat_s or max(0.05, lease.ttl_s / 3.0)
        lease.next_beat = time.time() + interval
        lease.advance("running")
        self._say(
            f"lease {lease.id}: shard {lease.shard_index} of {lease.job_id} "
            f"({lease.entries} entries)"
        )
        self.obs.event(
            "lease.acquired",
            trace_id=lease.trace_id,
            lease_id=lease.id,
            job_id=lease.job_id,
            shard_index=lease.shard_index,
            entries=lease.entries,
            worker=self.worker_id,
        )
        future = executor.submit(self._execute, lease)
        self._inflight.append((lease, future))

    @staticmethod
    def _execute(lease: WorkerLease) -> Dict[str, Any]:
        """Shard-pool thread body: evaluate the lease's spec payload.

        The lease's trace id is bound to this thread's context for the
        duration, so anything the evaluation stack logs carries it.
        """
        token = set_trace_id(lease.trace_id)
        started = time.perf_counter()
        try:
            payload = execute_shard(lease.spec_payload)
        finally:
            lease.seconds = time.perf_counter() - started
            token.var.reset(token)
        return payload

    def _reap_finished(self) -> None:
        """Complete (or fail) every in-flight shard whose future finished."""
        still: List[Tuple[WorkerLease, Future]] = []
        for lease, future in self._inflight:
            if not future.done():
                still.append((lease, future))
                continue
            if lease.state == "lost":
                # The server told a heartbeat the lease is gone; the
                # computed result (if any) belongs to nobody.
                self.counters["lost"] += 1
            elif future.exception() is not None:
                error = future.exception()
                lease.error = f"{type(error).__name__}: {error}"
                lease.advance("failed")
                self.counters["failed"] += 1
                self._report_failure(lease)
            else:
                self._complete(lease, future.result())
        self._inflight = still

    def _complete(self, lease: WorkerLease, payload: Dict[str, Any]) -> None:
        """Push one finished shard's payload; settle the lease state.

        The completion request runs under the lease's trace id, so the
        server's access log shows the same id the submitter minted.
        """
        lease.advance("completing")
        token = set_trace_id(lease.trace_id) if lease.trace_id else None
        try:
            response = self._with_retries(
                lambda: self.client.complete_lease(lease.id, payload, lease.seconds)
            )
        except ServiceError as error:
            # The server answered and said no (e.g. payload rejected as
            # not this shard's result) — retrying the same bytes is
            # pointless; the lease re-queues server-side.
            lease.error = error.message
            lease.advance("lost")
            self.counters["lost"] += 1
            self._say(f"lease {lease.id}: completion rejected ({error.message})")
            return
        except _CONNECTION_ERRORS:
            # Server unreachable past the retry budget: the lease will
            # expire and the shard re-queues — correct, just wasteful.
            lease.advance("lost")
            self.counters["lost"] += 1
            self.counters["connection_errors"] += 1
            self._say(f"lease {lease.id}: server unreachable, abandoning completion")
            return
        finally:
            if token is not None:
                token.var.reset(token)
        if response.get("accepted"):
            lease.advance("completed")
            self.counters["completed"] += 1
            if response.get("duplicate"):
                self.counters["duplicates"] += 1
            self._say(
                f"lease {lease.id}: completed shard {lease.shard_index} "
                f"in {lease.seconds:.3f}s -> {response.get('key')}"
            )
            self.obs.event(
                "shard.completed",
                trace_id=lease.trace_id,
                lease_id=lease.id,
                job_id=lease.job_id,
                shard_index=lease.shard_index,
                seconds=round(lease.seconds or 0.0, 6),
                key=response.get("key"),
                duplicate=bool(response.get("duplicate")),
                worker=self.worker_id,
            )
        else:
            lease.advance("lost")
            self.counters["lost"] += 1
            self._say(
                f"lease {lease.id}: completion not accepted "
                f"({response.get('reason')}); shard re-assigned"
            )

    def _report_failure(self, lease: WorkerLease) -> None:
        """Tell the server a shard's execution raised (job fails like local)."""
        try:
            self._with_retries(
                lambda: self.client.fail_lease(lease.id, lease.error or "worker error")
            )
        except (ServiceError, *_CONNECTION_ERRORS):
            pass  # the lease will expire; the error is already counted
        self._say(f"lease {lease.id}: shard failed ({lease.error})")
        self.obs.event(
            "shard.failed",
            trace_id=lease.trace_id,
            lease_id=lease.id,
            job_id=lease.job_id,
            shard_index=lease.shard_index,
            error=lease.error,
            worker=self.worker_id,
        )

    def _heartbeat_due(self) -> None:
        """Beat every in-flight lease whose heartbeat interval elapsed."""
        now = time.time()
        for lease, _future in self._inflight:
            if lease.terminal or lease.state == "lost" or now < lease.next_beat:
                continue
            interval = self.heartbeat_s or max(0.05, lease.ttl_s / 3.0)
            lease.next_beat = now + interval
            try:
                answer = self.client.heartbeat_lease(lease.id)
            except _CONNECTION_ERRORS:
                self.counters["connection_errors"] += 1
                continue  # transient; the TTL still has 2/3 headroom
            self.counters["heartbeats"] += 1
            if not answer.get("alive"):
                # Expired or revoked: mark it so the reaper discards the
                # result instead of pushing a doomed completion.
                lease.advance("lost")
                self._say(
                    f"lease {lease.id}: lost ({answer.get('reason')}); "
                    "discarding in-flight shard"
                )
                self.obs.event(
                    "lease.lost",
                    trace_id=lease.trace_id,
                    lease_id=lease.id,
                    job_id=lease.job_id,
                    shard_index=lease.shard_index,
                    reason=answer.get("reason"),
                    worker=self.worker_id,
                )

    def _drain(self, executor: ThreadPoolExecutor) -> None:
        """Finish the in-flight shards during shutdown and settle them."""
        while self._inflight:
            self._heartbeat_due()
            self._reap_finished()
            if self._inflight:
                time.sleep(0.05)

    # ------------------------------------------------------------------ #
    def _backoff(self, failures: int) -> None:
        """Sleep out a connection failure (exponential, jittered, stoppable)."""
        delay = min(5.0, 0.2 * (2 ** min(failures, 5)))
        self._stop.wait(delay * (0.5 + random.random() * 0.5))

    def _with_retries(self, call: Callable[[], Dict[str, Any]], attempts: int = 4):
        """Run a protocol call, retrying connection-level errors only.

        Safe for the calls the loop retries — heartbeat, complete and fail
        are idempotent server-side (duplicates get the recorded outcome) —
        unlike acquire, which is never retried blindly.
        """
        for attempt in range(attempts):
            try:
                return call()
            except _CONNECTION_ERRORS:
                if attempt + 1 >= attempts:
                    raise
                delay = min(2.0, 0.1 * (2**attempt))
                time.sleep(delay * (0.5 + random.random() * 0.5))
        raise AssertionError("unreachable")  # pragma: no cover


def run_worker(
    server: str,
    worker_id: Optional[str] = None,
    concurrency: int = 1,
    ttl_s: Optional[float] = None,
    heartbeat_s: Optional[float] = None,
    poll_s: float = 0.5,
    max_shards: Optional[int] = None,
    quiet: bool = False,
) -> int:
    """Blocking entry point behind ``python -m repro worker``.

    Installs ``SIGTERM``/``SIGINT`` handlers that request a graceful stop
    — in-flight shards finish and complete before the process exits 0 —
    then runs a :class:`WorkerLoop` against ``server`` (an ``http://``
    URL; a bare ``host:port`` is accepted).
    """
    host, port = parse_server_url(server)
    loop = WorkerLoop(
        ServiceClient(host=host, port=port, timeout=60.0, retries=3),
        worker_id=worker_id,
        concurrency=concurrency,
        ttl_s=ttl_s,
        heartbeat_s=heartbeat_s,
        poll_s=poll_s,
        max_shards=max_shards,
        quiet=quiet,
    )

    def _on_signal(_signum, _frame) -> None:
        loop.request_stop()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _on_signal)
        except ValueError:  # pragma: no cover — non-main thread (embedding)
            pass
    try:
        loop.run()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    return 0

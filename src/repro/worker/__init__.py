"""Pull-based worker fleet for campaign-job shards.

``python -m repro worker --server http://HOST:PORT`` attaches a worker
process to a running ``repro.service`` server (any number of them, on any
number of hosts).  Workers **pull**: they acquire leases on pending job
shards (``POST /v1/leases``), execute each shard through the very same
:func:`repro.service.jobs.execute_shard` entry point the server's local
pool uses, and push the result payload back
(``POST /v1/leases/<id>/complete``), where it lands in the result store
and unblocks the job.  Because a shard is a self-contained deterministic
:class:`~repro.experiments.ExperimentSpec`, the assembled campaign is
bit-identical to a single-host run for any fleet size.

Fault tolerance is lease-based: a worker heartbeats every lease it holds;
if it dies (or partitions), the lease expires server-side and the shard
re-queues for the next claimant — no job is ever stranded by a lost
worker, and a late completion from a zombie is rejected.  ``SIGTERM`` and
``SIGINT`` shut a worker down gracefully: it stops acquiring, finishes
and completes its in-flight shards, then exits 0.

* :mod:`repro.worker.leases` — :class:`WorkerLease`, the client-side
  lease record with an explicit state machine
  (``acquired -> running -> completing -> completed``, with ``lost`` /
  ``failed`` / ``released`` exits);
* :mod:`repro.worker.loop` — :class:`WorkerLoop` / :func:`run_worker`,
  the acquire/execute/heartbeat/complete control loop behind the CLI.
"""

from .leases import InvalidLeaseTransition, WorkerLease
from .loop import WorkerLoop, run_worker

__all__ = ["WorkerLease", "InvalidLeaseTransition", "WorkerLoop", "run_worker"]

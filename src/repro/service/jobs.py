"""Sharded, asynchronous campaign job scheduler.

PR 4's ``POST /v1/campaign`` executed every submitted experiment on one
worker thread: a Fig. 6-scale campaign parked every other campaign (and
every ``evaluate`` behind the shared worker) until it finished.  This
module turns a submitted :class:`~repro.experiments.ExperimentSpec` into a
**job** — a set of independent *shards* scheduled onto a pool of workers —
so many campaigns make progress concurrently and a single big one no
longer monopolises the service.

How a spec becomes shards
-------------------------
:func:`plan_shards` splits a grid-strategy spec per ``(network, device)``
cell and, for large grids, into contiguous chunks of at most
``max_entries_per_shard`` grid entries per cell (the same contiguous
chunking rule :func:`repro.dse.engine.chunk_entries` gives the process
executor).  Each shard is itself a complete, re-runnable
:class:`~repro.experiments.ExperimentSpec` — one network, one device, the
chunk's entries encoded as singleton sweeps — so a shard has everything a
stored result needs: a spec, a deterministic
:meth:`~repro.experiments.ExperimentSpec.fingerprint` and the exact
canonical evaluation order.  Non-grid strategies (random, pareto-refine,
custom) are adaptive and cannot be split without changing their search, so
they run as a single whole-spec shard.

Execution and reassembly
------------------------
Shards execute on a ``ProcessPoolExecutor`` (``workers >= 2``) or a
single background thread (``workers == 1``), evaluating through the
vectorized engine (:mod:`repro.dse.vectorized`, with the usual serial
fallback when numpy is missing).  Each completed shard's serialized
payload is streamed into the :class:`~repro.service.store.ResultStore`
immediately, so a partially finished campaign is already queryable — and
**resumable**: resubmitting a spec skips every shard whose fingerprint the
store already holds (and completes instantly when the assembled result
itself is stored).  When every shard lands, the payloads are concatenated
in plan order — shard order is exactly the serial iteration order, so the
assembled result is **bit-identical** (pickled bytes, same ordering) to a
single-thread ``run_experiment`` of the original spec — and stored under
the spec's fingerprint.

The scheduler is asyncio-native: :meth:`JobManager.submit` returns
immediately with a :class:`Job` whose state, per-shard progress and ETA
the HTTP layer reports; pending shards queue in the pool when all workers
are busy (never rejected) and ``DELETE``-ing a job cancels its un-started
shards while keeping the store consistent.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.design_space import GridEntry, SweepSpec
from ..dse.engine import ExecutorConfig, chunk_entries
from ..experiments.persistence import RESULT_SCHEMA, result_to_dict
from ..experiments.spec import ExperimentSpec, StrategySpec
from .store import ResultStore

__all__ = [
    "DEFAULT_SHARD_ENTRIES",
    "ShardPlan",
    "ShardRun",
    "Job",
    "JobManager",
    "plan_shards",
]

#: Grid entries per shard before a (network, device) cell is split further.
#: Part of the shard identity: changing it changes shard fingerprints, so
#: resumption only reuses shards planned with the same value (the assembled
#: campaign result still deduplicates regardless).
DEFAULT_SHARD_ENTRIES = 512

#: Terminal job states (no further transitions once reached).
TERMINAL_STATES = ("completed", "failed", "cancelled")

#: Terminal jobs retained for status queries before the oldest are
#: evicted (a serve-forever process must not accumulate Job objects).
MAX_TERMINAL_JOBS = 256


def _entry_sweep(entry: GridEntry) -> SweepSpec:
    """The singleton :class:`SweepSpec` expanding to exactly ``entry``."""
    return SweepSpec(
        m_values=(entry.m,),
        multiplier_budgets=(entry.multiplier_budget,),
        frequencies_mhz=(entry.frequency_mhz,),
        shared_data_transform=(entry.shared_data_transform,),
        r=entry.r,
    )


@dataclass(frozen=True)
class ShardPlan:
    """One schedulable unit of a job: a spec slice plus its identity.

    ``spec`` is a complete, independently re-runnable experiment spec whose
    evaluation order matches the parent spec's serial order over this
    shard's slice; ``fingerprint`` is ``spec.fingerprint()``, the key the
    result store indexes the shard's result under (what makes resumption a
    pure store lookup).
    """

    index: int
    networks: Tuple[str, ...]
    devices: Tuple[str, ...]
    entries: int
    spec: ExperimentSpec
    fingerprint: str


def plan_shards(
    spec: ExperimentSpec, max_entries_per_shard: int = DEFAULT_SHARD_ENTRIES
) -> List[ShardPlan]:
    """Split ``spec`` into deterministic, independently executable shards.

    Grid-strategy specs shard per ``(network, device)`` cell, each cell
    chunked into contiguous runs of at most ``max_entries_per_shard`` grid
    entries (in the spec's canonical order); concatenating shard results in
    plan order therefore reproduces the serial result ordering exactly.
    Non-grid strategies are adaptive, so they return a single whole-spec
    shard.

    The plan depends only on the spec and ``max_entries_per_shard`` — never
    on worker count — so shard fingerprints are stable across resubmissions
    and server restarts, which is what makes crash resumption a store
    lookup.
    """
    if max_entries_per_shard < 1:
        raise ValueError("max_entries_per_shard must be >= 1")
    if spec.strategy.name != "grid":
        return [
            ShardPlan(
                index=0,
                networks=tuple(spec.networks),
                devices=tuple(spec.devices),
                entries=spec.grid_size,
                spec=spec,
                fingerprint=spec.fingerprint(),
            )
        ]
    entries = [entry for sweep in spec.sweeps for entry in sweep.configurations()]
    chunks = chunk_entries(entries, max_entries_per_shard)
    shards: List[ShardPlan] = []
    for network in spec.networks:
        for device in spec.devices:
            for chunk_index, chunk in enumerate(chunks):
                shard_spec = replace(
                    spec,
                    networks=(network,),
                    devices=(device,),
                    sweeps=tuple(_entry_sweep(entry) for entry in chunk),
                    strategy=StrategySpec("grid"),
                    executor=None,
                    name=f"{spec.name}::shard/{network}@{device}/{chunk_index:04d}",
                )
                shards.append(
                    ShardPlan(
                        index=len(shards),
                        networks=(network,),
                        devices=(device,),
                        entries=len(chunk),
                        spec=shard_spec,
                        fingerprint=shard_spec.fingerprint(),
                    )
                )
    return shards


def _execute_shard(spec_payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: evaluate one shard spec, return its payload.

    Runs in a pool worker (process or thread).  Takes and returns plain
    dicts — the spec's ``to_dict`` form in, the result's versioned
    persistence payload out — so the boundary is cheap to pickle and
    start-method agnostic.  Grid shards evaluate through the vectorized
    engine (serial fallback without numpy), which is bit-identical to the
    scalar path; non-grid shards run the spec exactly as the single-thread
    campaign endpoint used to.
    """
    from ..dse.vectorized import numpy_available
    from ..experiments.runner import run_experiment

    spec = ExperimentSpec.from_dict(spec_payload)
    if spec.strategy.name == "grid":
        executor = ExecutorConfig(mode="vectorized" if numpy_available() else "serial")
        result = run_experiment(spec, executor=executor)
    else:
        result = run_experiment(spec)
    return result_to_dict(result)


@dataclass
class ShardRun:
    """Runtime state of one shard within a job."""

    plan: ShardPlan
    #: ``pending`` | ``running`` | ``completed`` | ``skipped`` | ``failed``
    #: | ``cancelled``
    state: str = "pending"
    seconds: Optional[float] = None
    error: Optional[str] = None
    key: Optional[str] = None
    payload: Optional[Dict[str, Any]] = field(default=None, repr=False)

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready per-shard progress row for the job-status endpoint."""
        return {
            "index": self.plan.index,
            "networks": list(self.plan.networks),
            "devices": list(self.plan.devices),
            "entries": self.plan.entries,
            "fingerprint": self.plan.fingerprint,
            "state": self.state,
            "seconds": None if self.seconds is None else round(self.seconds, 6),
            "error": self.error,
            "key": self.key,
        }


class Job:
    """One submitted campaign: its shards, lifecycle state and receipt.

    States move ``queued -> running -> completed | failed | cancelled``.
    ``key`` holds the stored assembled result's content key once the job
    completes; ``error`` carries the first shard failure message when it
    fails.  ``await job.wait()`` blocks until a terminal state.
    """

    def __init__(self, job_id: str, spec: ExperimentSpec, shards: Sequence[ShardPlan]) -> None:
        self.id = job_id
        self.spec = spec
        self.fingerprint = spec.fingerprint()
        self.shards = [ShardRun(plan) for plan in shards]
        self.state = "queued"
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.key: Optional[str] = None
        self.error: Optional[str] = None
        self._done = asyncio.Event()
        self._cancelled = False
        self._tasks: List["asyncio.Task"] = []
        self._runner: Optional["asyncio.Task"] = None

    # ------------------------------------------------------------------ #
    @property
    def done(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.state in TERMINAL_STATES

    def shard_counts(self) -> Dict[str, int]:
        """Shard tally by state (every state key present, zero or not)."""
        counts = {
            state: 0
            for state in ("pending", "running", "completed", "skipped", "failed", "cancelled")
        }
        for shard in self.shards:
            counts[shard.state] += 1
        counts["total"] = len(self.shards)
        return counts

    def progress(self) -> float:
        """Fraction of grid entries whose shard already finished (0..1)."""
        total = sum(shard.plan.entries for shard in self.shards)
        if total == 0:
            return 1.0
        finished = sum(
            shard.plan.entries
            for shard in self.shards
            if shard.state in ("completed", "skipped")
        )
        return finished / total

    def eta_seconds(self, workers: int) -> Optional[float]:
        """Projected seconds until completion, from observed shard durations.

        ``None`` until at least one shard has actually executed (skipped
        shards carry no timing signal).
        """
        durations = [shard.seconds for shard in self.shards if shard.seconds is not None]
        if not durations or self.done:
            return None
        remaining = sum(
            1 for shard in self.shards if shard.state in ("pending", "running")
        )
        mean = sum(durations) / len(durations)
        return round(mean * remaining / max(1, workers), 6)

    async def wait(self, timeout: Optional[float] = None) -> "Job":
        """Block until the job is terminal; raises ``TimeoutError`` on expiry."""
        await asyncio.wait_for(self._done.wait(), timeout)
        return self

    def to_payload(self, workers: int, include_shards: bool = True) -> Dict[str, Any]:
        """JSON-ready job status (the ``GET /v1/jobs/<id>`` body)."""
        payload: Dict[str, Any] = {
            "id": self.id,
            "name": self.spec.name,
            "fingerprint": self.fingerprint,
            "state": self.state,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "shards": self.shard_counts(),
            "progress": round(self.progress(), 6),
            "eta_seconds": self.eta_seconds(workers),
            "key": self.key,
            "error": self.error,
        }
        if include_shards:
            payload["shard_states"] = [shard.to_payload() for shard in self.shards]
        return payload


class JobManager:
    """Owns the shard worker pool and every job's lifecycle.

    All coordination runs on the event loop that calls :meth:`submit`;
    shard evaluation and store I/O run in executors, so the loop never
    blocks on CPU-bound work.  ``workers == 1`` schedules shards onto one
    background thread (the pre-sharding service behaviour, minus the
    head-of-line blocking: shards from different jobs interleave);
    ``workers >= 2`` fans shards out over a ``ProcessPoolExecutor``.
    Submitting more work than the pool has workers simply queues shards in
    the pool — jobs are accepted immediately, never rejected.
    """

    def __init__(
        self,
        store: ResultStore,
        workers: int = 1,
        max_entries_per_shard: int = DEFAULT_SHARD_ENTRIES,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_entries_per_shard < 1:
            raise ValueError("max_entries_per_shard must be >= 1")
        self.store = store
        self.workers = workers
        self.max_entries_per_shard = max_entries_per_shard
        self._jobs: Dict[str, Job] = {}
        self._pool: Optional[Executor] = None
        # Admission gate sized to the pool: shards wait here (state
        # "pending") rather than in the executor's opaque queue, so the
        # reported pending/running split is accurate and waiting shards
        # stay trivially cancellable.  Created lazily so it binds to the
        # loop that actually runs the jobs.
        self._slots: Optional[asyncio.Semaphore] = None
        self._closed = False
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------ #
    def _executor(self) -> Executor:
        """The shard pool, created lazily on first use."""
        if self._pool is None:
            if self.workers <= 1:
                self._pool = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="repro-jobs"
                )
            else:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def stats(self) -> Dict[str, Any]:
        """Aggregate job counters for the ``/health`` payload."""
        by_state: Dict[str, int] = {}
        for job in self._jobs.values():
            by_state[job.state] = by_state.get(job.state, 0) + 1
        return {
            "workers": self.workers,
            "max_entries_per_shard": self.max_entries_per_shard,
            "jobs": len(self._jobs),
            "by_state": by_state,
        }

    # ------------------------------------------------------------------ #
    async def submit(self, spec: ExperimentSpec) -> Job:
        """Plan and schedule a campaign job; returns without waiting.

        The shard plan is computed off the event loop (grid expansion and
        per-shard fingerprinting are CPU work).  The returned job is
        already tracked: poll it via :meth:`get`, block on ``job.wait()``.
        """
        if self._closed:
            raise RuntimeError("JobManager is closed")
        loop = asyncio.get_running_loop()
        if self._slots is None:
            self._slots = asyncio.Semaphore(self.workers)
        shards = await loop.run_in_executor(
            None, plan_shards, spec, self.max_entries_per_shard
        )
        job = Job(f"job-{next(self._ids):06d}-{os.urandom(3).hex()}", spec, shards)
        self._evict_terminal()
        self._jobs[job.id] = job
        job._runner = asyncio.ensure_future(self._run_job(job))
        return job

    def _evict_terminal(self) -> None:
        """Drop the oldest terminal jobs beyond :data:`MAX_TERMINAL_JOBS`."""
        terminal = [job_id for job_id, job in self._jobs.items() if job.done]
        for job_id in terminal[: max(0, len(terminal) - MAX_TERMINAL_JOBS)]:
            del self._jobs[job_id]

    def get(self, job_id: str) -> Job:
        """The tracked job with ``job_id``; raises ``KeyError`` when unknown."""
        return self._jobs[job_id]

    def jobs(self) -> List[Job]:
        """Every tracked job, oldest submission first."""
        return list(self._jobs.values())

    async def cancel(self, job_id: str) -> bool:
        """Cancel a job's unfinished shards; ``False`` if already terminal.

        Shards already stored stay in the store (they are valid,
        independently re-runnable results that a resubmission will reuse);
        a shard mid-execution on a worker finishes but its output is
        discarded un-stored.
        """
        job = self.get(job_id)
        if job.done:
            return False
        await self._cancel_and_finalize(job)
        return job.state == "cancelled"

    async def _cancel_and_finalize(self, job: Job) -> None:
        """Cancel a job's tasks and guarantee it reaches a terminal state.

        Cancelling the runner matters: a cancel landing while the runner
        is still in its resume-check window (no shard tasks spawned yet)
        must interrupt that await too, not wait for the whole campaign.
        A runner cancelled before it ever started executing never enters
        its ``finally``, so the terminal bookkeeping is applied here when
        the runner did not get to do it itself.
        """
        job._cancelled = True
        for task in job._tasks:
            task.cancel()
        runner = job._runner
        if runner is not None:
            runner.cancel()
            try:
                await runner
            except asyncio.CancelledError:
                pass
        if not job._done.is_set():
            for shard in job.shards:
                if shard.state in ("pending", "running"):
                    shard.state = "cancelled"
            job.state = "cancelled"
            job.finished = time.time()
            job._done.set()
        await job.wait()

    async def close(self) -> None:
        """Cancel every live job and shut the worker pool down."""
        self._closed = True
        for job in list(self._jobs.values()):
            if not job.done:
                await self._cancel_and_finalize(job)
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    # ------------------------------------------------------------------ #
    async def _run_job(self, job: Job) -> None:
        """Drive one job: resume check, shard fan-out, reassembly."""
        loop = asyncio.get_running_loop()
        job.state = "running"
        job.started = time.time()
        try:
            if job._cancelled:
                raise asyncio.CancelledError
            # Whole-result shortcut: the assembled result of this spec is
            # already stored (the job ran to completion before) — complete
            # instantly without touching the pool.
            record = await loop.run_in_executor(None, self.store.find, job.fingerprint)
            if record is not None:
                for shard in job.shards:
                    shard.state = "skipped"
                job.key = record.key
                job.state = "completed"
                return
            # Per-shard resume: skip every shard the store already holds
            # (one index pass for the whole plan).
            stored = await loop.run_in_executor(
                None,
                self.store.find_many,
                [shard.plan.fingerprint for shard in job.shards],
            )
            for shard in job.shards:
                record = stored.get(shard.plan.fingerprint)
                if record is not None:
                    shard.state = "skipped"
                    shard.key = record.key
            if job._cancelled:
                raise asyncio.CancelledError
            pending = [shard for shard in job.shards if shard.state == "pending"]
            job._tasks = [
                asyncio.ensure_future(self._run_shard(job, shard)) for shard in pending
            ]
            if job._tasks:
                await asyncio.gather(*job._tasks, return_exceptions=True)
            if job._cancelled:
                raise asyncio.CancelledError
            failed = [shard for shard in job.shards if shard.state == "failed"]
            if failed:
                job.error = failed[0].error
                job.state = "failed"
                return
            job.key = await loop.run_in_executor(None, self._assemble, job)
            job.state = "completed"
        except asyncio.CancelledError:
            for shard in job.shards:
                if shard.state in ("pending", "running"):
                    shard.state = "cancelled"
            job.state = "cancelled"
        except Exception as error:  # noqa: BLE001 — job must reach a terminal state
            job.error = f"{type(error).__name__}: {error}"
            job.state = "failed"
        finally:
            job.finished = time.time()
            for shard in job.shards:
                shard.payload = None  # free assembled payloads
            job._done.set()

    async def _run_shard(self, job: Job, shard: ShardRun) -> None:
        """Execute one shard on the pool and stream its result to the store.

        Admission goes through the worker-count semaphore, so a shard is
        ``pending`` while it waits for a slot and ``running`` only while a
        worker actually holds it — the progress a job reports distinguishes
        queued work from in-flight work truthfully.
        """
        loop = asyncio.get_running_loop()
        assert self._slots is not None  # created by submit()
        try:
            async with self._slots:
                shard.state = "running"
                started = time.perf_counter()
                try:
                    payload = await loop.run_in_executor(
                        self._executor(), _execute_shard, shard.plan.spec.to_dict()
                    )
                    shard.key = await loop.run_in_executor(
                        None, self.store.put_payload, payload
                    )
                    shard.payload = payload
                    shard.seconds = time.perf_counter() - started
                    shard.state = "completed"
                except Exception as error:  # noqa: BLE001 — reported via job state
                    shard.seconds = time.perf_counter() - started
                    shard.error = f"{type(error).__name__}: {error}"
                    shard.state = "failed"
        except asyncio.CancelledError:
            if shard.state in ("pending", "running"):
                shard.state = "cancelled"
            raise

    def _assemble(self, job: Job) -> str:
        """Concatenate shard payloads in plan order and store the result.

        Pure payload-level work (list concatenation plus one store append):
        no design points are materialized here, which keeps the parent
        process cheap — the whole point of fanning shards out.  Shard order
        is the serial iteration order, so the assembled payload is
        bit-identical to a single-thread run of the spec (and deduplicates
        against one in the store).
        """
        points: List[Dict[str, Any]] = []
        evaluations = 0
        hits = 0
        misses = 0
        for shard in job.shards:
            payload = shard.payload
            if payload is None:  # skipped — resumed from the store
                payload = self.store.get_payload(shard.key)
            points.extend(payload["points"])
            evaluations += payload["evaluations"]
            stats = payload.get("cache_stats") or {}
            hits += stats.get("hits", 0)
            misses += stats.get("misses", 0)
        assembled = {
            "schema": RESULT_SCHEMA,
            "spec": job.spec.to_dict(),
            "evaluations": evaluations,
            "elapsed_seconds": time.time() - (job.started or job.created),
            "cache_stats": {"hits": hits, "misses": misses},
            "points": points,
        }
        return self.store.put_payload(assembled)

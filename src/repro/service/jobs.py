"""Sharded campaign job scheduler with a pull-based worker-fleet protocol.

PR 4's ``POST /v1/campaign`` executed every submitted experiment on one
worker thread: a Fig. 6-scale campaign parked every other campaign (and
every ``evaluate`` behind the shared worker) until it finished.  This
module turns a submitted :class:`~repro.experiments.ExperimentSpec` into a
**job** — a set of independent *shards* scheduled onto a pool of workers —
so many campaigns make progress concurrently and a single big one no
longer monopolises the service.

How a spec becomes shards
-------------------------
:func:`plan_shards` splits a grid-strategy spec per ``(network, device)``
cell and, for large grids, into contiguous chunks of at most
``max_entries_per_shard`` grid entries per cell (the same contiguous
chunking rule :func:`repro.dse.engine.chunk_entries` gives the process
executor).  Each shard is itself a complete, re-runnable
:class:`~repro.experiments.ExperimentSpec` — one network, one device, the
chunk's entries encoded as singleton sweeps — so a shard has everything a
stored result needs: a spec, a deterministic
:meth:`~repro.experiments.ExperimentSpec.fingerprint` and the exact
canonical evaluation order.  Non-grid strategies (random, pareto-refine,
custom) are adaptive and cannot be split without changing their search, so
they run as a single whole-spec shard.

Execution: the local pool and the worker fleet
----------------------------------------------
Shards execute on whichever claimant grabs them first:

* **The local pool** — a ``ProcessPoolExecutor`` (``workers >= 2``) or a
  single background thread (``workers == 1``), evaluating through the
  vectorized engine (:mod:`repro.dse.vectorized`, with the usual serial
  fallback when numpy is missing).  ``workers == 0`` disables local
  execution entirely: shards then run only on the fleet.
* **The pull-based worker fleet** — remote ``python -m repro worker``
  processes (:mod:`repro.worker`) that *lease* pending shards over HTTP
  (``POST /v1/leases``), execute them with the very same
  :func:`execute_shard` entry point, and push the payload back
  (``POST /v1/leases/<id>/complete``).  The :class:`LeaseLedger` tracks
  every outstanding lease with an expiry deadline; workers extend it by
  heartbeating, and a lease whose deadline passes (dead or partitioned
  worker) is **re-queued automatically** — the shard goes back to
  ``pending`` and the next claimant (local slot or another worker's
  acquire) re-executes it.  A shard whose leases keep expiring fails the
  job after ``max_lease_attempts`` grants, so one poisoned shard cannot
  spin the fleet forever.

Because a shard is a self-contained deterministic spec, it does not matter
*who* executes it: the stored payload — and therefore the assembled
campaign — is bit-identical for any mix of local and fleet execution, any
fleet size, and any number of expiry re-queues.

Reassembly and resumption
-------------------------
Each completed shard's serialized payload is streamed into the
:class:`~repro.service.store.ResultStore` immediately, so a partially
finished campaign is already queryable — and **resumable**: resubmitting a
spec skips every shard whose fingerprint the store already holds (and
completes instantly when the assembled result itself is stored).  When
every shard lands, the payloads are concatenated in plan order — shard
order is exactly the serial iteration order, so the assembled result is
**bit-identical** (pickled bytes, same ordering) to a single-thread
``run_experiment`` of the original spec — and stored under the spec's
fingerprint.

The scheduler is asyncio-native: :meth:`JobManager.submit` returns
immediately with a :class:`Job` whose state, per-shard progress and ETA
the HTTP layer reports; pending shards queue (never rejected) and
``DELETE``-ing a job cancels its un-started shards — revoking their
outstanding leases — while keeping the store consistent.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import time
from collections import OrderedDict, deque
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from ..core.design_space import GridEntry, SweepSpec
from ..dse.engine import ExecutorConfig, chunk_entries
from ..experiments.persistence import RESULT_SCHEMA, result_to_dict
from ..experiments.spec import ExperimentSpec, StrategySpec, canonical_json_hash
from ..obs.tracing import current_trace_id
from .store import ResultStore

__all__ = [
    "DEFAULT_SHARD_ENTRIES",
    "DEFAULT_LEASE_TTL_S",
    "MAX_SHARD_LEASE_ATTEMPTS",
    "JobQueueFull",
    "ShardPlan",
    "ShardRun",
    "Job",
    "JobManager",
    "Lease",
    "LeaseLedger",
    "plan_shards",
    "execute_shard",
]


class JobQueueFull(RuntimeError):
    """Raised by :meth:`JobManager.submit` when too many jobs are active.

    The server maps this to ``429 Too Many Requests`` with a
    ``Retry-After`` hint: jobs drain at shard-execution speed, so the
    caller should back off for seconds, not milliseconds.
    """

    def __init__(self, active: int, limit: int, retry_after_s: float = 2.0):
        super().__init__(
            f"job queue full: {active} active job(s) against a limit of {limit}"
        )
        self.active = active
        self.limit = limit
        self.retry_after_s = retry_after_s

#: Grid entries per shard before a (network, device) cell is split further.
#: Part of the shard identity: changing it changes shard fingerprints, so
#: resumption only reuses shards planned with the same value (the assembled
#: campaign result still deduplicates regardless).
DEFAULT_SHARD_ENTRIES = 512

#: Terminal job states (no further transitions once reached).
TERMINAL_STATES = ("completed", "failed", "cancelled")

#: Terminal jobs retained for status queries before the oldest are
#: evicted (a serve-forever process must not accumulate Job objects).
MAX_TERMINAL_JOBS = 256

#: Every state a shard can be in.  ``leased`` means a fleet worker holds
#: the shard under an unexpired lease.
SHARD_STATES = (
    "pending",
    "leased",
    "running",
    "completed",
    "skipped",
    "failed",
    "cancelled",
)

#: Shard states from which no further transition happens.
SHARD_TERMINAL = ("completed", "skipped", "failed", "cancelled")

#: Default seconds a lease stays valid without a heartbeat.  Workers
#: heartbeat at a fraction of this, so only a dead (or partitioned) worker
#: lets a lease lapse.
DEFAULT_LEASE_TTL_S = 60.0

#: Bounds on the per-acquire ``ttl_s`` override a worker may request.
MIN_LEASE_TTL_S = 0.2
MAX_LEASE_TTL_S = 3600.0

#: Lease grants per shard before the scheduler gives up and fails the job
#: (a shard that kills every worker that touches it must not spin forever).
MAX_SHARD_LEASE_ATTEMPTS = 5

#: Recently closed leases remembered so duplicate complete/fail/heartbeat
#: calls get an idempotent answer instead of "unknown lease".
MAX_CLOSED_LEASES = 512

#: Distinct worker identities remembered in the fleet statistics.
MAX_TRACKED_WORKERS = 64


def _entry_sweep(entry: GridEntry) -> SweepSpec:
    """The singleton :class:`SweepSpec` expanding to exactly ``entry``."""
    return SweepSpec(
        m_values=(entry.m,),
        multiplier_budgets=(entry.multiplier_budget,),
        frequencies_mhz=(entry.frequency_mhz,),
        shared_data_transform=(entry.shared_data_transform,),
        r=entry.r,
        bit_widths=(entry.bit_width,),
        error_budget=entry.error_budget,
    )


@dataclass(frozen=True)
class ShardPlan:
    """One schedulable unit of a job: a spec slice plus its identity.

    ``spec`` is a complete, independently re-runnable experiment spec whose
    evaluation order matches the parent spec's serial order over this
    shard's slice; ``fingerprint`` is ``spec.fingerprint()``, the key the
    result store indexes the shard's result under (what makes resumption a
    pure store lookup).
    """

    index: int
    networks: Tuple[str, ...]
    devices: Tuple[str, ...]
    entries: int
    spec: ExperimentSpec
    fingerprint: str


def plan_shards(
    spec: ExperimentSpec, max_entries_per_shard: int = DEFAULT_SHARD_ENTRIES
) -> List[ShardPlan]:
    """Split ``spec`` into deterministic, independently executable shards.

    Grid-strategy specs shard per ``(network, device)`` cell, each cell
    chunked into contiguous runs of at most ``max_entries_per_shard`` grid
    entries (in the spec's canonical order); concatenating shard results in
    plan order therefore reproduces the serial result ordering exactly.
    Non-grid strategies are adaptive, so they return a single whole-spec
    shard.

    The plan depends only on the spec and ``max_entries_per_shard`` — never
    on worker count — so shard fingerprints are stable across resubmissions
    and server restarts, which is what makes crash resumption a store
    lookup.
    """
    if max_entries_per_shard < 1:
        raise ValueError("max_entries_per_shard must be >= 1")
    if spec.strategy.name != "grid":
        return [
            ShardPlan(
                index=0,
                networks=tuple(spec.networks),
                devices=tuple(spec.devices),
                entries=spec.grid_size,
                spec=spec,
                fingerprint=spec.fingerprint(),
            )
        ]
    entries = [entry for sweep in spec.sweeps for entry in sweep.configurations()]
    chunks = chunk_entries(entries, max_entries_per_shard)
    shards: List[ShardPlan] = []
    for network in spec.networks:
        for device in spec.devices:
            for chunk_index, chunk in enumerate(chunks):
                shard_spec = replace(
                    spec,
                    networks=(network,),
                    devices=(device,),
                    sweeps=tuple(_entry_sweep(entry) for entry in chunk),
                    strategy=StrategySpec("grid"),
                    executor=None,
                    name=f"{spec.name}::shard/{network}@{device}/{chunk_index:04d}",
                )
                shards.append(
                    ShardPlan(
                        index=len(shards),
                        networks=(network,),
                        devices=(device,),
                        entries=len(chunk),
                        spec=shard_spec,
                        fingerprint=shard_spec.fingerprint(),
                    )
                )
    return shards


def execute_shard(spec_payload: Dict[str, Any]) -> Dict[str, Any]:
    """Evaluate one shard spec payload, returning its result payload.

    The single shard-execution entry point shared by every executor: local
    pool workers (process or thread) and remote fleet workers
    (:mod:`repro.worker`) all run exactly this function, which is what
    makes "who executed the shard" invisible in the stored bytes.  Takes
    and returns plain dicts — the spec's ``to_dict`` form in, the result's
    versioned persistence payload out — so the boundary is cheap to pickle
    and start-method agnostic.  Grid shards evaluate through the
    vectorized engine (serial fallback without numpy), which is
    bit-identical to the scalar path; non-grid shards run the spec exactly
    as the single-thread campaign endpoint used to.
    """
    from ..dse.vectorized import numpy_available
    from ..experiments.runner import run_experiment

    spec = ExperimentSpec.from_dict(spec_payload)
    if spec.strategy.name == "grid":
        executor = ExecutorConfig(mode="vectorized" if numpy_available() else "serial")
        result = run_experiment(spec, executor=executor)
    else:
        result = run_experiment(spec)
    return result_to_dict(result)


@dataclass
class ShardRun:
    """Runtime state of one shard within a job.

    State transitions are funnelled through :meth:`set_state`, which wakes
    the shard's scheduler task (``_drive_shard``) and, on a terminal
    state, releases anyone blocked in :meth:`wait_terminal` — that is how
    a remote lease completion unblocks the job runner without the local
    pool ever touching the shard.
    """

    plan: ShardPlan
    #: One of :data:`SHARD_STATES`.
    state: str = "pending"
    seconds: Optional[float] = None
    error: Optional[str] = None
    key: Optional[str] = None
    #: Who executed (or holds) the shard: ``"local"`` or a fleet worker id.
    worker: Optional[str] = None
    #: Lease grants so far (0 while the shard never left the local path).
    attempts: int = 0
    payload: Optional[Dict[str, Any]] = field(default=None, repr=False)
    _wake: asyncio.Event = field(default_factory=asyncio.Event, repr=False)
    _terminal: asyncio.Event = field(default_factory=asyncio.Event, repr=False)

    def set_state(self, state: str) -> None:
        """Transition to ``state``, waking waiters (terminal states latch)."""
        self.state = state
        self._wake.set()
        if state in SHARD_TERMINAL:
            self._terminal.set()

    async def state_changed(self) -> None:
        """Block until the next :meth:`set_state` after this call started."""
        await self._wake.wait()
        self._wake.clear()

    async def wait_terminal(self) -> None:
        """Block until the shard reaches a terminal state."""
        await self._terminal.wait()

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready per-shard progress row for the job-status endpoint."""
        return {
            "index": self.plan.index,
            "networks": list(self.plan.networks),
            "devices": list(self.plan.devices),
            "entries": self.plan.entries,
            "fingerprint": self.plan.fingerprint,
            "state": self.state,
            "worker": self.worker,
            "attempts": self.attempts,
            "seconds": None if self.seconds is None else round(self.seconds, 6),
            "error": self.error,
            "key": self.key,
        }


class Job:
    """One submitted campaign: its shards, lifecycle state and receipt.

    States move ``queued -> running -> completed | failed | cancelled``.
    ``key`` holds the stored assembled result's content key once the job
    completes; ``error`` carries the first shard failure message when it
    fails.  ``await job.wait()`` blocks until a terminal state.
    """

    def __init__(
        self,
        job_id: str,
        spec: ExperimentSpec,
        shards: Sequence[ShardPlan],
        trace_id: Optional[str] = None,
    ) -> None:
        self.id = job_id
        self.spec = spec
        self.fingerprint = spec.fingerprint()
        self.trace_id = trace_id
        self.shards = [ShardRun(plan) for plan in shards]
        self.state = "queued"
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.key: Optional[str] = None
        self.error: Optional[str] = None
        self._done = asyncio.Event()
        self._cancelled = False
        self._tasks: List["asyncio.Task"] = []
        self._runner: Optional["asyncio.Task"] = None

    # ------------------------------------------------------------------ #
    @property
    def done(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.state in TERMINAL_STATES

    def shard_counts(self) -> Dict[str, int]:
        """Shard tally by state (every state key present, zero or not)."""
        counts = {state: 0 for state in SHARD_STATES}
        for shard in self.shards:
            counts[shard.state] += 1
        counts["total"] = len(self.shards)
        return counts

    def progress(self) -> float:
        """Fraction of grid entries whose shard already finished (0..1)."""
        total = sum(shard.plan.entries for shard in self.shards)
        if total == 0:
            return 1.0
        finished = sum(
            shard.plan.entries
            for shard in self.shards
            if shard.state in ("completed", "skipped")
        )
        return finished / total

    def eta_seconds(self, workers: int) -> Optional[float]:
        """Projected seconds until completion, from observed shard durations.

        ``None`` until at least one shard has actually executed (skipped
        shards carry no timing signal).
        """
        durations = [shard.seconds for shard in self.shards if shard.seconds is not None]
        if not durations or self.done:
            return None
        remaining = sum(
            1 for shard in self.shards if shard.state in ("pending", "leased", "running")
        )
        mean = sum(durations) / len(durations)
        return round(mean * remaining / max(1, workers), 6)

    async def wait(self, timeout: Optional[float] = None) -> "Job":
        """Block until the job is terminal; raises ``TimeoutError`` on expiry."""
        await asyncio.wait_for(self._done.wait(), timeout)
        return self

    def to_payload(self, workers: int, include_shards: bool = True) -> Dict[str, Any]:
        """JSON-ready job status (the ``GET /v1/jobs/<id>`` body)."""
        payload: Dict[str, Any] = {
            "id": self.id,
            "name": self.spec.name,
            "fingerprint": self.fingerprint,
            "trace_id": self.trace_id,
            "state": self.state,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "shards": self.shard_counts(),
            "progress": round(self.progress(), 6),
            "eta_seconds": self.eta_seconds(workers),
            "key": self.key,
            "error": self.error,
        }
        if include_shards:
            payload["shard_states"] = [shard.to_payload() for shard in self.shards]
        return payload


@dataclass
class Lease:
    """One outstanding claim a fleet worker holds on a shard.

    ``deadline`` is the wall-clock instant after which the scheduler
    considers the worker dead and re-queues the shard; heartbeats push it
    forward by ``ttl_s``.
    """

    id: str
    worker: str
    job: Job
    shard: ShardRun
    ttl_s: float
    granted: float
    deadline: float
    heartbeats: int = 0

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready lease row for the fleet-status endpoint."""
        return {
            "id": self.id,
            "worker": self.worker,
            "job_id": self.job.id,
            "shard_index": self.shard.plan.index,
            "fingerprint": self.shard.plan.fingerprint,
            "entries": self.shard.plan.entries,
            "ttl_s": self.ttl_s,
            "granted": self.granted,
            "deadline": self.deadline,
            "heartbeats": self.heartbeats,
        }


class LeaseLedger:
    """Bookkeeping for the pull-based fleet: availability, leases, history.

    Event-loop confined (every caller runs on the scheduler's loop), so no
    locking: an acquire observes shard states that cannot change under it.
    The ledger only *tracks* — shard state transitions stay with
    :class:`JobManager`, which is the single writer of shard states.
    """

    def __init__(self, ttl_s: float = DEFAULT_LEASE_TTL_S) -> None:
        if ttl_s <= 0:
            raise ValueError("ttl_s must be > 0")
        self.ttl_s = ttl_s
        self._available: Deque[Tuple[Job, ShardRun]] = deque()
        self._leases: Dict[str, Lease] = {}
        #: Recently closed leases: id -> {"outcome", "key"} for idempotent
        #: duplicate complete/fail/heartbeat answers.
        self._closed: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._workers: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._ids = itertools.count(1)
        self.counters: Dict[str, int] = {
            "granted": 0,
            "completed": 0,
            "failed": 0,
            "expired": 0,
            "requeued": 0,
            "heartbeats": 0,
            "sweep_errors": 0,
        }

    # ------------------------------------------------------------------ #
    def offer(self, job: Job, shard: ShardRun) -> None:
        """Make a pending shard claimable by the fleet."""
        self._available.append((job, shard))

    def pop_available(self) -> Optional[Tuple[Job, ShardRun]]:
        """The oldest genuinely claimable (job, shard) pair, if any.

        Entries claimed meanwhile by the local pool (or whose job went
        terminal) are lazily discarded here — shard ``state`` is the one
        claim token, so a stale deque entry is harmless.
        """
        while self._available:
            job, shard = self._available.popleft()
            if shard.state == "pending" and not job.done and not job._cancelled:
                return job, shard
        return None

    def prune_available(self) -> None:
        """Drop stale availability entries (run from the expiry sweep)."""
        self._available = deque(
            (job, shard)
            for job, shard in self._available
            if shard.state == "pending" and not job.done and not job._cancelled
        )

    # ------------------------------------------------------------------ #
    def grant(self, worker: str, job: Job, shard: ShardRun, ttl_s: float) -> Lease:
        """Register a new lease on ``shard`` for ``worker``."""
        now = time.time()
        lease = Lease(
            id=f"lease-{next(self._ids):06d}-{os.urandom(3).hex()}",
            worker=worker,
            job=job,
            shard=shard,
            ttl_s=ttl_s,
            granted=now,
            deadline=now + ttl_s,
        )
        self._leases[lease.id] = lease
        self.counters["granted"] += 1
        self._touch_worker(worker)
        return lease

    def get(self, lease_id: str) -> Optional[Lease]:
        """The active lease with ``lease_id``, if any."""
        return self._leases.get(lease_id)

    def pop(self, lease_id: str) -> Optional[Lease]:
        """Remove and return an active lease (``None`` when not active)."""
        return self._leases.pop(lease_id, None)

    def heartbeat(self, lease: Lease) -> None:
        """Push a lease's expiry deadline forward by its TTL."""
        lease.deadline = time.time() + lease.ttl_s
        lease.heartbeats += 1
        self.counters["heartbeats"] += 1
        self._touch_worker(lease.worker)

    def close(self, lease: Lease, outcome: str, key: Optional[str] = None) -> None:
        """Record a lease's final outcome for idempotent duplicate calls."""
        self._closed[lease.id] = {"outcome": outcome, "key": key}
        while len(self._closed) > MAX_CLOSED_LEASES:
            self._closed.popitem(last=False)

    def closed_outcome(self, lease_id: str) -> Optional[Dict[str, Any]]:
        """The recorded outcome of a recently closed lease, if remembered."""
        return self._closed.get(lease_id)

    def due(self, now: float) -> List[Lease]:
        """Every active lease whose deadline has passed."""
        return [lease for lease in self._leases.values() if lease.deadline < now]

    # ------------------------------------------------------------------ #
    def _touch_worker(self, worker: str) -> None:
        entry = self._workers.pop(worker, None) or {"leases_granted": 0}
        entry["last_seen"] = time.time()
        entry["leases_granted"] = entry.get("leases_granted", 0)
        self._workers[worker] = entry
        while len(self._workers) > MAX_TRACKED_WORKERS:
            self._workers.popitem(last=False)

    def record_worker_grant(self, worker: str) -> None:
        """Bump a worker's granted-lease counter in the fleet stats."""
        self._touch_worker(worker)
        self._workers[worker]["leases_granted"] += 1

    def sweep_interval(self) -> float:
        """Seconds the expiry sweeper should sleep before its next pass."""
        ttl = min(
            (lease.ttl_s for lease in self._leases.values()), default=self.ttl_s
        )
        return max(0.02, min(1.0, ttl / 4.0))

    def stats(self) -> Dict[str, Any]:
        """Fleet statistics for ``/health`` and ``GET /v1/leases``."""
        active: Dict[str, int] = {}
        for lease in self._leases.values():
            active[lease.worker] = active.get(lease.worker, 0) + 1
        return {
            "lease_ttl_s": self.ttl_s,
            "available_shards": sum(
                1
                for job, shard in self._available
                if shard.state == "pending" and not job.done
            ),
            "active_leases": len(self._leases),
            "workers_seen": len(self._workers),
            "active_by_worker": active,
            **self.counters,
        }

    def rows(self) -> List[Dict[str, Any]]:
        """Every active lease as a JSON-ready row, oldest grant first."""
        return [
            lease.to_payload()
            for lease in sorted(self._leases.values(), key=lambda item: item.granted)
        ]


class JobManager:
    """Owns shard scheduling across the local pool and the worker fleet.

    All coordination runs on the event loop that calls :meth:`submit`;
    shard evaluation and store I/O run in executors, so the loop never
    blocks on CPU-bound work.  ``workers == 1`` schedules shards onto one
    background thread (the pre-sharding service behaviour, minus the
    head-of-line blocking: shards from different jobs interleave);
    ``workers >= 2`` fans shards out over a ``ProcessPoolExecutor``;
    ``workers == 0`` disables local execution — shards then run only on
    the pull-based fleet (:mod:`repro.worker`), and a job waits until
    workers connect.  Pending shards are *always* claimable by the fleet,
    whichever local pool exists: local slots and remote acquires compete
    for the same ``pending`` state, first claimant wins.  Submitting more
    work than there are claimants simply queues shards — jobs are accepted
    immediately.  With ``max_pending_jobs`` set, submissions beyond that
    many non-terminal jobs raise :class:`JobQueueFull` instead of growing
    the queue unboundedly (the HTTP layer answers 429/Retry-After).
    """

    def __init__(
        self,
        store: ResultStore,
        workers: int = 1,
        max_entries_per_shard: int = DEFAULT_SHARD_ENTRIES,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        max_lease_attempts: int = MAX_SHARD_LEASE_ATTEMPTS,
        max_pending_jobs: Optional[int] = None,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0 (0 = fleet-only, no local pool)")
        if max_entries_per_shard < 1:
            raise ValueError("max_entries_per_shard must be >= 1")
        if max_lease_attempts < 1:
            raise ValueError("max_lease_attempts must be >= 1")
        if max_pending_jobs is not None and max_pending_jobs < 1:
            raise ValueError("max_pending_jobs must be >= 1 (or None for unbounded)")
        self.store = store
        self.workers = workers
        self.max_entries_per_shard = max_entries_per_shard
        self.max_lease_attempts = max_lease_attempts
        self.max_pending_jobs = max_pending_jobs
        self.rejected_jobs = 0
        self.ledger = LeaseLedger(ttl_s=lease_ttl_s)
        self._jobs: Dict[str, Job] = {}
        self._pool: Optional[Executor] = None
        # Admission gate sized to the pool: shards wait here (state
        # "pending") rather than in the executor's opaque queue, so the
        # reported pending/running split is accurate and waiting shards
        # stay trivially cancellable.  Created lazily so it binds to the
        # loop that actually runs the jobs.  Absent at workers == 0.
        self._slots: Optional[asyncio.Semaphore] = None
        self._sweeper: Optional["asyncio.Task"] = None
        self._closed = False
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------ #
    def _executor(self) -> Executor:
        """The local shard pool, created lazily on first use."""
        if self.workers < 1:
            raise RuntimeError("local execution is disabled (workers=0)")
        if self._pool is None:
            if self.workers == 1:
                self._pool = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="repro-jobs"
                )
            else:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def stats(self) -> Dict[str, Any]:
        """Aggregate job + fleet counters for the ``/health`` payload."""
        by_state: Dict[str, int] = {}
        shard_states: Dict[str, int] = {state: 0 for state in SHARD_STATES}
        for job in self._jobs.values():
            by_state[job.state] = by_state.get(job.state, 0) + 1
            for shard in job.shards:
                shard_states[shard.state] += 1
        return {
            "workers": self.workers,
            "max_entries_per_shard": self.max_entries_per_shard,
            "jobs": len(self._jobs),
            "active_jobs": self.active_jobs(),
            "rejected_jobs": self.rejected_jobs,
            "by_state": by_state,
            "shard_states": shard_states,
            "fleet": self.ledger.stats(),
        }

    def active_jobs(self) -> int:
        """Tracked jobs not yet in a terminal state (the queue depth)."""
        return sum(1 for job in self._jobs.values() if not job.done)

    # ------------------------------------------------------------------ #
    async def submit(self, spec: ExperimentSpec) -> Job:
        """Plan and schedule a campaign job; returns without waiting.

        The shard plan is computed off the event loop (grid expansion and
        per-shard fingerprinting are CPU work).  The returned job is
        already tracked: poll it via :meth:`get`, block on ``job.wait()``.
        """
        if self._closed:
            raise RuntimeError("JobManager is closed")
        if self.max_pending_jobs is not None:
            active = self.active_jobs()
            if active >= self.max_pending_jobs:
                self.rejected_jobs += 1
                raise JobQueueFull(active, self.max_pending_jobs)
        loop = asyncio.get_running_loop()
        if self._slots is None and self.workers >= 1:
            self._slots = asyncio.Semaphore(self.workers)
        self._ensure_sweeper()
        shards = await loop.run_in_executor(
            None, plan_shards, spec, self.max_entries_per_shard
        )
        job = Job(
            f"job-{next(self._ids):06d}-{os.urandom(3).hex()}",
            spec,
            shards,
            trace_id=current_trace_id(),
        )
        self._evict_terminal()
        self._jobs[job.id] = job
        job._runner = asyncio.ensure_future(self._run_job(job))
        return job

    def _evict_terminal(self) -> None:
        """Drop the oldest terminal jobs beyond :data:`MAX_TERMINAL_JOBS`."""
        terminal = [job_id for job_id, job in self._jobs.items() if job.done]
        for job_id in terminal[: max(0, len(terminal) - MAX_TERMINAL_JOBS)]:
            del self._jobs[job_id]

    def get(self, job_id: str) -> Job:
        """The tracked job with ``job_id``; raises ``KeyError`` when unknown."""
        return self._jobs[job_id]

    def jobs(self) -> List[Job]:
        """Every tracked job, oldest submission first."""
        return list(self._jobs.values())

    async def cancel(self, job_id: str) -> bool:
        """Cancel a job's unfinished shards; ``False`` if already terminal.

        Shards already stored stay in the store (they are valid,
        independently re-runnable results that a resubmission will reuse);
        a shard mid-execution on a worker — local or fleet — finishes but
        its output is discarded un-stored (a fleet worker's late
        ``complete`` is rejected because its lease was revoked).
        """
        job = self.get(job_id)
        if job.done:
            return False
        await self._cancel_and_finalize(job)
        return job.state == "cancelled"

    async def _cancel_and_finalize(self, job: Job) -> None:
        """Cancel a job's tasks and guarantee it reaches a terminal state.

        Cancelling the runner matters: a cancel landing while the runner
        is still in its resume-check window (no shard tasks spawned yet)
        must interrupt that await too, not wait for the whole campaign.
        A runner cancelled before it ever started executing never enters
        its ``finally``, so the terminal bookkeeping is applied here when
        the runner did not get to do it itself.
        """
        job._cancelled = True
        self._revoke_leases(job)
        for task in job._tasks:
            task.cancel()
        runner = job._runner
        if runner is not None:
            runner.cancel()
            try:
                await runner
            except asyncio.CancelledError:
                pass
        if not job._done.is_set():
            for shard in job.shards:
                if shard.state in ("pending", "leased", "running"):
                    shard.set_state("cancelled")
            job.state = "cancelled"
            job.finished = time.time()
            job._done.set()
        await job.wait()

    def _revoke_leases(self, job: Job) -> None:
        """Drop every outstanding lease of ``job`` (cancel path).

        The holding workers keep computing until their next protocol call,
        which answers "lease revoked" — their output is discarded, exactly
        like a local worker whose job was cancelled mid-shard.
        """
        for lease_id, lease in list(self.ledger._leases.items()):
            if lease.job is job:
                self.ledger.pop(lease_id)
                self.ledger.close(lease, "cancelled")

    async def close(self) -> None:
        """Cancel every live job, the expiry sweeper and the worker pool."""
        self._closed = True
        for job in list(self._jobs.values()):
            if not job.done:
                await self._cancel_and_finalize(job)
        if self._sweeper is not None:
            self._sweeper.cancel()
            try:
                await self._sweeper
            except asyncio.CancelledError:
                pass
            self._sweeper = None
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    # ------------------------------------------------------------------ #
    # Lease protocol (called by the HTTP layer, on the scheduler's loop)
    # ------------------------------------------------------------------ #
    async def acquire_leases(
        self, worker: str, count: int = 1, ttl_s: Optional[float] = None
    ) -> List[Dict[str, Any]]:
        """Grant up to ``count`` leases on pending shards to ``worker``.

        Returns JSON-ready lease payloads, each carrying the complete
        shard spec (``shard.spec``) the worker must execute.  An empty
        list means nothing is claimable right now — the worker should poll
        again after a short delay.  ``ttl_s`` overrides the server's
        default lease TTL, clamped to sane bounds.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        ttl = self.ledger.ttl_s if ttl_s is None else ttl_s
        ttl = min(max(ttl, MIN_LEASE_TTL_S), MAX_LEASE_TTL_S)
        self._ensure_sweeper()
        granted: List[Dict[str, Any]] = []
        for _ in range(count):
            claim = self.ledger.pop_available()
            if claim is None:
                break
            job, shard = claim
            shard.attempts += 1
            shard.worker = worker
            shard.set_state("leased")
            lease = self.ledger.grant(worker, job, shard, ttl)
            self.ledger.record_worker_grant(worker)
            granted.append(
                {
                    "id": lease.id,
                    "worker": worker,
                    "ttl_s": ttl,
                    "deadline": lease.deadline,
                    "job_id": job.id,
                    "trace_id": job.trace_id,
                    "shard": {
                        "index": shard.plan.index,
                        "fingerprint": shard.plan.fingerprint,
                        "entries": shard.plan.entries,
                        "networks": list(shard.plan.networks),
                        "devices": list(shard.plan.devices),
                        "spec": shard.plan.spec.to_dict(),
                    },
                }
            )
        return granted

    async def heartbeat_lease(self, lease_id: str) -> Dict[str, Any]:
        """Extend a lease's expiry; tells the worker whether it still holds it.

        ``alive: false`` means the lease expired, was revoked (job
        cancelled) or was never granted — the worker must abandon the
        shard (its eventual ``complete`` would be rejected anyway).
        """
        lease = self.ledger.get(lease_id)
        if lease is None:
            closed = self.ledger.closed_outcome(lease_id)
            reason = closed["outcome"] if closed else "unknown-lease"
            return {"alive": False, "reason": reason}
        self.ledger.heartbeat(lease)
        return {"alive": True, "deadline": lease.deadline, "ttl_s": lease.ttl_s}

    async def complete_lease(
        self,
        lease_id: str,
        payload: Dict[str, Any],
        seconds: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Accept a fleet worker's shard result and finish the shard.

        The payload is validated against the leased shard (its embedded
        spec must fingerprint to the shard's spec — a worker cannot
        complete shard A with shard B's result), stored through
        :meth:`~repro.service.store.ResultStore.put_payload` off the event
        loop, and the shard transitions to ``completed``, unblocking the
        job runner.  Idempotent: a duplicate complete of an
        already-completed lease answers ``accepted: true, duplicate:
        true``; a complete after expiry/revocation is rejected
        (``accepted: false`` with the reason) because the shard was — or
        will be — re-executed by someone else.

        Raises ``ValueError`` for an invalid payload (the HTTP layer maps
        it to a 400); the shard is re-queued so the invalid completion
        costs the fleet nothing but the wasted attempt.
        """
        lease = self.ledger.pop(lease_id)
        if lease is None:
            closed = self.ledger.closed_outcome(lease_id)
            if closed and closed["outcome"] == "completed":
                return {"accepted": True, "duplicate": True, "key": closed["key"]}
            reason = closed["outcome"] if closed else "unknown-lease"
            return {"accepted": False, "duplicate": False, "reason": reason, "key": None}
        job, shard = lease.job, lease.shard
        if shard.state != "leased":
            # Cancelled (or otherwise finished) while the worker computed.
            self.ledger.close(lease, shard.state)
            return {
                "accepted": False,
                "duplicate": False,
                "reason": f"shard-{shard.state}",
                "key": None,
            }
        loop = asyncio.get_running_loop()
        try:
            self._validate_shard_payload(shard, payload)
            # Shard-level appends skip the per-put index rewrite; the job
            # runner flushes once when the job settles (crash in between
            # heals via the store's count-validated rebuild on open).
            key = await loop.run_in_executor(
                None, lambda: self.store.put_payload(payload, flush_index=False)
            )
        except Exception:
            # Invalid completion: the shard still needs executing.
            self.ledger.close(lease, "invalid")
            self.ledger.counters["failed"] += 1
            if shard.state == "leased":
                shard.worker = None
                shard.set_state("pending")
                self.ledger.offer(job, shard)
                self.ledger.counters["requeued"] += 1
            raise
        if shard.state == "leased":  # a cancel may have landed during the await
            shard.key = key
            shard.payload = payload
            shard.seconds = seconds
            shard.set_state("completed")
        self.ledger.close(lease, "completed", key)
        self.ledger.counters["completed"] += 1
        return {
            "accepted": True,
            "duplicate": False,
            "key": key,
            "job_id": job.id,
            "shard_index": shard.plan.index,
        }

    async def fail_lease(
        self, lease_id: str, error: str, requeue: bool = False
    ) -> Dict[str, Any]:
        """Report a worker-side shard failure (or hand the shard back).

        ``requeue=False`` (an execution error): the shard — and therefore
        the job — fails with the worker's error message, exactly as a
        local execution failure would.  ``requeue=True`` (the worker is
        shutting down, or hit a transient environment problem): the shard
        goes back to ``pending`` for the next claimant, counting against
        its lease-attempt budget.
        """
        lease = self.ledger.pop(lease_id)
        if lease is None:
            closed = self.ledger.closed_outcome(lease_id)
            reason = closed["outcome"] if closed else "unknown-lease"
            return {"accepted": False, "reason": reason, "requeued": False}
        job, shard = lease.job, lease.shard
        requeued = False
        if shard.state == "leased":
            if requeue and shard.attempts < self.max_lease_attempts:
                shard.worker = None
                shard.set_state("pending")
                self.ledger.offer(job, shard)
                self.ledger.counters["requeued"] += 1
                requeued = True
            else:
                shard.error = error
                shard.set_state("failed")
        self.ledger.close(lease, "requeued" if requeued else "failed")
        self.ledger.counters["failed"] += 0 if requeued else 1
        return {"accepted": True, "reason": None, "requeued": requeued}

    @staticmethod
    def _validate_shard_payload(shard: ShardRun, payload: Dict[str, Any]) -> None:
        """Reject a completion whose payload is not this shard's result."""
        if not isinstance(payload, dict):
            raise ValueError("lease completion payload must be a result mapping")
        if payload.get("schema") != RESULT_SCHEMA:
            raise ValueError(
                f"lease completion payload has schema {payload.get('schema')!r}; "
                f"expected {RESULT_SCHEMA!r}"
            )
        spec_data = payload.get("spec")
        if not isinstance(spec_data, dict):
            raise ValueError("lease completion payload has no embedded spec mapping")
        fingerprint = canonical_json_hash(
            {
                k: v
                for k, v in spec_data.items()
                if k not in ExperimentSpec.EXECUTION_ONLY_FIELDS
            }
        )
        if fingerprint != shard.plan.fingerprint:
            raise ValueError(
                f"lease completion payload fingerprints to {fingerprint[:12]}…, "
                f"not the leased shard's {shard.plan.fingerprint[:12]}…"
            )

    # ------------------------------------------------------------------ #
    # Lease expiry sweep
    # ------------------------------------------------------------------ #
    def _ensure_sweeper(self) -> None:
        """Start (or restart) the lease-expiry sweep task on this loop."""
        if self._closed:
            return
        if self._sweeper is None or self._sweeper.done():
            self._sweeper = asyncio.ensure_future(self._sweep_forever())

    async def _sweep_forever(self) -> None:
        """Periodically expire overdue leases until the manager closes."""
        while not self._closed:
            await asyncio.sleep(self.ledger.sweep_interval())
            try:
                self._sweep_once()
            except Exception:  # noqa: BLE001 — the sweeper must survive
                self.ledger.counters["sweep_errors"] += 1

    def _sweep_once(self) -> None:
        """Re-queue (or fail) every shard whose lease deadline has passed."""
        now = time.time()
        for lease in self.ledger.due(now):
            self.ledger.pop(lease.id)
            self.ledger.close(lease, "expired")
            self.ledger.counters["expired"] += 1
            job, shard = lease.job, lease.shard
            if job.done or job._cancelled or shard.state != "leased":
                continue
            if shard.attempts >= self.max_lease_attempts:
                shard.error = (
                    f"lease expired after {shard.attempts} grants "
                    f"(last worker {lease.worker!r}); giving up on the shard"
                )
                shard.set_state("failed")
            else:
                shard.worker = None
                shard.set_state("pending")
                self.ledger.offer(job, shard)
                self.ledger.counters["requeued"] += 1
        self.ledger.prune_available()

    # ------------------------------------------------------------------ #
    async def _run_job(self, job: Job) -> None:
        """Drive one job: resume check, shard fan-out, reassembly."""
        loop = asyncio.get_running_loop()
        job.state = "running"
        job.started = time.time()
        try:
            if job._cancelled:
                raise asyncio.CancelledError
            # Whole-result shortcut: the assembled result of this spec is
            # already stored (the job ran to completion before) — complete
            # instantly without touching the pool.
            record = await loop.run_in_executor(None, self.store.find, job.fingerprint)
            if record is not None:
                for shard in job.shards:
                    shard.set_state("skipped")
                job.key = record.key
                job.state = "completed"
                return
            # Per-shard resume: skip every shard the store already holds
            # (one index pass for the whole plan).
            stored = await loop.run_in_executor(
                None,
                self.store.find_many,
                [shard.plan.fingerprint for shard in job.shards],
            )
            for shard in job.shards:
                record = stored.get(shard.plan.fingerprint)
                if record is not None:
                    shard.key = record.key
                    shard.set_state("skipped")
            if job._cancelled:
                raise asyncio.CancelledError
            pending = [shard for shard in job.shards if shard.state == "pending"]
            job._tasks = [
                asyncio.ensure_future(self._drive_shard(job, shard)) for shard in pending
            ]
            if job._tasks:
                await asyncio.gather(*job._tasks, return_exceptions=True)
            if job._cancelled:
                raise asyncio.CancelledError
            failed = [shard for shard in job.shards if shard.state == "failed"]
            if failed:
                job.error = failed[0].error
                job.state = "failed"
                return
            job.key = await loop.run_in_executor(None, self._assemble, job)
            job.state = "completed"
        except asyncio.CancelledError:
            for shard in job.shards:
                if shard.state in ("pending", "leased", "running"):
                    shard.set_state("cancelled")
            job.state = "cancelled"
        except Exception as error:  # noqa: BLE001 — job must reach a terminal state
            job.error = f"{type(error).__name__}: {error}"
            job.state = "failed"
        finally:
            job.finished = time.time()
            # Persist index rows for every shard put that deferred its
            # flush (no-op when _assemble's flushing put already did).
            await loop.run_in_executor(None, self.store.flush_index)
            for shard in job.shards:
                shard.payload = None  # free assembled payloads
            job._done.set()

    async def _drive_shard(self, job: Job, shard: ShardRun) -> None:
        """Own one shard's lifecycle until it reaches a terminal state.

        The shard is offered to the fleet immediately and stays claimable
        the whole time it is ``pending``; when a local pool exists, this
        task also competes for it through the worker-count semaphore.
        Whoever claims first wins — a lease flips the state to ``leased``
        and this task just waits for the remote completion (or for the
        expiry sweep to hand the shard back).
        """
        self.ledger.offer(job, shard)
        try:
            while True:
                if shard.state in SHARD_TERMINAL:
                    return
                if shard.state == "pending" and self.workers >= 1:
                    if await self._try_run_local(job, shard):
                        return
                    continue  # lost the claim — re-read the state
                await shard.state_changed()
        except asyncio.CancelledError:
            if shard.state in ("pending", "leased", "running"):
                shard.set_state("cancelled")
            raise

    async def _try_run_local(self, job: Job, shard: ShardRun) -> bool:
        """Execute one shard on the local pool if it is still unclaimed.

        Admission goes through the worker-count semaphore, so a shard is
        ``pending`` while it waits for a slot and ``running`` only while a
        worker actually holds it — the progress a job reports distinguishes
        queued work from in-flight work truthfully.  Returns ``False``
        when the fleet claimed (or finished) the shard while this task was
        waiting for a slot.
        """
        loop = asyncio.get_running_loop()
        assert self._slots is not None  # created by submit() when workers >= 1
        async with self._slots:
            if shard.state != "pending":
                return False
            shard.worker = "local"
            shard.set_state("running")
            started = time.perf_counter()
            try:
                payload = await loop.run_in_executor(
                    self._executor(), execute_shard, shard.plan.spec.to_dict()
                )
                shard.key = await loop.run_in_executor(
                    None, lambda: self.store.put_payload(payload, flush_index=False)
                )
                shard.payload = payload
                shard.seconds = time.perf_counter() - started
                shard.set_state("completed")
            except Exception as error:  # noqa: BLE001 — reported via job state
                shard.seconds = time.perf_counter() - started
                shard.error = f"{type(error).__name__}: {error}"
                shard.set_state("failed")
            return True

    def _assemble(self, job: Job) -> str:
        """Concatenate shard payloads in plan order and store the result.

        Pure payload-level work (list concatenation plus one store append):
        no design points are materialized here, which keeps the parent
        process cheap — the whole point of fanning shards out.  Shard order
        is the serial iteration order, so the assembled payload is
        bit-identical to a single-thread run of the spec (and deduplicates
        against one in the store) no matter which mix of local pool and
        fleet workers produced the shards.
        """
        points: List[Dict[str, Any]] = []
        evaluations = 0
        hits = 0
        misses = 0
        for shard in job.shards:
            payload = shard.payload
            if payload is None:  # skipped — resumed from the store
                payload = self.store.get_payload(shard.key)
            points.extend(payload["points"])
            evaluations += payload["evaluations"]
            stats = payload.get("cache_stats") or {}
            hits += stats.get("hits", 0)
            misses += stats.get("misses", 0)
        assembled = {
            "schema": RESULT_SCHEMA,
            "spec": job.spec.to_dict(),
            "evaluations": evaluations,
            "elapsed_seconds": time.time() - (job.started or job.created),
            "cache_stats": {"hits": hits, "misses": misses},
            "points": points,
        }
        return self.store.put_payload(assembled)

"""Micro-batching scheduler for concurrent evaluate requests.

An online design-query server receives many small, independent
``evaluate`` requests.  Answering each alone walks the scalar model once
per request; but the vectorized engine (:mod:`repro.dse.vectorized`)
evaluates a whole stacked batch for barely more than the cost of one —
so the profitable schedule is to *wait a tiny window*, coalesce every
request that arrived, and dispatch them as one
:func:`repro.dse.batch.evaluate_requests` call.

:class:`MicroBatcher` implements that schedule on asyncio:

* the first request to arrive opens a collection window of
  ``window_ms`` milliseconds;
* every request arriving inside the window joins the pending batch;
* when the window closes (or the batch hits ``max_batch`` first), the
  batch is dispatched on a worker thread — evaluation is CPU-bound
  Python/NumPy, so it must not block the event loop — and each request's
  future resolves with its own :class:`~repro.dse.batch.BatchOutcome`.

Because :func:`~repro.dse.batch.evaluate_requests` is bit-identical to
serial per-request evaluation regardless of batch composition, batching
is *invisible* in the responses: a client gets the same bytes whether its
request rode alone or with a thousand others.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import Executor
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..dse.batch import BatchOutcome, EvalRequest, evaluate_requests
from ..dse.engine import CacheLike
from ..obs.logging import StructuredLogger

__all__ = ["BatcherSaturated", "BatcherStats", "MicroBatcher"]


class BatcherSaturated(RuntimeError):
    """Raised by :meth:`MicroBatcher.submit` when the admission queue is full.

    The server maps this to ``429 Too Many Requests`` with a
    ``Retry-After`` header of :attr:`retry_after_s` seconds — roughly one
    collection window, since that is when capacity next frees up.
    """

    def __init__(self, pending: int, limit: int, retry_after_s: float):
        super().__init__(
            f"micro-batcher saturated: {pending} request(s) pending or in "
            f"flight against a limit of {limit}"
        )
        self.pending = pending
        self.limit = limit
        self.retry_after_s = retry_after_s


@dataclass
class BatcherStats:
    """Aggregate counters of one :class:`MicroBatcher`'s lifetime."""

    requests: int = 0
    batches: int = 0
    largest_batch: int = 0
    errors: int = 0
    rejected: int = 0

    @property
    def mean_batch_size(self) -> float:
        """Average requests coalesced per dispatched batch."""
        return self.requests / self.batches if self.batches else 0.0

    def to_dict(self) -> dict:
        """JSON-ready counters for the ``/health`` payload."""
        return {
            "requests": self.requests,
            "batches": self.batches,
            "largest_batch": self.largest_batch,
            "mean_batch_size": round(self.mean_batch_size, 3),
            "errors": self.errors,
            "rejected": self.rejected,
        }


class MicroBatcher:
    """Coalesce concurrent evaluation requests into vectorized batches.

    Parameters
    ----------
    window_ms:
        How long the first request of a batch waits for company.  ``0``
        still coalesces whatever arrives within one event-loop tick.
    max_batch:
        Dispatch immediately once this many requests are pending.
    cache / vectorized:
        Forwarded to :func:`repro.dse.batch.evaluate_requests`.
    executor:
        Where dispatches run; ``None`` uses the loop's default thread
        pool.  Pass a single-thread executor to serialize evaluation
        against other CPU-bound work (the HTTP server does).
    max_pending:
        Admission bound: requests pending *or in flight* beyond this raise
        :class:`BatcherSaturated` instead of buffering unboundedly.
        ``None`` (the default) keeps the historical unbounded behaviour.
    logger:
        Optional :class:`~repro.obs.logging.StructuredLogger`; when set,
        every dispatch emits a ``batch.dispatch`` event naming the trace
        ids it coalesced.
    """

    def __init__(
        self,
        window_ms: float = 2.0,
        max_batch: int = 256,
        cache: CacheLike = None,
        vectorized: Optional[bool] = None,
        executor: Optional[Executor] = None,
        max_pending: Optional[int] = None,
        logger: Optional[StructuredLogger] = None,
    ) -> None:
        if window_ms < 0:
            raise ValueError("window_ms must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1 (or None for unbounded)")
        self.window_ms = window_ms
        self.max_batch = max_batch
        self.cache = cache
        self.vectorized = vectorized
        self.executor = executor
        self.max_pending = max_pending
        self.logger = logger
        self.stats = BatcherStats()
        self._stats_lock = threading.Lock()
        self._pending: List[
            Tuple[EvalRequest, "asyncio.Future[BatchOutcome]", Optional[str]]
        ] = []
        self._inflight = 0
        self._flush_task: Optional["asyncio.Task"] = None
        self._closed = False

    @property
    def occupancy(self) -> int:
        """Requests currently pending in the open window."""
        return len(self._pending)

    @property
    def inflight(self) -> int:
        """Requests dispatched to the executor but not yet resolved."""
        return self._inflight

    # ------------------------------------------------------------------ #
    async def submit(
        self, request: EvalRequest, trace_id: Optional[str] = None
    ) -> BatchOutcome:
        """Enqueue one request and await its outcome.

        Requests submitted while a window is open join its batch; the
        caller's coroutine resumes when the batch completes.  With
        ``max_pending`` set, a full admission queue raises
        :class:`BatcherSaturated` immediately instead of queueing.
        """
        if self._closed:
            raise RuntimeError("MicroBatcher is closed")
        occupied = len(self._pending) + self._inflight
        if self.max_pending is not None and occupied >= self.max_pending:
            with self._stats_lock:
                self.stats.rejected += 1
            retry_after = max(self.window_ms / 1000.0, 0.05)
            raise BatcherSaturated(occupied, self.max_pending, retry_after)
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[BatchOutcome]" = loop.create_future()
        self._pending.append((request, future, trace_id))
        if len(self._pending) >= self.max_batch:
            self._cancel_window()
            self._dispatch_pending(loop)
        elif self._flush_task is None:
            self._flush_task = loop.create_task(self._window(loop))
        return await future

    async def _window(self, loop: asyncio.AbstractEventLoop) -> None:
        try:
            await asyncio.sleep(self.window_ms / 1000.0)
        except asyncio.CancelledError:
            return
        self._flush_task = None
        self._dispatch_pending(loop)

    def _cancel_window(self) -> None:
        if self._flush_task is not None:
            self._flush_task.cancel()
            self._flush_task = None

    def _dispatch_pending(self, loop: asyncio.AbstractEventLoop) -> None:
        batch, self._pending = self._pending, []
        if not batch:
            return
        with self._stats_lock:
            self.stats.requests += len(batch)
            self.stats.batches += 1
            self.stats.largest_batch = max(self.stats.largest_batch, len(batch))
        requests = [request for request, _, _ in batch]
        futures = [future for _, future, _ in batch]
        if self.logger is not None:
            self.logger.event(
                "batch.dispatch",
                size=len(batch),
                trace_ids=[trace for _, _, trace in batch if trace],
            )
        self._inflight += len(batch)

        def run() -> List[BatchOutcome]:
            """Worker-side dispatch of the coalesced batch."""
            return evaluate_requests(
                requests, cache=self.cache, vectorized=self.vectorized
            )

        dispatch = loop.run_in_executor(self.executor, run)

        def finish(done: "asyncio.Future") -> None:
            """Resolve every request future from the batch outcome."""
            self._inflight -= len(futures)
            error = done.exception()
            if error is not None:
                with self._stats_lock:
                    self.stats.errors += len(futures)
                for future in futures:
                    if not future.done():
                        future.set_exception(error)
                return
            for future, outcome in zip(futures, done.result()):
                if not future.done():
                    future.set_result(outcome)

        dispatch.add_done_callback(finish)

    # ------------------------------------------------------------------ #
    async def flush(self) -> None:
        """Dispatch any pending batch now and wait for it to finish."""
        self._cancel_window()
        pending = [future for _, future, _ in self._pending]
        self._dispatch_pending(asyncio.get_running_loop())
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    async def close(self) -> None:
        """Flush outstanding work and refuse further submissions."""
        self._closed = True
        await self.flush()

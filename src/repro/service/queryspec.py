"""The unified query contract for the whole read surface.

One frozen, JSON-round-trippable :class:`QuerySpec` describes every read
the service answers — which stored result (``key`` / ``fingerprint`` /
``network`` / ``device`` / ``name``), which rows (``where`` filters),
which order (``metric`` + ``maximize``), which columns (``select``),
and which page (``top_k`` / ``limit`` / ``cursor``).  The same object is
consumed by :meth:`ResultStore.query <repro.service.store.ResultStore.query>`,
the ``/v1/query``-family HTTP handlers and
:class:`~repro.service.client.ServiceClient`, so the three layers cannot
drift apart; the legacy keyword forms everywhere are thin shims that
build a ``QuerySpec``.

This module is deliberately stdlib-only (no NumPy): the client imports it
too, and a query *description* needs no array machinery.

Metric namespace
----------------
A metric is any scalar design-point column: the top-level fields of the
persisted point dict (``throughput_gops``, ``device_name``, ...), the
dotted nested scalars (``latency.pipeline_depth``, ``resources.luts``),
the ``total_latency_ms`` alias, and the derived
``multiplication_saving_factor`` (spatial / Winograd multiplications).
:func:`resolve_metric` is the single authority both query engines share,
so the columnar path and the JSONL reference path reject exactly the
same names with exactly the same message.

Cursors
-------
A cursor is an opaque base64url token addressing "the next row" of a
paginated query: the stored result's content key, the segment it lived
in when the page was cut, the rank offset into the query's row ordering,
and a hash binding it to the query shape.  Segments are append-only and
a stored result is immutable, so a cursor stays valid across appends —
and across compaction, because continuation re-resolves the result by
key.  Reusing a cursor with different filters/sort/select is rejected
(the binding hash will not match) instead of silently returning rows
from a different ordering.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "QuerySpec",
    "QueryPage",
    "ParetoPage",
    "BestResult",
    "resolve_metric",
    "encode_cursor",
    "decode_cursor",
    "SCALAR_COLUMNS",
    "METRIC_ALIASES",
    "DERIVED_METRICS",
    "WHERE_OPS",
]

#: Every scalar column of the persisted design-point schema, as a dotted
#: path into the point dict, with its comparison kind (``num`` / ``str``
#: / ``bool``).  Order follows the canonical ``point_to_dict`` layout.
SCALAR_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("name", "str"),
    ("m", "num"),
    ("r", "num"),
    ("parallel_pes", "num"),
    ("multipliers", "num"),
    ("frequency_mhz", "num"),
    ("shared_data_transform", "bool"),
    ("device_name", "str"),
    ("precision", "str"),
    ("latency.m", "num"),
    ("latency.r", "num"),
    ("latency.parallel_pes", "num"),
    ("latency.frequency_mhz", "num"),
    ("latency.pipeline_depth", "num"),
    ("latency.total_latency_ms", "num"),
    ("latency.spatial_ops", "num"),
    ("resources.luts", "num"),
    ("resources.registers", "num"),
    ("resources.dsp_slices", "num"),
    ("resources.bram_kbits", "num"),
    ("resources.multipliers", "num"),
    ("throughput_gops", "num"),
    ("multiplier_efficiency", "num"),
    ("power_watts", "num"),
    ("power_efficiency", "num"),
    ("spatial_multiplications", "num"),
    ("winograd_multiplications", "num"),
    ("implementation_transform_ops", "num"),
    ("workload_name", "str"),
    ("bit_width", "num"),
    ("max_rel_error", "num"),
    ("mean_rel_error", "num"),
)

#: Design-point attribute names that are aliases of a nested column (the
#: legacy API sorted on ``total_latency_ms`` via the point property).
METRIC_ALIASES: Dict[str, str] = {
    "total_latency_ms": "latency.total_latency_ms",
}

#: Derived metrics computed from two columns (numerator, denominator).
DERIVED_METRICS: Dict[str, Tuple[str, str]] = {
    "multiplication_saving_factor": (
        "spatial_multiplications",
        "winograd_multiplications",
    ),
}

#: Comparison operators a ``where`` filter may use.
WHERE_OPS: Tuple[str, ...] = ("==", "!=", "<", "<=", ">", ">=")

_COLUMN_KINDS: Dict[str, str] = dict(SCALAR_COLUMNS)


def resolve_metric(metric: str) -> Tuple[str, str]:
    """Resolve a metric name to ``(column_path, kind)``.

    ``kind`` is ``num``/``str``/``bool``; derived metrics resolve to
    ``("derived:<name>", "num")``.  Raises ``ValueError`` with the same
    ``unknown metric`` message the legacy getattr-based path produced.
    """
    if not isinstance(metric, str):
        raise ValueError(f"unknown metric {metric!r}")
    path = METRIC_ALIASES.get(metric, metric)
    if path in _COLUMN_KINDS:
        return path, _COLUMN_KINDS[path]
    if metric in DERIVED_METRICS:
        return f"derived:{metric}", "num"
    raise ValueError(f"unknown metric {metric!r}")


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


@dataclass(frozen=True)
class QuerySpec:
    """One declarative read over the result store (frozen, JSON-ready).

    Result selection: ``key`` wins; a ``cursor`` re-addresses the result
    its first page came from; otherwise the newest stored result matching
    ``fingerprint``/``network``/``device``/``name`` is used.  ``network``
    and ``device`` additionally filter rows (fronts, for Pareto reads).

    Row shape: ``where`` is a tuple of ``(metric, op, value)`` filters
    (all must hold), ``metric``+``maximize`` sort (stable; ``maximize``
    defaults to the metric's known direction), ``select`` projects flat
    ``{metric: value}`` rows instead of full point dicts, ``top_k`` caps
    the ordered row set, and ``limit``/``cursor`` paginate what is left.
    """

    key: Optional[str] = None
    fingerprint: Optional[str] = None
    name: Optional[str] = None
    network: Optional[str] = None
    device: Optional[str] = None
    where: Tuple[Tuple[str, str, Any], ...] = ()
    metric: Optional[str] = None
    maximize: Optional[bool] = None
    objectives: Optional[Tuple[Tuple[str, bool], ...]] = None
    select: Optional[Tuple[str, ...]] = None
    top_k: Optional[int] = None
    limit: Optional[int] = None
    cursor: Optional[str] = None

    def __post_init__(self) -> None:
        # Normalize list-ish inputs to hashable tuples, then validate.
        object.__setattr__(
            self, "where", tuple(tuple(clause) for clause in (self.where or ()))
        )
        if self.objectives is not None:
            object.__setattr__(
                self, "objectives", tuple(tuple(pair) for pair in self.objectives)
            )
        if self.select is not None:
            object.__setattr__(self, "select", tuple(self.select))
        self._validate()

    # ------------------------------------------------------------------ #
    def _validate(self) -> None:
        for attr in ("key", "fingerprint", "name", "network", "device", "cursor"):
            value = getattr(self, attr)
            if value is not None and not isinstance(value, str):
                raise ValueError(
                    f"field {attr!r} must be str, got {type(value).__name__}"
                )
        for attr in ("top_k", "limit"):
            value = getattr(self, attr)
            if value is None:
                continue
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(
                    f"field {attr!r} must be int, got {type(value).__name__}"
                )
            if value < 1:
                raise ValueError(f"{attr} must be >= 1")
        if self.maximize is not None and not isinstance(self.maximize, bool):
            raise ValueError(
                f"field 'maximize' must be bool, got {type(self.maximize).__name__}"
            )
        if self.metric is not None:
            resolve_metric(self.metric)
        elif self.maximize is not None:
            raise ValueError("maximize requires a metric")
        for clause in self.where:
            if len(clause) != 3:
                raise ValueError(
                    "where must be a list of [metric, op, value] triples"
                )
            metric, op, value = clause
            _, kind = resolve_metric(metric)
            if op not in WHERE_OPS:
                raise ValueError(
                    f"unknown where operator {op!r}; expected one of {list(WHERE_OPS)}"
                )
            if kind == "num":
                if not _is_number(value):
                    raise ValueError(
                        f"where value for {metric!r} must be a number, got {value!r}"
                    )
            elif op not in ("==", "!="):
                raise ValueError(
                    f"where operator {op!r} requires a numeric metric, "
                    f"and {metric!r} is {kind}"
                )
            elif kind == "str" and not isinstance(value, str):
                raise ValueError(
                    f"where value for {metric!r} must be a string, got {value!r}"
                )
            elif kind == "bool" and not isinstance(value, bool):
                raise ValueError(
                    f"where value for {metric!r} must be a boolean, got {value!r}"
                )
        if self.objectives is not None:
            if not all(
                len(pair) == 2
                and isinstance(pair[0], str)
                and isinstance(pair[1], bool)
                for pair in self.objectives
            ):
                # The bool check matters: a truthy non-bool ("min", 1)
                # would silently flip the optimization direction.
                raise ValueError(
                    "objectives must be a list of [metric, maximize-bool] pairs"
                )
        if self.select is not None:
            for metric in self.select:
                resolve_metric(metric)

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form with unset fields omitted; inverse of :meth:`from_dict`."""
        out: Dict[str, Any] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if value is None or value == ():
                continue
            if spec_field.name in ("where", "objectives"):
                value = [list(item) for item in value]
            elif spec_field.name == "select":
                value = list(value)
            out[spec_field.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "QuerySpec":
        """Build and validate a spec from its JSON form (``ValueError`` on bad input)."""
        if not isinstance(data, dict):
            raise ValueError(
                f"query spec must be a mapping, got {type(data).__name__}"
            )
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown query fields {sorted(unknown)}; "
                f"known fields: {sorted(known)}"
            )
        kwargs = dict(data)
        for listy, what in (("where", "[metric, op, value] triples"),
                            ("objectives", "[metric, maximize-bool] pairs")):
            if kwargs.get(listy) is not None:
                value = kwargs[listy]
                if not isinstance(value, list) or not all(
                    isinstance(item, (list, tuple)) for item in value
                ):
                    raise ValueError(f"{listy} must be a list of {what}")
        if kwargs.get("select") is not None:
            select = kwargs["select"]
            if not isinstance(select, list) or not all(
                isinstance(item, str) for item in select
            ):
                raise ValueError("select must be a list of metric names")
        return cls(**kwargs)

    # ------------------------------------------------------------------ #
    def binding_hash(self, mode: str) -> str:
        """Hash of the fields a cursor must hold fixed between pages.

        Result identity (``key``) travels separately inside the cursor;
        everything that shapes the row *ordering* — filters, sort,
        projection, objectives and the query mode — is bound here, so a
        cursor cannot be replayed against a different ordering.
        """
        bound = {
            "mode": mode,
            "network": self.network,
            "device": self.device,
            "where": [list(clause) for clause in self.where],
            "metric": self.metric,
            "maximize": self.maximize,
            "objectives": None
            if self.objectives is None
            else [list(pair) for pair in self.objectives],
            "select": None if self.select is None else list(self.select),
            "top_k": self.top_k,
        }
        canonical = json.dumps(bound, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]


# --------------------------------------------------------------------- #
# Cursor codec
# --------------------------------------------------------------------- #
_CURSOR_VERSION = 1


def encode_cursor(key: str, segment: str, offset: int, binding: str) -> str:
    """Opaque continuation token: result key + segment + row rank + binding."""
    payload = {
        "v": _CURSOR_VERSION,
        "k": key,
        "s": segment,
        "o": offset,
        "q": binding,
    }
    raw = json.dumps(payload, separators=(",", ":")).encode()
    return base64.urlsafe_b64encode(raw).decode().rstrip("=")


def decode_cursor(cursor: str) -> Dict[str, Any]:
    """Decode/validate a cursor token; ``ValueError`` for anything malformed."""
    if not isinstance(cursor, str) or not cursor:
        raise ValueError("invalid cursor: not a token")
    padded = cursor + "=" * (-len(cursor) % 4)
    try:
        raw = base64.urlsafe_b64decode(padded.encode())
        payload = json.loads(raw)
    except (binascii.Error, UnicodeDecodeError, json.JSONDecodeError, ValueError):
        raise ValueError("invalid cursor: not a cursor token") from None
    if not isinstance(payload, dict) or payload.get("v") != _CURSOR_VERSION:
        raise ValueError("invalid cursor: unsupported cursor version")
    if not isinstance(payload.get("k"), str) or not isinstance(payload.get("q"), str):
        raise ValueError("invalid cursor: missing result binding")
    offset = payload.get("o")
    if not isinstance(offset, int) or isinstance(offset, bool) or offset < 0:
        raise ValueError("invalid cursor: bad row offset")
    return payload


# --------------------------------------------------------------------- #
# Page results
# --------------------------------------------------------------------- #
@dataclass
class QueryPage:
    """One page of a filtered/sorted query: rows + continuation state."""

    key: str
    rows: List[Dict[str, Any]]
    total: int
    next_cursor: Optional[str] = None


@dataclass
class ParetoPage:
    """One page of per-network Pareto fronts (flattened in network order)."""

    key: str
    objectives: List[List[Any]]
    fronts: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)
    total: int = 0
    next_cursor: Optional[str] = None


@dataclass
class BestResult:
    """The single best row by a metric, with the comparison value."""

    key: str
    metric: str
    value: float
    row: Dict[str, Any]

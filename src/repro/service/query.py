"""Query execution engines over stored results.

Two engines answer the same :class:`~repro.service.queryspec.QuerySpec`
with **identical rows, ordering and errors**:

* :class:`ColumnarEngine` — vectorized column scans over a memory-mapped
  :class:`~repro.service.columnar.ColumnarBlock`: boolean-mask filters,
  stable NumPy argsorts, chunked Pareto domination masks.  Rows are
  materialized only for the final returned page.
* :class:`ReferenceEngine` — the plain-Python reference over a decoded
  result payload, used for legacy JSONL segments and opaque columnar
  blocks — and as the oracle the equivalence tests hold the columnar
  path to.

Semantics are the legacy server's, preserved exactly: filters are
equality over ``workload_name``/``device_name`` plus ``where`` clauses;
sorting is *stable* in both directions (ties keep stored order, matching
``sorted(..., reverse=maximize)``); Pareto fronts are per-network over
the stored row order with the classic no-worse-in-all /
strictly-better-in-one domination; ``best`` breaks ties toward the
earliest row and raises on NaN with the same message as
:func:`repro.core.design_space.best_by`.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..dse.campaign import metric_direction
from .queryspec import DERIVED_METRICS, QuerySpec, resolve_metric

try:  # NumPy is optional at import time: the reference engine is pure python.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-free installs
    np = None  # type: ignore[assignment]

__all__ = ["ColumnarEngine", "ReferenceEngine", "query_rows", "pareto_rows", "best_row"]

_OPS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _non_numeric(path: str) -> ValueError:
    return ValueError(f"column {path!r} holds non-numeric values")


def _not_stored(path: str) -> ValueError:
    return ValueError(f"column {path!r} is not stored in this result")


def _numeric_sort_key(value: Any) -> Tuple[bool, Any]:
    """Total-order sort key matching NumPy's (NaN sorts greatest)."""
    is_nan = isinstance(value, float) and math.isnan(value)
    return (is_nan, 0.0 if is_nan else value)


# --------------------------------------------------------------------- #
# Columnar engine
# --------------------------------------------------------------------- #
class ColumnarEngine:
    """Vectorized query execution over one memory-mapped columnar block."""

    def __init__(self, block) -> None:
        self.block = block
        self.rows = block.rows

    # -- column access ------------------------------------------------- #
    def _numeric(self, metric: str) -> "np.ndarray":
        """A metric's values as a numeric array (exact storage dtypes)."""
        path, _kind = resolve_metric(metric)
        if path.startswith("derived:"):
            numerator, denominator = DERIVED_METRICS[path.split(":", 1)[1]]
            with np.errstate(divide="ignore", invalid="ignore"):
                return self._numeric(numerator).astype(np.float64) / self._numeric(
                    denominator
                ).astype(np.float64)
        stored = self.block.columns().get(path)
        if stored is None:
            # A schema-evolution gap: the block predates this column.
            raise _not_stored(path)
        if stored in ("str", "json"):
            raise _non_numeric(path)
        if stored == "optint":
            values = self.block.column(path).astype(np.float64)
            values[self.block.null_mask(path).astype(bool)] = np.nan
            return values
        return self.block.column(path)

    def _float_values(self, metric: str) -> "np.ndarray":
        """A metric as float64 — the ``float(getattr(...))`` equivalent."""
        return self._numeric(metric).astype(np.float64)

    def name_at(self, index: int) -> str:
        """The design-point name stored at row ``index``."""
        return self.block.pool()[int(self.block.column("name")[index])]

    # -- filtering ----------------------------------------------------- #
    def match_indices(self, spec: QuerySpec, use_device: bool = True) -> "np.ndarray":
        """Row indices matching the spec's network/device/where filters."""
        mask = np.ones(self.rows, dtype=bool)
        if spec.network is not None:
            mask &= self.block.column("workload_name") == self.block.pool_id(spec.network)
        if use_device and spec.device is not None:
            mask &= self.block.column("device_name") == self.block.pool_id(spec.device)
        for metric, op, value in spec.where:
            path, kind = resolve_metric(metric)
            stored = None if path.startswith("derived:") else self.block.columns().get(path)
            if kind == "str":
                if self.block.columns().get(path) is None:
                    raise _not_stored(path)
                ids = self.block.column(path)
                clause = _OPS[op](ids, self.block.pool_id(value))
            else:
                values = self._numeric(metric)
                if isinstance(value, bool):
                    value = int(value)
                elif stored == "bool":
                    values = values.astype(np.int64)
                clause = _OPS[op](values, value)
            mask &= clause
        return np.nonzero(mask)[0]

    # -- ordering ------------------------------------------------------ #
    def sort_rows(self, indices: "np.ndarray", metric: str, maximize: bool) -> "np.ndarray":
        """``indices`` stably sorted by ``metric``, descending if maximize."""
        path, kind = resolve_metric(metric)
        stored = None if path.startswith("derived:") else self.block.columns().get(path)
        if not path.startswith("derived:") and stored is None:
            raise _not_stored(path)
        if kind == "str" or stored in ("str", "json"):
            if kind != "str":
                raise _non_numeric(path)
            texts = self.block.strings(path)
            return np.array(
                sorted(indices.tolist(), key=lambda i: texts[i], reverse=maximize),
                dtype=np.int64,
            )
        sub = self._numeric(metric)[indices]
        if maximize:
            # Stable descending: stable-ascending over the reversed array,
            # mapped back — ties keep the original (stored) order, exactly
            # like ``sorted(..., reverse=True)``.
            reversed_order = np.argsort(sub[::-1], kind="stable")
            order = (len(sub) - 1 - reversed_order)[::-1]
        else:
            order = np.argsort(sub, kind="stable")
        return indices[order]

    # -- grouping / pareto --------------------------------------------- #
    def network_groups(self) -> List[Tuple[str, "np.ndarray"]]:
        """(workload name, row indices) per network, first-appearance order."""
        ids = self.block.column("workload_name")
        if not len(ids):
            return []
        unique, first = np.unique(ids, return_index=True)
        pool = self.block.pool()
        groups = []
        for gid in unique[np.argsort(first, kind="stable")]:
            groups.append((pool[int(gid)], np.nonzero(ids == gid)[0]))
        return groups

    def front_indices(
        self, indices: "np.ndarray", objectives: Sequence[Tuple[str, bool]]
    ) -> "np.ndarray":
        """Non-dominated subset of ``indices``, stored order preserved."""
        if not len(indices):
            return indices
        values = np.stack(
            [
                self._float_values(metric)[indices] * (1.0 if maximize else -1.0)
                for metric, maximize in objectives
            ],
            axis=1,
        )
        count = values.shape[0]
        keep = np.ones(count, dtype=bool)
        chunk = 256
        for start in range(0, count, chunk):
            block = values[start : start + chunk]
            # j dominates i: no worse in every objective, better in one.
            no_worse = (values[None, :, :] >= block[:, None, :]).all(axis=-1)
            better = (values[None, :, :] > block[:, None, :]).any(axis=-1)
            keep[start : start + chunk] = ~(no_worse & better).any(axis=1)
        return indices[keep]

    # -- best ---------------------------------------------------------- #
    def best(self, indices: "np.ndarray", metric: str, maximize: bool) -> Tuple[int, float]:
        """(row index, value) of the extreme row by ``metric`` in ``indices``."""
        resolve_metric(metric)
        if not len(indices):
            raise ValueError("no design points to choose from")
        values = self._float_values(metric)[indices]
        nans = np.isnan(values)
        if nans.any():
            first_nan = indices[int(np.argmax(nans))]
            raise ValueError(
                f"metric {metric!r} is NaN for design point "
                f"{self.name_at(int(first_nan))!r}"
            )
        position = int(np.argmax(values) if maximize else np.argmin(values))
        return int(indices[position]), float(values[position])

    # -- materialization ----------------------------------------------- #
    def materialize(
        self, indices: "np.ndarray", select: Optional[Tuple[str, ...]]
    ) -> List[Dict[str, Any]]:
        """Rows as dicts — full point payloads, or the ``select`` projection."""
        if select is None:
            return self.block.row_dicts(indices)
        projected: Dict[str, List[Any]] = {}
        for metric in select:
            path, kind = resolve_metric(metric)
            if path.startswith("derived:"):
                values = self._numeric(metric)[indices]
                projected[metric] = [float(v) for v in values]
                continue
            stored = self.block.columns().get(path)
            if stored is None:
                raise _not_stored(path)
            if stored in ("str", "json"):
                pool = self.block.pool()
                column = self.block.column(path)
                projected[metric] = [pool[int(column[i])] for i in indices]
            elif stored == "bool":
                column = self.block.column(path)
                projected[metric] = [bool(column[i]) for i in indices]
            elif stored == "optint":
                column = self.block.column(path)
                mask = self.block.null_mask(path)
                projected[metric] = [
                    None if mask[i] else int(column[i]) for i in indices
                ]
            elif stored == "mixed":
                column = self.block.column(path)
                mask = self.block.int_mask(path)
                projected[metric] = [
                    int(column[i]) if mask[i] else float(column[i]) for i in indices
                ]
            else:
                column = self.block.column(path)
                projected[metric] = column[indices].tolist()
        return [
            {metric: projected[metric][row] for metric in select}
            for row in range(len(indices))
        ]


# --------------------------------------------------------------------- #
# Reference engine
# --------------------------------------------------------------------- #
class ReferenceEngine:
    """Plain-Python execution over a decoded result payload.

    Used for JSONL segments and opaque blocks; also the oracle the
    columnar engine is tested against, so its loops deliberately mirror
    the legacy ``select``/``sorted``/``pareto_front``/``best_by`` code.
    """

    def __init__(self, payload: Dict[str, Any]) -> None:
        self.points: List[Dict[str, Any]] = payload.get("points", [])
        self.rows = len(self.points)

    # -- value access -------------------------------------------------- #
    def value(self, index: int, metric: str) -> Any:
        """A metric's raw value for row ``index`` (dotted-path lookup)."""
        path, _kind = resolve_metric(metric)
        point = self.points[index]
        if path.startswith("derived:"):
            numerator, denominator = DERIVED_METRICS[path.split(":", 1)[1]]
            return self.value(index, numerator) / self.value(index, denominator)
        value: Any = point
        for part in path.split("."):
            try:
                value = value[part]
            except KeyError:
                # Payloads written before this column existed lack the key.
                raise _not_stored(path) from None
        return value

    def _numeric_value(self, index: int, metric: str) -> Any:
        value = self.value(index, metric)
        if isinstance(value, str) or isinstance(value, dict):
            path, _ = resolve_metric(metric)
            raise _non_numeric(path)
        if value is None:
            # Nullable numeric columns (``bit_width``): compare as NaN,
            # like the columnar engine's null mask.
            return float("nan")
        return value

    def name_at(self, index: int) -> str:
        """The design-point name stored at row ``index``."""
        return self.points[index]["name"]

    # -- filtering ----------------------------------------------------- #
    def match_indices(self, spec: QuerySpec, use_device: bool = True) -> List[int]:
        """Row indices matching the spec's network/device/where filters."""
        indices = []
        for index, point in enumerate(self.points):
            if spec.network is not None and point["workload_name"] != spec.network:
                continue
            if use_device and spec.device is not None and point["device_name"] != spec.device:
                continue
            keep = True
            for metric, op, value in spec.where:
                _path, kind = resolve_metric(metric)
                if kind == "str":
                    row_value = self.value(index, metric)
                else:
                    row_value = self._numeric_value(index, metric)
                if not _OPS[op](row_value, value):
                    keep = False
                    break
            if keep:
                indices.append(index)
        return indices

    # -- ordering ------------------------------------------------------ #
    def sort_rows(self, indices: List[int], metric: str, maximize: bool) -> List[int]:
        """``indices`` stably sorted by ``metric``, descending if maximize."""
        _path, kind = resolve_metric(metric)
        if kind == "str":
            key = lambda i: self.value(i, metric)  # noqa: E731
        else:
            key = lambda i: _numeric_sort_key(self._numeric_value(i, metric))  # noqa: E731
        return sorted(indices, key=key, reverse=maximize)

    # -- grouping / pareto --------------------------------------------- #
    def network_groups(self) -> List[Tuple[str, List[int]]]:
        """(workload name, row indices) per network, first-appearance order."""
        groups: Dict[str, List[int]] = {}
        for index, point in enumerate(self.points):
            groups.setdefault(point["workload_name"], []).append(index)
        return list(groups.items())

    def front_indices(
        self, indices: List[int], objectives: Sequence[Tuple[str, bool]]
    ) -> List[int]:
        """Non-dominated subset of ``indices``, stored order preserved."""
        values = [
            [float(self._numeric_value(i, metric)) for metric, _max in objectives]
            for i in indices
        ]

        def dominates(a: List[float], b: List[float]) -> bool:
            """True when ``a`` is no worse everywhere and better somewhere."""
            better = False
            for (_, maximize), va, vb in zip(objectives, a, b):
                if (va < vb) if maximize else (va > vb):
                    return False
                if (va > vb) if maximize else (va < vb):
                    better = True
            return better

        kept = []
        for row, candidate in enumerate(values):
            if any(
                dominates(other, candidate)
                for other_row, other in enumerate(values)
                if other_row != row
            ):
                continue
            kept.append(indices[row])
        return kept

    # -- best ---------------------------------------------------------- #
    def best(self, indices: List[int], metric: str, maximize: bool) -> Tuple[int, float]:
        """(row index, value) of the extreme row by ``metric`` in ``indices``."""
        resolve_metric(metric)
        best_index: Optional[int] = None
        best_value = 0.0
        for index in indices:
            value = float(self._numeric_value(index, metric))
            if math.isnan(value):
                raise ValueError(
                    f"metric {metric!r} is NaN for design point {self.name_at(index)!r}"
                )
            if best_index is None or (
                value > best_value if maximize else value < best_value
            ):
                best_index = index
                best_value = value
        if best_index is None:
            raise ValueError("no design points to choose from")
        return best_index, best_value

    # -- materialization ----------------------------------------------- #
    def materialize(
        self, indices: Sequence[int], select: Optional[Tuple[str, ...]]
    ) -> List[Dict[str, Any]]:
        """Rows as dicts — full point payloads, or the ``select`` projection."""
        if select is None:
            return [self.points[i] for i in indices]
        return [
            {metric: self.value(i, metric) for metric in select} for i in indices
        ]


# --------------------------------------------------------------------- #
# Executors (engine-agnostic)
# --------------------------------------------------------------------- #
def _page(total_rows: int, start: int, limit: Optional[int]) -> Tuple[int, Optional[int]]:
    """(end, next_start) of a page over ``total_rows`` ordered rows."""
    end = total_rows if limit is None else min(start + limit, total_rows)
    return end, (end if end < total_rows else None)


def query_rows(
    engine, spec: QuerySpec, start: int = 0, limit: Optional[int] = None
) -> Tuple[List[Dict[str, Any]], int, Optional[int]]:
    """Filtered/sorted/top-k rows of one result, one page at a time.

    Returns ``(rows, total, next_start)``; only the page's rows are
    materialized.
    """
    indices = engine.match_indices(spec)
    if spec.metric is not None:
        maximize = (
            spec.maximize
            if spec.maximize is not None
            else metric_direction(spec.metric)
        )
        indices = engine.sort_rows(indices, spec.metric, maximize)
    if spec.top_k is not None:
        indices = indices[: spec.top_k]
    total = len(indices)
    end, next_start = _page(total, start, limit)
    return engine.materialize(indices[start:end], spec.select), total, next_start


def _normalize_objectives(objectives) -> List[Tuple[str, bool]]:
    pairs: List[Tuple[str, bool]] = []
    for objective in objectives:
        if isinstance(objective, str):
            pairs.append((objective, True))
        elif hasattr(objective, "metric"):
            pairs.append((objective.metric, bool(objective.maximize)))
        else:
            metric, maximize = objective
            pairs.append((metric, bool(maximize)))
    if not pairs:
        raise ValueError("at least one objective is required")
    for metric, _maximize in pairs:
        resolve_metric(metric)
    return pairs


def pareto_rows(
    engine,
    spec: QuerySpec,
    default_objectives: Sequence,
    start: int = 0,
    limit: Optional[int] = None,
) -> Tuple[List[List[Any]], Dict[str, List[Dict[str, Any]]], int, Optional[int]]:
    """Per-network Pareto fronts, paginated over the flattened front rows.

    Fronts are computed per network over the stored row order (``device``
    selects the result, never filters front rows — legacy semantics) and
    flattened in network first-appearance order for pagination; the page
    is regrouped into ``{network: rows}``.  Returns
    ``(objectives_echo, fronts, total, next_start)``.
    """
    if spec.where:
        raise ValueError("where filters are not supported for pareto queries")
    objectives = _normalize_objectives(
        spec.objectives if spec.objectives is not None else default_objectives
    )
    flat: List[Tuple[str, int]] = []
    for network, group in engine.network_groups():
        if spec.network is not None and network != spec.network:
            continue
        for index in engine.front_indices(group, objectives):
            flat.append((network, int(index)))
    total = len(flat)
    end, next_start = _page(total, start, limit)
    page = flat[start:end]
    rows = engine.materialize([index for _network, index in page], spec.select)
    fronts: Dict[str, List[Dict[str, Any]]] = {}
    for (network, _index), row in zip(page, rows):
        fronts.setdefault(network, []).append(row)
    return [list(pair) for pair in objectives], fronts, total, next_start


def best_row(engine, spec: QuerySpec) -> Tuple[Dict[str, Any], float]:
    """The single best row by ``spec.metric`` (legacy ``best_by`` semantics)."""
    if spec.metric is None:
        raise ValueError("best requires a metric")
    maximize = (
        spec.maximize if spec.maximize is not None else metric_direction(spec.metric)
    )
    indices = engine.match_indices(spec)
    index, value = engine.best(indices, spec.metric, maximize)
    row = engine.materialize([index], spec.select)[0]
    return row, value

"""Thin stdlib HTTP client for the ``repro.service`` server.

Used by the test suite, the service benchmark and the CI smoke step; it
is also the reference for how any other consumer should talk to the
server.  Every call opens its own ``http.client`` connection, so one
:class:`ServiceClient` may be shared freely across threads.

>>> client = ServiceClient(port=8787)
>>> point = client.evaluate("vgg16-d", m=4, multiplier_budget=512)
>>> front = client.pareto(fingerprint=spec.fingerprint())
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Any, Dict, Iterator, List, Optional, Union

from ..core.design_point import DesignPoint
from ..experiments.persistence import point_from_dict
from ..experiments.spec import ExperimentSpec
from ..obs.tracing import TRACE_HEADER, current_trace_id, new_trace_id
from .queryspec import QuerySpec

__all__ = ["ServiceError", "InfeasibleDesignError", "ServiceClient"]


class ServiceError(Exception):
    """An HTTP error response from the service (status + server message).

    ``retry_after_s`` carries the server's ``Retry-After`` header (parsed
    to seconds) when present — set on 429 backpressure responses so a
    caller can sleep exactly as long as the server asked.
    """

    def __init__(
        self, status: int, message: str, retry_after_s: Optional[float] = None
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after_s = retry_after_s


class InfeasibleDesignError(ValueError):
    """An ``evaluate`` request whose design is infeasible on the device.

    Subclasses ``ValueError`` because that is what the in-process
    evaluator raises for the same configuration.
    """


class ServiceClient:
    """Synchronous JSON client for one ``repro.service`` endpoint.

    ``retries`` (opt-in, default 0) retries **idempotent GET requests**
    that fail with a connection-level error — refused, reset, timed out —
    with exponential backoff plus jitter.  Non-GET requests are never
    auto-retried: ``POST /v1/leases`` grants leases and ``POST
    .../complete`` stores results, so a blind resend after a lost response
    could double-claim; callers that can retry safely (like the fleet
    worker loop, whose protocol is idempotent by design) do so themselves.
    HTTP error *responses* (4xx/5xx) are never retried — the server
    answered; the answer was no.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8787,
        timeout: float = 60.0,
        retries: int = 0,
        backoff_s: float = 0.05,
        backoff_max_s: float = 2.0,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s

    # ------------------------------------------------------------------ #
    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        attempts = 1 + (self.retries if method == "GET" else 0)
        for attempt in range(attempts):
            try:
                return self._request_once(method, path, body)
            except (OSError, http.client.HTTPException):
                if attempt + 1 >= attempts:
                    raise
                # Full jitter on an exponential schedule: concurrent
                # clients hitting the same blip spread out instead of
                # re-stampeding the server in lockstep.
                delay = min(self.backoff_max_s, self.backoff_s * (2**attempt))
                time.sleep(delay * (0.5 + random.random() * 0.5))
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_once(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """One HTTP round-trip (no retries); raises ``ServiceError`` on 4xx/5xx.

        Every request carries an ``X-Repro-Trace-Id`` header: the ambient
        trace id when the caller bound one (``with trace_context(): ...``),
        a freshly minted id otherwise.  The server echoes it and stamps it
        on every log line the request touches, across processes.
        """
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = None if body is None else json.dumps(body)
            headers = {TRACE_HEADER: current_trace_id() or new_trace_id()}
            if payload:
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            data = json.loads(response.read().decode() or "{}")
            if response.status >= 400:
                raise ServiceError(
                    response.status,
                    data.get("error", response.reason or "error"),
                    retry_after_s=_parse_retry_after(
                        response.getheader("Retry-After")
                    ),
                )
            return data
        finally:
            connection.close()

    def _request_text(self, path: str) -> str:
        """GET a non-JSON endpoint (``/metrics``) and return its body text."""
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            connection.request(
                "GET", path, headers={TRACE_HEADER: current_trace_id() or new_trace_id()}
            )
            response = connection.getresponse()
            text = response.read().decode()
            if response.status >= 400:
                message = text
                try:
                    message = json.loads(text).get("error", text)
                except (json.JSONDecodeError, AttributeError):
                    pass
                raise ServiceError(response.status, message)
            return text
        finally:
            connection.close()

    @staticmethod
    def _query_string(params: Dict[str, Optional[str]]) -> str:
        from urllib.parse import urlencode

        filtered = {key: value for key, value in params.items() if value is not None}
        return f"?{urlencode(filtered)}" if filtered else ""

    # ------------------------------------------------------------------ #
    def health(self) -> Dict[str, Any]:
        """The ``/health`` payload: liveness, store, batcher and job stats."""
        return self._request("GET", "/health")

    def stats(self) -> Dict[str, Any]:
        """``GET /v1/stats`` — the server's metrics as JSON.

        Each entry maps a metric family name to its type, help text and
        samples; histogram samples carry ``count``/``sum`` plus
        p50/p95/p99 estimates.  404s (:class:`ServiceError`) when the
        server runs with ``--no-metrics``.
        """
        return self._request("GET", "/v1/stats")["metrics"]

    def metrics_text(self) -> str:
        """``GET /metrics`` — the raw Prometheus text exposition."""
        return self._request_text("/metrics")

    def results(
        self,
        network: Optional[str] = None,
        device: Optional[str] = None,
        fingerprint: Optional[str] = None,
        name: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Metadata of stored results matching the filters, oldest first."""
        query = self._query_string(
            {"network": network, "device": device, "fingerprint": fingerprint, "name": name}
        )
        return self._request("GET", f"/v1/results{query}")["results"]

    def result(self, key: str) -> Dict[str, Any]:
        """The full persistence payload of one stored result."""
        return self._request("GET", f"/v1/results/{key}")["result"]

    def report(self, key: str, metric: Optional[str] = None) -> Dict[str, Any]:
        """Summary/comparison rows of a stored result."""
        query = self._query_string({"metric": metric})
        return self._request("GET", f"/v1/results/{key}/report{query}")["report"]

    # ------------------------------------------------------------------ #
    def query_page(
        self, spec: Optional[QuerySpec] = None, **fields: Any
    ) -> Dict[str, Any]:
        """One raw ``POST /v1/query`` page (``points``/``total``/``next_cursor``).

        Pass a :class:`~repro.service.queryspec.QuerySpec` or its fields
        as keywords; rows come back exactly as the server sent them (full
        point dicts, or flat ``{metric: value}`` rows under ``select``).
        """
        body = spec.to_dict() if isinstance(spec, QuerySpec) else _drop_none(fields)
        return self._request("POST", "/v1/query", body)

    def iter_query(
        self, spec: Optional[QuerySpec] = None, **fields: Any
    ) -> Iterator[Any]:
        """All rows of a query, following ``next_cursor`` transparently.

        Yields :class:`DesignPoint` objects (or raw ``select`` rows) one
        page at a time; the cursor pins both the stored result and the
        row ordering, so iteration is stable across concurrent appends
        and compactions.
        """
        body = spec.to_dict() if isinstance(spec, QuerySpec) else _drop_none(fields)
        select = body.get("select")
        while True:
            payload = self._request("POST", "/v1/query", body)
            for row in payload["points"]:
                yield row if select else point_from_dict(row)
            cursor = payload.get("next_cursor")
            if not cursor:
                return
            body = dict(body, cursor=cursor)

    def query(
        self,
        key: Optional[str] = None,
        fingerprint: Optional[str] = None,
        network: Optional[str] = None,
        device: Optional[str] = None,
        name: Optional[str] = None,
        metric: Optional[str] = None,
        top_k: Optional[int] = None,
        maximize: Optional[bool] = None,
        where: Optional[List] = None,
        select: Optional[List[str]] = None,
        limit: Optional[int] = None,
        cursor: Optional[str] = None,
    ) -> List[Any]:
        """Filtered (optionally metric-sorted, top-k) points of a result.

        The legacy keyword shim over the :class:`QuerySpec` surface.
        Without ``limit``/``cursor`` every row is returned (cursors are
        followed internally); with them, exactly one page.  ``where``
        adds column filters and ``select`` projects flat rows instead of
        full points.
        """
        body = _drop_none({
            "key": key, "fingerprint": fingerprint, "network": network,
            "device": device, "name": name, "metric": metric, "top_k": top_k,
            "maximize": maximize, "where": where, "select": select,
            "limit": limit, "cursor": cursor,
        })
        if limit is None and cursor is None:
            return list(self.iter_query(**body))
        payload = self._request("POST", "/v1/query", body)
        if select:
            return payload["points"]
        return [point_from_dict(point) for point in payload["points"]]

    def pareto_page(
        self, spec: Optional[QuerySpec] = None, **fields: Any
    ) -> Dict[str, Any]:
        """One raw ``POST /v1/pareto`` page (``fronts``/``total``/``next_cursor``)."""
        body = spec.to_dict() if isinstance(spec, QuerySpec) else _drop_none(fields)
        return self._request("POST", "/v1/pareto", body)

    def pareto(
        self,
        key: Optional[str] = None,
        fingerprint: Optional[str] = None,
        network: Optional[str] = None,
        name: Optional[str] = None,
        objectives: Optional[List] = None,
        device: Optional[str] = None,
        limit: Optional[int] = None,
        cursor: Optional[str] = None,
    ) -> Dict[str, List[DesignPoint]]:
        """Per-network Pareto fronts of a stored result.

        Without ``limit``/``cursor`` the complete fronts are returned
        (pages merged internally); with them, one page's worth regrouped
        per network.
        """
        body: Dict[str, Any] = _drop_none({
            "key": key, "fingerprint": fingerprint, "network": network,
            "name": name, "device": device, "limit": limit, "cursor": cursor,
        })
        if objectives is not None:
            body["objectives"] = [list(pair) for pair in objectives]
        fronts: Dict[str, List[DesignPoint]] = {}
        while True:
            payload = self._request("POST", "/v1/pareto", body)
            for front_name, front in payload["fronts"].items():
                fronts.setdefault(front_name, []).extend(
                    point_from_dict(point) for point in front
                )
            next_cursor = payload.get("next_cursor")
            if limit is not None or cursor is not None or not next_cursor:
                return fronts
            body = dict(body, cursor=next_cursor)

    def best(
        self,
        metric: str,
        key: Optional[str] = None,
        fingerprint: Optional[str] = None,
        network: Optional[str] = None,
        device: Optional[str] = None,
        name: Optional[str] = None,
        maximize: Optional[bool] = None,
        where: Optional[List] = None,
    ) -> DesignPoint:
        """The best stored point by ``metric``."""
        body = _drop_none({
            "key": key, "fingerprint": fingerprint, "network": network,
            "device": device, "name": name, "metric": metric,
            "maximize": maximize, "where": where,
        })
        payload = self._request("POST", "/v1/best", body)
        return point_from_dict(payload["point"])

    # ------------------------------------------------------------------ #
    def evaluate_raw(self, **request: Any) -> Dict[str, Any]:
        """Raw ``POST /v1/evaluate`` response (feasible flag + point/error)."""
        return self._request("POST", "/v1/evaluate", _drop_none(request))

    def evaluate(
        self,
        network: str,
        m: int,
        r: int = 3,
        multiplier_budget: Optional[int] = None,
        frequency_mhz: float = 200.0,
        shared_data_transform: bool = True,
        device: str = "xc7vx485t",
        bit_width: Optional[int] = None,
        error_budget: Optional[float] = None,
    ) -> DesignPoint:
        """Evaluate one ad-hoc design point through the batching server.

        Bit-identical to the in-process serial evaluator (modulo the
        non-persisted ``engine`` provenance field, which comes back
        ``None`` exactly as a saved-and-reloaded point would).  Raises
        :class:`InfeasibleDesignError` with the server's message when the
        configuration is infeasible or does not fit the device.
        """
        payload = self.evaluate_raw(
            network=network,
            device=device,
            m=m,
            r=r,
            multiplier_budget=multiplier_budget,
            frequency_mhz=frequency_mhz,
            shared_data_transform=shared_data_transform,
            bit_width=bit_width,
            error_budget=error_budget,
        )
        if not payload["feasible"]:
            raise InfeasibleDesignError(payload["error"])
        return point_from_dict(payload["point"])

    def submit_campaign(self, spec: Union[ExperimentSpec, Dict[str, Any]]) -> Dict[str, Any]:
        """Run a campaign server-side and persist it; returns the receipt.

        Synchronous: the call blocks until the sharded job the server
        submits internally completes.  The receipt carries ``key``
        (stored-result content key), ``fingerprint`` (the spec's),
        ``job_id``, counts and summary rows.  For fire-and-forget
        submission use :meth:`submit_job`.
        """
        spec_data = spec.to_dict() if isinstance(spec, ExperimentSpec) else spec
        return self._request("POST", "/v1/campaign", {"spec": spec_data})

    # ------------------------------------------------------------------ #
    def submit_job(self, spec: Union[ExperimentSpec, Dict[str, Any]]) -> Dict[str, Any]:
        """Submit a campaign as an asynchronous sharded job.

        Returns the job payload immediately (``id``, ``state``, shard
        counts); poll with :meth:`job_status` or block with
        :meth:`wait_for_job`.
        """
        spec_data = spec.to_dict() if isinstance(spec, ExperimentSpec) else spec
        return self._request("POST", "/v1/jobs", {"spec": spec_data})["job"]

    def job_status(self, job_id: str) -> Dict[str, Any]:
        """One job's state, per-shard progress and ETA (404 when unknown)."""
        return self._request("GET", f"/v1/jobs/{job_id}")["job"]

    def jobs_page(
        self, limit: Optional[int] = None, cursor: Optional[str] = None
    ) -> Dict[str, Any]:
        """One raw ``GET /v1/jobs`` page (``jobs``/``total``/``next_cursor``)."""
        query = self._query_string(
            {"limit": None if limit is None else str(limit), "cursor": cursor}
        )
        return self._request("GET", f"/v1/jobs{query}")

    def iter_jobs(self, page_size: Optional[int] = None) -> Iterator[Dict[str, Any]]:
        """Every tracked job, following ``next_cursor`` transparently."""
        cursor: Optional[str] = None
        while True:
            payload = self.jobs_page(limit=page_size, cursor=cursor)
            yield from payload["jobs"]
            cursor = payload.get("next_cursor")
            if not cursor:
                return

    def jobs(self) -> List[Dict[str, Any]]:
        """Every job the server tracks, oldest submission first."""
        return list(self.iter_jobs())

    def cancel_job(self, job_id: str) -> Dict[str, Any]:
        """Cancel a job's unfinished shards; returns the final job payload.

        The response's ``cancelled`` flag is ``False`` when the job had
        already reached a terminal state.
        """
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def wait_for_job(
        self,
        job_id: str,
        timeout: float = 600.0,
        poll_interval: float = 0.05,
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its final payload.

        Raises ``TimeoutError`` when ``timeout`` elapses first (the job
        keeps running server-side).
        """
        deadline = time.monotonic() + timeout
        while True:
            job = self.job_status(job_id)
            if job["state"] in ("completed", "failed", "cancelled"):
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']!r} after {timeout} s "
                    f"(progress {job.get('progress')})"
                )
            time.sleep(poll_interval)

    # ------------------------------------------------------------------ #
    # Worker-fleet lease protocol (used by ``python -m repro worker``)
    # ------------------------------------------------------------------ #
    def acquire_leases(
        self, worker: str, count: int = 1, ttl_s: Optional[float] = None
    ) -> Dict[str, Any]:
        """``POST /v1/leases`` — claim up to ``count`` pending job shards.

        The response carries ``leases`` (each with the complete shard spec
        to execute) and ``retry_after_s``, the server's poll-again hint
        when nothing was claimable.
        """
        body: Dict[str, Any] = {"worker": worker, "count": count}
        if ttl_s is not None:
            body["ttl_s"] = ttl_s
        return self._request("POST", "/v1/leases", body)

    def heartbeat_lease(self, lease_id: str) -> Dict[str, Any]:
        """Extend a lease's expiry; ``alive: false`` means it is lost."""
        return self._request("POST", f"/v1/leases/{lease_id}/heartbeat", {})

    def complete_lease(
        self,
        lease_id: str,
        result: Dict[str, Any],
        seconds: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Push a finished shard's result payload for a held lease."""
        body: Dict[str, Any] = {"result": result}
        if seconds is not None:
            body["seconds"] = seconds
        return self._request("POST", f"/v1/leases/{lease_id}/complete", body)

    def fail_lease(
        self, lease_id: str, error: str, requeue: bool = False
    ) -> Dict[str, Any]:
        """Report a shard failure (``requeue=True`` hands the shard back)."""
        return self._request(
            "POST", f"/v1/leases/{lease_id}/fail", {"error": error, "requeue": requeue}
        )

    def leases(
        self, limit: Optional[int] = None, cursor: Optional[str] = None
    ) -> Dict[str, Any]:
        """``GET /v1/leases`` — fleet statistics plus active leases.

        Paginated like ``/v1/jobs``: pass ``limit``/``cursor`` for one
        page (``next_cursor`` continues), omit both for the first page at
        the server's default size.
        """
        query = self._query_string(
            {"limit": None if limit is None else str(limit), "cursor": cursor}
        )
        return self._request("GET", f"/v1/leases{query}")


def _drop_none(body: Dict[str, Any]) -> Dict[str, Any]:
    return {key: value for key, value in body.items() if value is not None}


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    """Seconds from a ``Retry-After`` header (delta-seconds form only)."""
    if value is None:
        return None
    try:
        return float(value)
    except ValueError:
        return None

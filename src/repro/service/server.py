"""Stdlib-only asyncio HTTP server for stored and ad-hoc design queries.

``python -m repro serve`` turns the repository from a batch tool into an
online system: campaigns are computed once (by a ``POST /v1/campaign`` or
offline via the CLI), persisted in a :class:`~repro.service.store.ResultStore`,
and every subsequent "what-if" — a Pareto front, a top-k under a budget, a
single candidate design — is answered from the store or from a
micro-batched vectorized evaluation, without the client owning any of the
engine.

Endpoints (all JSON):

``GET  /health``
    Liveness plus store/batcher statistics.
``GET  /v1/results``
    Stored-result metadata; filter with ``?network=&device=&fingerprint=&name=``.
``GET  /v1/results/<key>``
    One full stored result (the versioned persistence payload).
``GET  /v1/results/<key>/report``
    Summary/comparison rows of a stored result (``?metric=`` optional).
``POST /v1/query``
    Filter/select/top-k over a stored result's points (paginated).
``POST /v1/pareto``
    Per-network Pareto fronts of a stored result (paginated).
``POST /v1/best``
    Single best point of a stored result by a metric.
``POST /v1/evaluate``
    Evaluate one ad-hoc design point.  Concurrent requests are coalesced
    by the :class:`~repro.service.batching.MicroBatcher` into stacked
    NumPy batches — responses are bit-identical to serial evaluation.
``POST /v1/jobs``
    Submit an :class:`~repro.experiments.ExperimentSpec` as an
    **asynchronous sharded job** (see :mod:`repro.service.jobs`): returns
    a job id immediately while shards evaluate on the worker pool.
``GET /v1/jobs`` / ``GET /v1/jobs/<id>``
    All jobs / one job's state, per-shard progress and ETA.
``DELETE /v1/jobs/<id>``
    Cancel a job's unfinished shards (completed shards stay stored).
``POST /v1/campaign``
    Synchronous wrapper over the job scheduler: submits the spec as a job,
    awaits completion and returns the stored result's key plus a summary.
``POST /v1/leases`` / ``GET /v1/leases``
    The pull-based **worker-fleet protocol** (see :mod:`repro.worker`):
    remote workers acquire leases on pending job shards / observability
    over every outstanding lease.
``POST /v1/leases/<id>/heartbeat|complete|fail``
    Extend a lease's expiry, push a finished shard's result payload, or
    report a worker-side failure (optionally handing the shard back).
    Leases that stop heartbeating expire and their shards re-queue, so a
    killed worker never strands a job.
``GET  /metrics`` / ``GET /v1/stats``
    Prometheus text exposition of the server's metrics / its JSON twin:
    request count + latency histograms per route, micro-batcher occupancy
    and coalesce ratio, store segment count/bytes, job queue depth and
    shard states, fleet lease counters, evaluation-cache hit rates.
    Disabled (404) when the server was started with ``--no-metrics``.

Result selection for ``query``/``pareto``/``best``: pass ``key`` for an
exact result, or ``fingerprint`` (and/or ``network``/``device``/``name``
filters) to use the latest matching stored result.  The three endpoints
share one request vocabulary — the
:class:`~repro.service.queryspec.QuerySpec` fields — and ``query``/
``pareto`` page their responses: ``limit`` (default 1000) caps the rows
returned and ``next_cursor`` (an opaque token, stable across appends and
compactions) continues where the page stopped.  ``GET /v1/jobs`` and
``GET /v1/leases`` page the same way (``?limit=&cursor=``).

Backpressure: with ``--max-pending-evals`` / ``--max-pending-jobs`` set,
a saturated micro-batcher or job queue answers ``429 Too Many Requests``
with a ``Retry-After`` header instead of buffering without bound; the
rejections are counted in the metrics.

Tracing: every request carries an ``X-Repro-Trace-Id`` header (minted
here when the client sent none), echoed on the response, propagated into
job submissions and fleet lease grants, and stamped on every structured
log line the server and workers emit — one id follows one request across
processes.

The full request/response reference, including error shapes, lives in
``docs/http-api.md`` (a test diffs it against :meth:`ResultServer.route_table`).

The HTTP layer is deliberately minimal — HTTP/1.1, ``Content-Length``
bodies, no TLS, no chunked encoding — because the transport is not the
point; the batching scheduler and the store are.  Run it behind a real
proxy if it ever faces the internet.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..core.design_space import GridEntry
from ..dse.batch import EvalRequest
from ..dse.campaign import CampaignResult
from ..experiments.persistence import point_to_dict, result_to_dict
from ..experiments.spec import ExperimentSpec
from ..obs import MetricsRegistry, get_logger
from ..obs.tracing import (
    TRACE_HEADER,
    new_trace_id,
    set_trace_id,
    valid_trace_id,
)
from ..reporting import campaign_report_payload, json_sanitize, jsonable_rows
from .batching import BatcherSaturated, MicroBatcher
from .jobs import (
    DEFAULT_LEASE_TTL_S,
    DEFAULT_SHARD_ENTRIES,
    JobManager,
    JobQueueFull,
)
from .queryspec import QuerySpec, decode_cursor, encode_cursor
from .store import ResultStore

__all__ = ["ApiError", "ResultServer", "serve", "DEFAULT_MAX_BODY_BYTES"]

SERVER_NAME = "repro-service/1"

#: Largest request body the server will buffer (32 MiB).  A spec payload
#: is a few KiB and even a Fig. 6-scale shard-result payload is a couple
#: of MiB, so the cap only stops abuse: without it a single request could
#: buffer arbitrary gigabytes into memory before JSON parsing ever ran.
DEFAULT_MAX_BODY_BYTES = 32 << 20

#: Largest Winograd input tile (``m + r - 1``) ``/v1/evaluate`` accepts.
#: Transform generation cost grows superlinearly with the tile; an
#: unbounded ``m`` would wedge the single evaluation worker (and every
#: request queued behind it) for tens of seconds.  The paper's space tops
#: out at F(7,3) = tile 9; 16 leaves generous headroom.
MAX_EVALUATE_TILE = 16

#: Deserialized stored results memoized by key (segments are append-only,
#: so a cached result can never go stale).  Small: entries can be large.
RESULT_CACHE_SIZE = 8

#: Rows per ``/v1/query``/``/v1/pareto`` response when the request sets no
#: ``limit`` — large stores no longer produce unbounded responses; follow
#: ``next_cursor`` (or use ``ServiceClient.iter_query``) for the rest.
DEFAULT_PAGE_LIMIT = 1000


#: Default rows per ``GET /v1/jobs`` / ``GET /v1/leases`` page.  Smaller
#: than the query default: listing payloads carry per-job shard tallies.
DEFAULT_LISTING_LIMIT = 500


class ApiError(Exception):
    """A client-visible error with an HTTP status code.

    ``headers`` (e.g. ``Retry-After`` on a 429) are added verbatim to the
    error response.
    """

    def __init__(
        self, status: int, message: str, headers: Optional[Dict[str, str]] = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers) if headers else {}


class RawResponse:
    """A handler's non-JSON response: raw bytes plus a content type."""

    def __init__(
        self, body: bytes, content_type: str = "text/plain; charset=utf-8"
    ) -> None:
        self.body = body
        self.content_type = content_type


# --------------------------------------------------------------------- #
# Request parsing helpers
# --------------------------------------------------------------------- #
def _field(body: Dict[str, Any], name: str, types: tuple, default: Any, required: bool = False) -> Any:
    """Typed access to an optional/required JSON body field."""
    if name not in body or body[name] is None:
        if required:
            raise ApiError(400, f"missing required field {name!r}")
        return default
    value = body[name]
    if types == (int,) and isinstance(value, bool):
        raise ApiError(400, f"field {name!r} must be an integer, got {value!r}")
    if types == (float,) and isinstance(value, int) and not isinstance(value, bool):
        value = float(value)
    if not isinstance(value, types):
        expected = "/".join(t.__name__ for t in types)
        raise ApiError(400, f"field {name!r} must be {expected}, got {type(value).__name__}")
    if isinstance(value, float) and not math.isfinite(value):
        # json.loads accepts the non-standard NaN/Infinity tokens; they
        # would flow through the batch math as poison values.
        raise ApiError(400, f"field {name!r} must be finite, got {value!r}")
    return value


def _check_fields(body: Dict[str, Any], known: set, what: str) -> None:
    unknown = set(body) - known
    if unknown:
        raise ApiError(
            400, f"unknown {what} fields {sorted(unknown)}; known fields: {sorted(known)}"
        )


class _RequestTooLarge(Exception):
    """Internal: a request declared a body beyond the configured cap."""

    def __init__(self, length: int, limit: int) -> None:
        super().__init__(f"request body of {length} bytes exceeds the {limit}-byte limit")
        self.length = length
        self.limit = limit


class ResultServer:
    """The asyncio HTTP server: a store, a batcher, a job scheduler.

    Micro-batched ``evaluate`` dispatches run on a dedicated single-thread
    executor (CPU-bound work never blocks the event loop); campaigns run
    as sharded jobs on the :class:`~repro.service.jobs.JobManager` worker
    pool (``workers`` processes, or one background thread when 1), so one
    large campaign no longer blocks other campaigns or evaluates.
    """

    #: Declarative route table: ``(method, pattern, handler name)``.
    #: ``{name}`` segments capture one path segment.  Introspectable via
    #: :meth:`route_table` — ``tests/docs`` diffs it against
    #: ``docs/http-api.md`` so the docs cannot silently rot.
    ROUTES: Tuple[Tuple[str, str, str], ...] = (
        ("GET", "/health", "_health"),
        ("GET", "/v1/results", "_list_results"),
        ("GET", "/v1/results/{key}", "_get_result"),
        ("GET", "/v1/results/{key}/report", "_report"),
        ("POST", "/v1/query", "_query"),
        ("POST", "/v1/pareto", "_pareto"),
        ("POST", "/v1/best", "_best"),
        ("POST", "/v1/evaluate", "_evaluate"),
        ("POST", "/v1/campaign", "_campaign"),
        ("POST", "/v1/jobs", "_submit_job"),
        ("GET", "/v1/jobs", "_list_jobs"),
        ("GET", "/v1/jobs/{job_id}", "_job_status"),
        ("DELETE", "/v1/jobs/{job_id}", "_cancel_job"),
        ("POST", "/v1/leases", "_acquire_leases"),
        ("GET", "/v1/leases", "_list_leases"),
        ("POST", "/v1/leases/{lease_id}/heartbeat", "_heartbeat_lease"),
        ("POST", "/v1/leases/{lease_id}/complete", "_complete_lease"),
        ("POST", "/v1/leases/{lease_id}/fail", "_fail_lease"),
        ("GET", "/metrics", "_metrics"),
        ("GET", "/v1/stats", "_stats"),
    )

    def __init__(
        self,
        store: ResultStore,
        host: str = "127.0.0.1",
        port: int = 8787,
        batch_window_ms: float = 2.0,
        max_batch: int = 256,
        workers: int = 1,
        shard_entries: int = DEFAULT_SHARD_ENTRIES,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        quiet: bool = False,
        metrics: bool = True,
        max_pending_evals: Optional[int] = None,
        max_pending_jobs: Optional[int] = None,
    ) -> None:
        if max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")
        self.store = store
        self.host = host
        self.port = port
        self.quiet = quiet
        self.max_body_bytes = max_body_bytes
        self.log = get_logger("server", enabled=not quiet)
        self._worker = ThreadPoolExecutor(max_workers=1, thread_name_prefix="repro-eval")
        self.batcher = MicroBatcher(
            window_ms=batch_window_ms,
            max_batch=max_batch,
            executor=self._worker,
            max_pending=max_pending_evals,
            logger=self.log if not quiet else None,
        )
        self.jobs = JobManager(
            store,
            workers=workers,
            max_entries_per_shard=shard_entries,
            lease_ttl_s=lease_ttl_s,
            max_pending_jobs=max_pending_jobs,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._started = time.time()
        self.campaigns_run = 0
        self._result_cache: "OrderedDict[str, CampaignResult]" = OrderedDict()
        self.registry: Optional[MetricsRegistry] = None
        if metrics:
            self._init_metrics()

    def _init_metrics(self) -> None:
        """Create the metric families and scrape-time callback gauges.

        Counters and histograms are updated on the request path; anything
        that already lives in a data structure (queue depths, segment
        sizes, fleet counters, cache hit rates) is exported by callback at
        scrape time instead of being mirrored on every update.
        """
        registry = MetricsRegistry()
        self.registry = registry
        self._m_requests = registry.counter(
            "repro_http_requests_total",
            "HTTP requests served, by method, route pattern and status.",
            ("method", "route", "status"),
        )
        self._m_latency = registry.histogram(
            "repro_http_request_seconds",
            "Wall-clock request latency in seconds, by route pattern.",
            ("route",),
        )
        self._m_rejected = registry.counter(
            "repro_http_rejected_total",
            "Requests answered 429 because a bounded queue was full.",
            ("queue",),
        )
        self._m_store_scan = registry.histogram(
            "repro_store_scan_seconds",
            "Store scan latency in seconds (includes executor queueing).",
            ("op",),
        )
        registry.gauge(
            "repro_batcher_occupancy",
            "Evaluate requests pending in the open micro-batch window.",
            callback=lambda: self.batcher.occupancy,
        )
        registry.gauge(
            "repro_batcher_inflight",
            "Evaluate requests dispatched to the executor, unresolved.",
            callback=lambda: self.batcher.inflight,
        )
        registry.gauge(
            "repro_batcher_requests_total",
            "Evaluate requests admitted by the micro-batcher.",
            callback=lambda: self.batcher.stats.requests,
        )
        registry.gauge(
            "repro_batcher_batches_total",
            "Batches the micro-batcher dispatched.",
            callback=lambda: self.batcher.stats.batches,
        )
        registry.gauge(
            "repro_batcher_coalesce_ratio",
            "Mean evaluate requests coalesced per dispatched batch.",
            callback=lambda: self.batcher.stats.mean_batch_size,
        )
        registry.gauge(
            "repro_batcher_rejected_total",
            "Evaluate requests refused because the admission queue was full.",
            callback=lambda: self.batcher.stats.rejected,
        )
        registry.gauge(
            "repro_store_results",
            "Results the store currently indexes.",
            callback=lambda: len(self.store),
        )
        registry.gauge(
            "repro_store_segments",
            "Live on-disk segments, by format.",
            ("format",),
            callback=lambda: {
                (fmt,): count
                for fmt, count in self.store.stats()["segments_by_format"].items()
            },
        )
        registry.gauge(
            "repro_store_segment_bytes",
            "Total bytes of live on-disk segments.",
            callback=lambda: self.store.stats()["segment_bytes"],
        )
        registry.gauge(
            "repro_jobs_tracked",
            "Jobs tracked by the scheduler, by state.",
            ("state",),
            callback=lambda: {
                (state,): count
                for state, count in self.jobs.stats()["by_state"].items()
            },
        )
        registry.gauge(
            "repro_jobs_queue_depth",
            "Jobs submitted but not yet terminal.",
            callback=self.jobs.active_jobs,
        )
        registry.gauge(
            "repro_jobs_rejected_total",
            "Job submissions refused because the queue bound was reached.",
            callback=lambda: self.jobs.rejected_jobs,
        )
        registry.gauge(
            "repro_job_shards",
            "Shards across all tracked jobs, by state.",
            ("state",),
            callback=lambda: {
                (state,): count
                for state, count in self.jobs.stats()["shard_states"].items()
            },
        )
        registry.gauge(
            "repro_fleet_leases",
            "Fleet lease counters (granted/completed/failed/expired/...).",
            ("event",),
            callback=lambda: {
                (event,): count
                for event, count in self.jobs.ledger.counters.items()
            },
        )
        registry.gauge(
            "repro_fleet_active_leases",
            "Leases currently held by fleet workers.",
            callback=lambda: len(self.jobs.ledger._leases),
        )
        registry.gauge(
            "repro_fleet_workers_seen",
            "Distinct fleet workers the ledger remembers.",
            callback=lambda: self.jobs.ledger.stats()["workers_seen"],
        )
        registry.gauge(
            "repro_fleet_oldest_heartbeat_age_seconds",
            "Age of the stalest active lease's deadline progress (0 = fresh).",
            callback=self._oldest_heartbeat_age,
        )
        registry.gauge(
            "repro_eval_cache_hit_rate",
            "Evaluation-cache hit rate, by cache layer.",
            ("layer",),
            callback=self._cache_hit_rates,
        )
        registry.gauge(
            "repro_uptime_seconds",
            "Seconds since the server process started.",
            callback=lambda: time.time() - self._started,
        )

    def _oldest_heartbeat_age(self) -> float:
        """Seconds since the least-recently-extended active lease moved."""
        now = time.time()
        ages = [
            now - (lease.deadline - lease.ttl_s)
            for lease in self.jobs.ledger._leases.values()
        ]
        return max(ages) if ages else 0.0

    @staticmethod
    def _cache_hit_rates() -> Dict[Tuple[str, ...], float]:
        """Hit rate per evaluation-cache layer (import deferred: the
        global cache only exists once evaluation has actually run)."""
        from ..dse.cache import global_cache

        return {
            (layer,): stats.hit_rate
            for layer, stats in global_cache().stats.items()
        }

    # ------------------------------------------------------------------ #
    @classmethod
    def route_table(cls) -> List[Tuple[str, str]]:
        """Every ``(method, pattern)`` pair the server routes."""
        return [(method, pattern) for method, pattern, _ in cls.ROUTES]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind and start accepting connections (sets ``self.port`` when 0)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or ()
        for sock in sockets:
            self.port = sock.getsockname()[1]
            break
        if not self.quiet:
            print(
                f"repro.service listening on http://{self.host}:{self.port} "
                f"(store: {self.store.root}, {len(self.store)} stored results)"
            )

    async def serve_forever(self) -> None:
        """Accept connections until cancelled (starts the server if needed)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting, cancel live jobs, drain the batcher and workers."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.jobs.close()
        await self.batcher.close()
        self._worker.shutdown(wait=True)

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _RequestTooLarge as error:
                    # Refuse before buffering a byte of the body.  The
                    # unread body makes the connection unusable for
                    # keep-alive, so it closes after the error response.
                    data = json.dumps({"error": str(error)}).encode()
                    writer.write(
                        (
                            f"HTTP/1.1 413 {_REASONS[413]}\r\n"
                            f"Server: {SERVER_NAME}\r\n"
                            "Content-Type: application/json\r\n"
                            f"Content-Length: {len(data)}\r\n"
                            "Connection: close\r\n"
                            "\r\n"
                        ).encode()
                    )
                    writer.write(data)
                    await writer.drain()
                    break
                if request is None:
                    break
                method, target, headers, body = request
                status, payload, extra = await self._route(method, target, headers, body)
                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                if isinstance(payload, RawResponse):
                    data = payload.body
                    content_type = payload.content_type
                else:
                    data = json.dumps(json_sanitize(payload), indent=None).encode()
                    content_type = "application/json"
                extra_lines = "".join(
                    f"{name}: {value}\r\n" for name, value in extra.items()
                )
                writer.write(
                    (
                        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                        f"Server: {SERVER_NAME}\r\n"
                        f"Content-Type: {content_type}\r\n"
                        f"Content-Length: {len(data)}\r\n"
                        f"{extra_lines}"
                        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
                        "\r\n"
                    ).encode()
                )
                writer.write(data)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            except asyncio.CancelledError:
                # Server shutdown cancels handler tasks mid-wait_closed;
                # the connection is closed either way — end quietly rather
                # than logging an unhandled-exception traceback.
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        try:
            request_line = await reader.readline()
        except (ConnectionResetError, asyncio.LimitOverrunError):
            return None
        if not request_line:
            return None
        try:
            method, target, _version = request_line.decode("latin-1").split(None, 2)
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            return None  # malformed framing: drop the connection cleanly
        if length < 0:
            return None
        if length > self.max_body_bytes:
            raise _RequestTooLarge(length, self.max_body_bytes)
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    def _match(self, method: str, path: str) -> Tuple[str, Dict[str, str]]:
        """Resolve ``(method, path)`` against :attr:`ROUTES`.

        Returns the handler name plus captured ``{name}`` path segments.
        Raises a 404 :class:`ApiError` for unknown paths and a 405 when
        the path exists under a different method.
        """
        segments = path.split("/")
        allowed: set = set()
        for route_method, pattern, handler in self.ROUTES:
            parts = pattern.split("/")
            if len(parts) != len(segments):
                continue
            args: Dict[str, str] = {}
            for part, segment in zip(parts, segments):
                if part.startswith("{") and part.endswith("}"):
                    if not segment:
                        break
                    args[part[1:-1]] = segment
                elif part != segment:
                    break
            else:
                if route_method != method:
                    allowed.add(route_method)
                    continue
                return handler, args
        if allowed:
            raise ApiError(
                405, f"method {method} not allowed for {path}; allowed: {sorted(allowed)}"
            )
        raise ApiError(404, f"no route for {method} {path}")

    async def _route(
        self, method: str, target: str, headers: Dict[str, str], raw_body: bytes
    ) -> Tuple[int, Any, Dict[str, str]]:
        """Parse, dispatch and shield one request.

        Returns ``(status, payload, extra response headers)``.  The trace
        id (taken from the request's ``X-Repro-Trace-Id`` header, minted
        fresh when absent or malformed) is bound to the task context for
        the duration of the dispatch — handlers, the job manager and the
        structured logger all read it from there — and echoed back on the
        response.
        """
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        params = {key: values[-1] for key, values in parse_qs(split.query).items()}
        trace_id = valid_trace_id(headers.get(TRACE_HEADER.lower())) or new_trace_id()
        token = set_trace_id(trace_id)
        route_pattern = path
        started = time.perf_counter()
        try:
            try:
                body: Dict[str, Any] = {}
                if raw_body:
                    try:
                        body = json.loads(raw_body)
                    except json.JSONDecodeError as error:
                        raise ApiError(400, f"request body is not valid JSON: {error}")
                    if not isinstance(body, dict):
                        raise ApiError(400, "request body must be a JSON object")
                handler_name, args = self._match(method, path)
                route_pattern = self._pattern_of(handler_name)
                response = await getattr(self, handler_name)(args, params, body)
                if (
                    isinstance(response, tuple)
                    and len(response) == 2
                    and isinstance(response[0], int)
                ):
                    status, payload = response
                else:
                    status, payload = 200, response
                extra: Dict[str, str] = {}
            except ApiError as error:
                status, payload, extra = error.status, {"error": error.message}, error.headers
            except Exception as error:  # noqa: BLE001 — the server must not die
                status, payload, extra = 500, {"error": f"{type(error).__name__}: {error}"}, {}
            elapsed = time.perf_counter() - started
            self._observe_request(method, route_pattern, status, elapsed)
            extra = {TRACE_HEADER: trace_id, **extra}
            return status, payload, extra
        finally:
            try:
                token.var.reset(token)
            except ValueError:
                pass  # context moved on (e.g. task switch); nothing to unbind

    def _pattern_of(self, handler_name: str) -> str:
        """The route pattern behind a handler (the metrics route label)."""
        for _, pattern, name in self.ROUTES:
            if name == handler_name:
                return pattern
        return handler_name

    def _observe_request(
        self, method: str, route: str, status: int, elapsed: float
    ) -> None:
        """Count + time one finished request; emit the access-log line.

        Unmatched paths are all labelled ``(unrouted)`` so junk URLs
        cannot mint unbounded metric children.
        """
        patterns = {pattern for _, pattern, _ in self.ROUTES}
        label = route if route in patterns else "(unrouted)"
        if self.registry is not None:
            self._m_requests.labels(method, label, str(status)).inc()
            self._m_latency.labels(label).observe(elapsed)
        self.log.event(
            "http.request",
            method=method,
            route=label,
            status=status,
            ms=round(elapsed * 1e3, 3),
        )

    # ------------------------------------------------------------------ #
    # Handlers
    # ------------------------------------------------------------------ #
    async def _health(self, args, params, body) -> Dict[str, Any]:
        """``GET /health`` — liveness plus store/batcher/job statistics."""
        return {
            "status": "ok",
            "server": SERVER_NAME,
            "uptime_seconds": round(time.time() - self._started, 3),
            "store": {
                "root": str(self.store.root),
                "results": len(self.store),
            },
            "batcher": self.batcher.stats.to_dict(),
            "jobs": self.jobs.stats(),
            "campaigns_run": self.campaigns_run,
        }

    async def _list_results(self, args, params, body) -> Dict[str, Any]:
        """``GET /v1/results`` — stored-result metadata, filterable."""
        _check_fields(params, {"network", "device", "fingerprint", "name"}, "query")
        records = self.store.query(
            fingerprint=params.get("fingerprint"),
            network=params.get("network"),
            device=params.get("device"),
            name=params.get("name"),
        )
        return {"results": [record.to_dict() for record in records]}

    async def _get_result(self, args, params, body) -> Dict[str, Any]:
        """``GET /v1/results/<key>`` — one full stored result payload."""
        key = args["key"]
        result = await self._load_by_key(key)
        loop = asyncio.get_running_loop()
        # Serializing thousands of points is CPU work; keep it off the loop.
        payload = await loop.run_in_executor(None, result_to_dict, result)
        return {"key": key, "result": payload}

    async def _report(self, args, params, body) -> Dict[str, Any]:
        """``GET /v1/results/<key>/report`` — summary/comparison rows."""
        key = args["key"]
        _check_fields(params, {"metric"}, "query")
        result = await self._load_by_key(key)
        try:
            report = campaign_report_payload(result, params.get("metric"))
        except (AttributeError, ValueError) as error:
            raise ApiError(400, str(error)) from None
        return {"key": key, "report": report}

    async def _load_by_key(self, key: str) -> CampaignResult:
        """A stored result, memoized by key (append-only store — a cached
        deserialization can never go stale) and loaded off the event loop
        so a multi-thousand-point parse never stalls other requests."""
        cached = self._result_cache.get(key)
        if cached is not None:
            self._result_cache.move_to_end(key)
            return cached
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(None, self.store.get, key)
        except KeyError:
            raise ApiError(404, f"no stored result with key {key!r}") from None
        self._result_cache[key] = result
        while len(self._result_cache) > RESULT_CACHE_SIZE:
            self._result_cache.popitem(last=False)
        return result

    async def _timed_store_call(self, op: str, fn, *args):
        """Run a store scan off the event loop, timing it into the metrics.

        The measured span includes executor queueing — deliberately: that
        wait is part of the latency a caller experiences when scans back
        up behind each other.
        """
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        try:
            return await loop.run_in_executor(None, fn, *args)
        finally:
            if self.registry is not None:
                self._m_store_scan.labels(op).observe(time.perf_counter() - started)

    def _query_spec(self, body: Dict[str, Any], allowed: set, what: str) -> QuerySpec:
        """Build the endpoint's :class:`QuerySpec` from a request body.

        ``_check_fields`` keeps the legacy unknown-field message; the
        spec's own validation covers types, metric names, where clauses
        and pagination fields with stable 400 texts.
        """
        _check_fields(body, allowed, what)
        try:
            # null fields mean "unset", exactly like the legacy handlers.
            spec = QuerySpec.from_dict(
                {k: v for k, v in body.items() if v is not None}
            )
        except ValueError as error:
            raise ApiError(400, str(error)) from None
        if spec.limit is None:
            spec = replace(spec, limit=DEFAULT_PAGE_LIMIT)
        return spec

    async def _query(self, args, params, body) -> Dict[str, Any]:
        """``POST /v1/query`` — filter/sort/top-k over a stored result.

        Runs as a vectorized column scan on the store's query engine;
        only the returned page of rows is materialized.  ``limit``
        defaults to 1000 and ``next_cursor`` continues the row ordering.
        """
        spec = self._query_spec(
            body,
            {"key", "fingerprint", "network", "device", "name", "metric", "top_k",
             "maximize", "where", "select", "limit", "cursor"},
            "query",
        )
        try:
            page = await self._timed_store_call("query", self.store.query_page, spec)
        except KeyError as error:
            raise ApiError(404, error.args[0]) from None
        except ValueError as error:
            raise ApiError(400, str(error)) from None
        return {
            "key": page.key,
            "count": len(page.rows),
            "total": page.total,
            "points": page.rows,
            "next_cursor": page.next_cursor,
        }

    async def _pareto(self, args, params, body) -> Dict[str, Any]:
        """``POST /v1/pareto`` — per-network Pareto fronts of a result.

        Fronts are flattened in network order for pagination; the page is
        regrouped per network in the response.
        """
        spec = self._query_spec(
            body,
            {"key", "fingerprint", "network", "device", "name", "objectives",
             "limit", "cursor"},
            "pareto",
        )
        try:
            page = await self._timed_store_call("pareto", self.store.pareto, spec)
        except KeyError as error:
            raise ApiError(404, error.args[0]) from None
        except ValueError as error:
            message = str(error)
            if message.startswith("unknown metric"):
                message = f"invalid objectives: {message}"
            raise ApiError(400, message) from None
        return {
            "key": page.key,
            "objectives": page.objectives,
            "fronts": page.fronts,
            "total": page.total,
            "next_cursor": page.next_cursor,
        }

    async def _best(self, args, params, body) -> Dict[str, Any]:
        """``POST /v1/best`` — the single best stored point by a metric."""
        _field(body, "metric", (str,), None, required=True)
        spec = self._query_spec(
            body,
            {"key", "fingerprint", "network", "device", "name", "metric",
             "maximize", "where", "select"},
            "best",
        )
        try:
            best = await self._timed_store_call("best", self.store.best, spec)
        except KeyError as error:
            raise ApiError(404, error.args[0]) from None
        except ValueError as error:
            raise ApiError(400, str(error)) from None
        return {
            "key": best.key,
            "metric": best.metric,
            "value": best.value,
            "point": best.row,
        }

    async def _evaluate(self, args, params, body) -> Dict[str, Any]:
        """``POST /v1/evaluate`` — one ad-hoc design point, micro-batched."""
        _check_fields(
            body,
            {"network", "device", "m", "r", "multiplier_budget", "frequency_mhz",
             "shared_data_transform", "bit_width", "error_budget"},
            "evaluate",
        )
        m = _field(body, "m", (int,), None, required=True)
        r = _field(body, "r", (int,), 3)
        if m >= 1 and r >= 1 and m + r - 1 > MAX_EVALUATE_TILE:
            # Degenerate m/r (< 1) flow through as ordinary per-entry
            # errors; only the expensive-tile case must be stopped here,
            # before it wedges the evaluation worker.
            raise ApiError(
                400,
                f"tile size m + r - 1 = {m + r - 1} exceeds the evaluate limit "
                f"of {MAX_EVALUATE_TILE}",
            )
        request = EvalRequest(
            network=_field(body, "network", (str,), None, required=True),
            device=_field(body, "device", (str,), "xc7vx485t"),
            entry=GridEntry(
                m=m,
                r=r,
                multiplier_budget=_field(body, "multiplier_budget", (int,), None),
                frequency_mhz=_field(body, "frequency_mhz", (float,), 200.0),
                shared_data_transform=_field(body, "shared_data_transform", (bool,), True),
                bit_width=_field(body, "bit_width", (int,), None),
                error_budget=_field(body, "error_budget", (float,), None),
            ),
        )
        # Unknown registry names must fail as a 400 before reaching the
        # batch (where they would poison the whole dispatch).  Membership
        # checks only — resolving would build a full Network per request
        # on the event-loop thread, several times the cost of the batched
        # evaluation itself.
        from ..hw.device import known_devices
        from ..nn.registry import known_networks

        if request.network not in known_networks():
            raise ApiError(
                400, f"unknown network {request.network!r}; known networks: {known_networks()}"
            )
        if request.device not in known_devices():
            raise ApiError(
                400, f"unknown device {request.device!r}; known devices: {known_devices()}"
            )

        from ..obs.tracing import current_trace_id

        try:
            outcome = await self.batcher.submit(request, trace_id=current_trace_id())
        except BatcherSaturated as error:
            if self.registry is not None:
                self._m_rejected.labels("evaluate").inc()
            raise ApiError(
                429,
                str(error),
                headers={"Retry-After": str(max(1, math.ceil(error.retry_after_s)))},
            ) from None
        if outcome.point is None:
            return {"feasible": False, "error": outcome.error}
        return {"feasible": True, "point": point_to_dict(outcome.point)}

    @staticmethod
    def _parse_spec(body: Dict[str, Any]) -> ExperimentSpec:
        """The validated ``ExperimentSpec`` of a campaign/job request body."""
        _check_fields(body, {"spec"}, "campaign")
        spec_data = body.get("spec")
        if spec_data is None:
            raise ApiError(400, "missing required field 'spec'")
        try:
            return ExperimentSpec.from_dict(spec_data)
        except (ValueError, TypeError, KeyError) as error:
            # from_dict raises TypeError/KeyError for wrongly-typed fields;
            # all three are client input errors, not server faults.
            raise ApiError(400, f"invalid experiment spec: {error}")

    async def _campaign(self, args, params, body) -> Dict[str, Any]:
        """``POST /v1/campaign`` — submit as a job, await it, return receipt.

        A thin synchronous wrapper over the sharded job scheduler; results
        are bit-identical to the historical single-thread execution (shard
        reassembly preserves the serial point ordering).
        """
        spec = self._parse_spec(body)
        job = await self._submit_spec(spec)
        await job.wait()
        if job.state != "completed":
            raise ApiError(
                500, job.error or f"campaign job {job.id} ended {job.state}"
            )
        assert job.key is not None
        result = await self._load_by_key(job.key)
        loop = asyncio.get_running_loop()
        summary = await loop.run_in_executor(
            None, lambda: jsonable_rows(result.summary_rows())
        )
        self.campaigns_run += 1
        return {
            "key": job.key,
            "fingerprint": spec.fingerprint(),
            "job_id": job.id,
            "evaluations": result.evaluations,
            "feasible": result.feasible,
            "elapsed_seconds": result.elapsed_seconds,
            "summary": summary,
        }

    # ------------------------------------------------------------------ #
    # Job endpoints
    # ------------------------------------------------------------------ #
    async def _submit_spec(self, spec: ExperimentSpec):
        """Submit a spec to the job manager, mapping saturation to a 429."""
        try:
            return await self.jobs.submit(spec)
        except JobQueueFull as error:
            if self.registry is not None:
                self._m_rejected.labels("jobs").inc()
            raise ApiError(
                429,
                str(error),
                headers={"Retry-After": str(max(1, math.ceil(error.retry_after_s)))},
            ) from None

    async def _submit_job(self, args, params, body) -> Tuple[int, Dict[str, Any]]:
        """``POST /v1/jobs`` — submit a campaign job; 202 with the job id."""
        spec = self._parse_spec(body)
        job = await self._submit_spec(spec)
        return 202, {"job": job.to_payload(self.jobs.workers, include_shards=False)}

    @staticmethod
    def _listing_page(
        params: Dict[str, str], rows: List[Dict[str, Any]], kind: str
    ) -> Tuple[List[Dict[str, Any]], Optional[str], int]:
        """Cursor pagination over an ordinal-ordered listing.

        Jobs and leases carry monotonic ordinals inside their ids
        (``job-000012-…``), so a page is "the first ``limit`` rows with an
        ordinal beyond the cursor's".  The token is the same opaque
        base64 cursor ``/v1/query`` uses; ``kind`` is bound inside it so a
        jobs cursor cannot be replayed against the leases listing.
        """
        limit = DEFAULT_LISTING_LIMIT
        if "limit" in params:
            try:
                limit = int(params["limit"])
            except ValueError:
                raise ApiError(400, f"limit must be an integer, got {params['limit']!r}")
            if limit < 1:
                raise ApiError(400, "limit must be >= 1")
        after = -1
        cursor = params.get("cursor")
        if cursor:
            try:
                payload = decode_cursor(cursor)
            except ValueError as error:
                raise ApiError(400, str(error)) from None
            if payload["k"] != kind:
                raise ApiError(400, f"invalid cursor: not a {kind} cursor")
            after = payload["o"]

        def ordinal(row: Dict[str, Any]) -> int:
            return int(str(row["id"]).split("-")[1])

        remaining = [row for row in rows if ordinal(row) > after]
        page = remaining[:limit]
        next_cursor = None
        if len(remaining) > limit:
            next_cursor = encode_cursor(kind, "", ordinal(page[-1]), kind)
        return page, next_cursor, len(rows)

    async def _list_jobs(self, args, params, body) -> Dict[str, Any]:
        """``GET /v1/jobs`` — tracked jobs, oldest first, paginated."""
        _check_fields(params, {"limit", "cursor"}, "query")
        rows = [
            job.to_payload(self.jobs.workers, include_shards=False)
            for job in self.jobs.jobs()
        ]
        page, next_cursor, total = self._listing_page(params, rows, "jobs")
        return {
            "jobs": page,
            "count": len(page),
            "total": total,
            "next_cursor": next_cursor,
        }

    def _job_or_404(self, job_id: str):
        """The tracked job, or a clean 404 JSON error for unknown ids."""
        try:
            return self.jobs.get(job_id)
        except KeyError:
            raise ApiError(404, f"no job with id {job_id!r}") from None

    async def _job_status(self, args, params, body) -> Dict[str, Any]:
        """``GET /v1/jobs/<id>`` — state, per-shard progress and ETA."""
        job = self._job_or_404(args["job_id"])
        return {"job": job.to_payload(self.jobs.workers, include_shards=True)}

    async def _cancel_job(self, args, params, body) -> Dict[str, Any]:
        """``DELETE /v1/jobs/<id>`` — cancel unfinished shards."""
        job = self._job_or_404(args["job_id"])
        cancelled = await self.jobs.cancel(job.id)
        return {
            "cancelled": cancelled,
            "job": job.to_payload(self.jobs.workers, include_shards=False),
        }

    # ------------------------------------------------------------------ #
    # Worker-fleet lease endpoints
    # ------------------------------------------------------------------ #
    async def _acquire_leases(self, args, params, body) -> Dict[str, Any]:
        """``POST /v1/leases`` — grant pending job shards to a fleet worker."""
        _check_fields(body, {"worker", "count", "ttl_s"}, "lease acquire")
        worker = _field(body, "worker", (str,), None, required=True)
        if not worker.strip():
            raise ApiError(400, "field 'worker' must be a non-empty worker id")
        count = _field(body, "count", (int,), 1)
        if count < 1:
            raise ApiError(400, "count must be >= 1")
        ttl_s = _field(body, "ttl_s", (float,), None)
        if ttl_s is not None and ttl_s <= 0:
            raise ApiError(400, "ttl_s must be > 0")
        leases = await self.jobs.acquire_leases(worker.strip(), count=count, ttl_s=ttl_s)
        return {
            "leases": leases,
            # Poll-again hint for empty answers; granted workers should
            # come straight back for more once a shard finishes.
            "retry_after_s": 0.5 if not leases else 0.0,
        }

    async def _list_leases(self, args, params, body) -> Dict[str, Any]:
        """``GET /v1/leases`` — fleet statistics plus active leases, paginated."""
        _check_fields(params, {"limit", "cursor"}, "query")
        page, next_cursor, total = self._listing_page(
            params, self.jobs.ledger.rows(), "leases"
        )
        return {
            "fleet": self.jobs.ledger.stats(),
            "leases": page,
            "count": len(page),
            "total": total,
            "next_cursor": next_cursor,
        }

    async def _heartbeat_lease(self, args, params, body) -> Dict[str, Any]:
        """``POST /v1/leases/<id>/heartbeat`` — extend a lease's expiry."""
        _check_fields(body, set(), "lease heartbeat")
        return await self.jobs.heartbeat_lease(args["lease_id"])

    async def _complete_lease(self, args, params, body) -> Dict[str, Any]:
        """``POST /v1/leases/<id>/complete`` — accept a shard's result.

        Idempotent for duplicates of an accepted completion; an expired or
        revoked lease answers ``accepted: false`` (the shard was handed to
        someone else — the late result is discarded).  A payload that does
        not validate as the leased shard's result is a 400.
        """
        _check_fields(body, {"result", "seconds"}, "lease complete")
        result = body.get("result")
        if not isinstance(result, dict):
            raise ApiError(400, "field 'result' must be a result payload object")
        seconds = _field(body, "seconds", (float,), None)
        try:
            return await self.jobs.complete_lease(args["lease_id"], result, seconds)
        except ValueError as error:
            raise ApiError(400, str(error)) from None

    async def _fail_lease(self, args, params, body) -> Dict[str, Any]:
        """``POST /v1/leases/<id>/fail`` — report a worker-side failure.

        ``requeue: true`` hands the shard back for another claimant (a
        shutting-down or transiently broken worker); otherwise the shard —
        and its job — fail with the reported error, exactly like a local
        execution failure.
        """
        _check_fields(body, {"error", "requeue"}, "lease fail")
        error = _field(body, "error", (str,), "worker reported failure")
        requeue = _field(body, "requeue", (bool,), False)
        return await self.jobs.fail_lease(args["lease_id"], error, requeue=requeue)

    # ------------------------------------------------------------------ #
    # Observability endpoints
    # ------------------------------------------------------------------ #
    async def _metrics(self, args, params, body) -> RawResponse:
        """``GET /metrics`` — Prometheus text exposition of every metric."""
        if self.registry is None:
            raise ApiError(404, "metrics are disabled on this server (--no-metrics)")
        loop = asyncio.get_running_loop()
        # Callback gauges stat segment files etc.; keep that off the loop.
        text = await loop.run_in_executor(None, self.registry.exposition)
        return RawResponse(text.encode(), "text/plain; version=0.0.4; charset=utf-8")

    async def _stats(self, args, params, body) -> Dict[str, Any]:
        """``GET /v1/stats`` — the JSON twin of ``/metrics`` for clients."""
        if self.registry is None:
            raise ApiError(404, "metrics are disabled on this server (--no-metrics)")
        loop = asyncio.get_running_loop()
        metrics = await loop.run_in_executor(None, self.registry.to_dict)
        return {"metrics": metrics}


_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


def serve(
    store_root: str,
    host: str = "127.0.0.1",
    port: int = 8787,
    batch_window_ms: float = 2.0,
    max_batch: int = 256,
    workers: int = 1,
    shard_entries: int = DEFAULT_SHARD_ENTRIES,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    quiet: bool = False,
    metrics: bool = True,
    max_pending_evals: Optional[int] = None,
    max_pending_jobs: Optional[int] = None,
) -> int:
    """Blocking entry point used by ``python -m repro serve``.

    ``workers`` sizes the local campaign-job shard pool (0 = no local
    execution, shards run only on the worker fleet; 1 = a single
    background thread, the pre-sharding behaviour; >= 2 = a process
    pool), ``shard_entries`` caps grid entries per shard (see
    :mod:`repro.service.jobs`) and ``lease_ttl_s`` is how long a fleet
    worker's lease survives without a heartbeat before its shard
    re-queues.  ``metrics=False`` disables the registry and the
    ``/metrics`` + ``/v1/stats`` endpoints; ``max_pending_evals`` /
    ``max_pending_jobs`` bound the evaluate and job admission queues
    (full queues answer 429 with ``Retry-After``).
    """
    store = ResultStore(store_root)
    server = ResultServer(
        store,
        host=host,
        port=port,
        batch_window_ms=batch_window_ms,
        max_batch=max_batch,
        workers=workers,
        shard_entries=shard_entries,
        lease_ttl_s=lease_ttl_s,
        quiet=quiet,
        metrics=metrics,
        max_pending_evals=max_pending_evals,
        max_pending_jobs=max_pending_jobs,
    )

    async def main() -> None:
        """Run the server until interrupted, closing it cleanly."""
        await server.start()
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        if not quiet:
            print("repro.service: shutting down")
    return 0

"""Stdlib-only asyncio HTTP server for stored and ad-hoc design queries.

``python -m repro serve`` turns the repository from a batch tool into an
online system: campaigns are computed once (by a ``POST /v1/campaign`` or
offline via the CLI), persisted in a :class:`~repro.service.store.ResultStore`,
and every subsequent "what-if" — a Pareto front, a top-k under a budget, a
single candidate design — is answered from the store or from a
micro-batched vectorized evaluation, without the client owning any of the
engine.

Endpoints (all JSON):

``GET  /health``
    Liveness plus store/batcher statistics.
``GET  /v1/results``
    Stored-result metadata; filter with ``?network=&device=&fingerprint=&name=``.
``GET  /v1/results/<key>``
    One full stored result (the versioned persistence payload).
``GET  /v1/results/<key>/report``
    Summary/comparison rows of a stored result (``?metric=`` optional).
``POST /v1/query``
    Filter/select/top-k over a stored result's points (paginated).
``POST /v1/pareto``
    Per-network Pareto fronts of a stored result (paginated).
``POST /v1/best``
    Single best point of a stored result by a metric.
``POST /v1/evaluate``
    Evaluate one ad-hoc design point.  Concurrent requests are coalesced
    by the :class:`~repro.service.batching.MicroBatcher` into stacked
    NumPy batches — responses are bit-identical to serial evaluation.
``POST /v1/jobs``
    Submit an :class:`~repro.experiments.ExperimentSpec` as an
    **asynchronous sharded job** (see :mod:`repro.service.jobs`): returns
    a job id immediately while shards evaluate on the worker pool.
``GET /v1/jobs`` / ``GET /v1/jobs/<id>``
    All jobs / one job's state, per-shard progress and ETA.
``DELETE /v1/jobs/<id>``
    Cancel a job's unfinished shards (completed shards stay stored).
``POST /v1/campaign``
    Synchronous wrapper over the job scheduler: submits the spec as a job,
    awaits completion and returns the stored result's key plus a summary.
``POST /v1/leases`` / ``GET /v1/leases``
    The pull-based **worker-fleet protocol** (see :mod:`repro.worker`):
    remote workers acquire leases on pending job shards / observability
    over every outstanding lease.
``POST /v1/leases/<id>/heartbeat|complete|fail``
    Extend a lease's expiry, push a finished shard's result payload, or
    report a worker-side failure (optionally handing the shard back).
    Leases that stop heartbeating expire and their shards re-queue, so a
    killed worker never strands a job.

Result selection for ``query``/``pareto``/``best``: pass ``key`` for an
exact result, or ``fingerprint`` (and/or ``network``/``device``/``name``
filters) to use the latest matching stored result.  The three endpoints
share one request vocabulary — the
:class:`~repro.service.queryspec.QuerySpec` fields — and ``query``/
``pareto`` page their responses: ``limit`` (default 1000) caps the rows
returned and ``next_cursor`` (an opaque token, stable across appends and
compactions) continues where the page stopped.

The full request/response reference, including error shapes, lives in
``docs/http-api.md`` (a test diffs it against :meth:`ResultServer.route_table`).

The HTTP layer is deliberately minimal — HTTP/1.1, ``Content-Length``
bodies, no TLS, no chunked encoding — because the transport is not the
point; the batching scheduler and the store are.  Run it behind a real
proxy if it ever faces the internet.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..core.design_space import GridEntry
from ..dse.batch import EvalRequest
from ..dse.campaign import CampaignResult
from ..experiments.persistence import point_to_dict, result_to_dict
from ..experiments.spec import ExperimentSpec
from ..reporting import campaign_report_payload, json_sanitize, jsonable_rows
from .batching import MicroBatcher
from .jobs import DEFAULT_LEASE_TTL_S, DEFAULT_SHARD_ENTRIES, JobManager
from .queryspec import QuerySpec
from .store import ResultStore

__all__ = ["ApiError", "ResultServer", "serve", "DEFAULT_MAX_BODY_BYTES"]

SERVER_NAME = "repro-service/1"

#: Largest request body the server will buffer (32 MiB).  A spec payload
#: is a few KiB and even a Fig. 6-scale shard-result payload is a couple
#: of MiB, so the cap only stops abuse: without it a single request could
#: buffer arbitrary gigabytes into memory before JSON parsing ever ran.
DEFAULT_MAX_BODY_BYTES = 32 << 20

#: Largest Winograd input tile (``m + r - 1``) ``/v1/evaluate`` accepts.
#: Transform generation cost grows superlinearly with the tile; an
#: unbounded ``m`` would wedge the single evaluation worker (and every
#: request queued behind it) for tens of seconds.  The paper's space tops
#: out at F(7,3) = tile 9; 16 leaves generous headroom.
MAX_EVALUATE_TILE = 16

#: Deserialized stored results memoized by key (segments are append-only,
#: so a cached result can never go stale).  Small: entries can be large.
RESULT_CACHE_SIZE = 8

#: Rows per ``/v1/query``/``/v1/pareto`` response when the request sets no
#: ``limit`` — large stores no longer produce unbounded responses; follow
#: ``next_cursor`` (or use ``ServiceClient.iter_query``) for the rest.
DEFAULT_PAGE_LIMIT = 1000


class ApiError(Exception):
    """A client-visible error with an HTTP status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


# --------------------------------------------------------------------- #
# Request parsing helpers
# --------------------------------------------------------------------- #
def _field(body: Dict[str, Any], name: str, types: tuple, default: Any, required: bool = False) -> Any:
    """Typed access to an optional/required JSON body field."""
    if name not in body or body[name] is None:
        if required:
            raise ApiError(400, f"missing required field {name!r}")
        return default
    value = body[name]
    if types == (int,) and isinstance(value, bool):
        raise ApiError(400, f"field {name!r} must be an integer, got {value!r}")
    if types == (float,) and isinstance(value, int) and not isinstance(value, bool):
        value = float(value)
    if not isinstance(value, types):
        expected = "/".join(t.__name__ for t in types)
        raise ApiError(400, f"field {name!r} must be {expected}, got {type(value).__name__}")
    if isinstance(value, float) and not math.isfinite(value):
        # json.loads accepts the non-standard NaN/Infinity tokens; they
        # would flow through the batch math as poison values.
        raise ApiError(400, f"field {name!r} must be finite, got {value!r}")
    return value


def _check_fields(body: Dict[str, Any], known: set, what: str) -> None:
    unknown = set(body) - known
    if unknown:
        raise ApiError(
            400, f"unknown {what} fields {sorted(unknown)}; known fields: {sorted(known)}"
        )


class _RequestTooLarge(Exception):
    """Internal: a request declared a body beyond the configured cap."""

    def __init__(self, length: int, limit: int) -> None:
        super().__init__(f"request body of {length} bytes exceeds the {limit}-byte limit")
        self.length = length
        self.limit = limit


class ResultServer:
    """The asyncio HTTP server: a store, a batcher, a job scheduler.

    Micro-batched ``evaluate`` dispatches run on a dedicated single-thread
    executor (CPU-bound work never blocks the event loop); campaigns run
    as sharded jobs on the :class:`~repro.service.jobs.JobManager` worker
    pool (``workers`` processes, or one background thread when 1), so one
    large campaign no longer blocks other campaigns or evaluates.
    """

    #: Declarative route table: ``(method, pattern, handler name)``.
    #: ``{name}`` segments capture one path segment.  Introspectable via
    #: :meth:`route_table` — ``tests/docs`` diffs it against
    #: ``docs/http-api.md`` so the docs cannot silently rot.
    ROUTES: Tuple[Tuple[str, str, str], ...] = (
        ("GET", "/health", "_health"),
        ("GET", "/v1/results", "_list_results"),
        ("GET", "/v1/results/{key}", "_get_result"),
        ("GET", "/v1/results/{key}/report", "_report"),
        ("POST", "/v1/query", "_query"),
        ("POST", "/v1/pareto", "_pareto"),
        ("POST", "/v1/best", "_best"),
        ("POST", "/v1/evaluate", "_evaluate"),
        ("POST", "/v1/campaign", "_campaign"),
        ("POST", "/v1/jobs", "_submit_job"),
        ("GET", "/v1/jobs", "_list_jobs"),
        ("GET", "/v1/jobs/{job_id}", "_job_status"),
        ("DELETE", "/v1/jobs/{job_id}", "_cancel_job"),
        ("POST", "/v1/leases", "_acquire_leases"),
        ("GET", "/v1/leases", "_list_leases"),
        ("POST", "/v1/leases/{lease_id}/heartbeat", "_heartbeat_lease"),
        ("POST", "/v1/leases/{lease_id}/complete", "_complete_lease"),
        ("POST", "/v1/leases/{lease_id}/fail", "_fail_lease"),
    )

    def __init__(
        self,
        store: ResultStore,
        host: str = "127.0.0.1",
        port: int = 8787,
        batch_window_ms: float = 2.0,
        max_batch: int = 256,
        workers: int = 1,
        shard_entries: int = DEFAULT_SHARD_ENTRIES,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        quiet: bool = False,
    ) -> None:
        if max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")
        self.store = store
        self.host = host
        self.port = port
        self.quiet = quiet
        self.max_body_bytes = max_body_bytes
        self._worker = ThreadPoolExecutor(max_workers=1, thread_name_prefix="repro-eval")
        self.batcher = MicroBatcher(
            window_ms=batch_window_ms, max_batch=max_batch, executor=self._worker
        )
        self.jobs = JobManager(
            store,
            workers=workers,
            max_entries_per_shard=shard_entries,
            lease_ttl_s=lease_ttl_s,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._started = time.time()
        self.campaigns_run = 0
        self._result_cache: "OrderedDict[str, CampaignResult]" = OrderedDict()

    # ------------------------------------------------------------------ #
    @classmethod
    def route_table(cls) -> List[Tuple[str, str]]:
        """Every ``(method, pattern)`` pair the server routes."""
        return [(method, pattern) for method, pattern, _ in cls.ROUTES]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind and start accepting connections (sets ``self.port`` when 0)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or ()
        for sock in sockets:
            self.port = sock.getsockname()[1]
            break
        if not self.quiet:
            print(
                f"repro.service listening on http://{self.host}:{self.port} "
                f"(store: {self.store.root}, {len(self.store)} stored results)"
            )

    async def serve_forever(self) -> None:
        """Accept connections until cancelled (starts the server if needed)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting, cancel live jobs, drain the batcher and workers."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.jobs.close()
        await self.batcher.close()
        self._worker.shutdown(wait=True)

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _RequestTooLarge as error:
                    # Refuse before buffering a byte of the body.  The
                    # unread body makes the connection unusable for
                    # keep-alive, so it closes after the error response.
                    data = json.dumps({"error": str(error)}).encode()
                    writer.write(
                        (
                            f"HTTP/1.1 413 {_REASONS[413]}\r\n"
                            f"Server: {SERVER_NAME}\r\n"
                            "Content-Type: application/json\r\n"
                            f"Content-Length: {len(data)}\r\n"
                            "Connection: close\r\n"
                            "\r\n"
                        ).encode()
                    )
                    writer.write(data)
                    await writer.drain()
                    break
                if request is None:
                    break
                method, target, headers, body = request
                status, payload = await self._route(method, target, body)
                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                data = json.dumps(json_sanitize(payload), indent=None).encode()
                writer.write(
                    (
                        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                        f"Server: {SERVER_NAME}\r\n"
                        "Content-Type: application/json\r\n"
                        f"Content-Length: {len(data)}\r\n"
                        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
                        "\r\n"
                    ).encode()
                )
                writer.write(data)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            except asyncio.CancelledError:
                # Server shutdown cancels handler tasks mid-wait_closed;
                # the connection is closed either way — end quietly rather
                # than logging an unhandled-exception traceback.
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        try:
            request_line = await reader.readline()
        except (ConnectionResetError, asyncio.LimitOverrunError):
            return None
        if not request_line:
            return None
        try:
            method, target, _version = request_line.decode("latin-1").split(None, 2)
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            return None  # malformed framing: drop the connection cleanly
        if length < 0:
            return None
        if length > self.max_body_bytes:
            raise _RequestTooLarge(length, self.max_body_bytes)
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    def _match(self, method: str, path: str) -> Tuple[str, Dict[str, str]]:
        """Resolve ``(method, path)`` against :attr:`ROUTES`.

        Returns the handler name plus captured ``{name}`` path segments.
        Raises a 404 :class:`ApiError` for unknown paths and a 405 when
        the path exists under a different method.
        """
        segments = path.split("/")
        allowed: set = set()
        for route_method, pattern, handler in self.ROUTES:
            parts = pattern.split("/")
            if len(parts) != len(segments):
                continue
            args: Dict[str, str] = {}
            for part, segment in zip(parts, segments):
                if part.startswith("{") and part.endswith("}"):
                    if not segment:
                        break
                    args[part[1:-1]] = segment
                elif part != segment:
                    break
            else:
                if route_method != method:
                    allowed.add(route_method)
                    continue
                return handler, args
        if allowed:
            raise ApiError(
                405, f"method {method} not allowed for {path}; allowed: {sorted(allowed)}"
            )
        raise ApiError(404, f"no route for {method} {path}")

    async def _route(self, method: str, target: str, raw_body: bytes) -> Tuple[int, Any]:
        """Parse, dispatch and shield one request; returns (status, payload)."""
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        params = {key: values[-1] for key, values in parse_qs(split.query).items()}
        try:
            body: Dict[str, Any] = {}
            if raw_body:
                try:
                    body = json.loads(raw_body)
                except json.JSONDecodeError as error:
                    raise ApiError(400, f"request body is not valid JSON: {error}")
                if not isinstance(body, dict):
                    raise ApiError(400, "request body must be a JSON object")
            handler_name, args = self._match(method, path)
            response = await getattr(self, handler_name)(args, params, body)
            if (
                isinstance(response, tuple)
                and len(response) == 2
                and isinstance(response[0], int)
            ):
                return response
            return 200, response
        except ApiError as error:
            return error.status, {"error": error.message}
        except Exception as error:  # noqa: BLE001 — the server must not die
            return 500, {"error": f"{type(error).__name__}: {error}"}

    # ------------------------------------------------------------------ #
    # Handlers
    # ------------------------------------------------------------------ #
    async def _health(self, args, params, body) -> Dict[str, Any]:
        """``GET /health`` — liveness plus store/batcher/job statistics."""
        return {
            "status": "ok",
            "server": SERVER_NAME,
            "uptime_seconds": round(time.time() - self._started, 3),
            "store": {
                "root": str(self.store.root),
                "results": len(self.store),
            },
            "batcher": self.batcher.stats.to_dict(),
            "jobs": self.jobs.stats(),
            "campaigns_run": self.campaigns_run,
        }

    async def _list_results(self, args, params, body) -> Dict[str, Any]:
        """``GET /v1/results`` — stored-result metadata, filterable."""
        _check_fields(params, {"network", "device", "fingerprint", "name"}, "query")
        records = self.store.query(
            fingerprint=params.get("fingerprint"),
            network=params.get("network"),
            device=params.get("device"),
            name=params.get("name"),
        )
        return {"results": [record.to_dict() for record in records]}

    async def _get_result(self, args, params, body) -> Dict[str, Any]:
        """``GET /v1/results/<key>`` — one full stored result payload."""
        key = args["key"]
        result = await self._load_by_key(key)
        loop = asyncio.get_running_loop()
        # Serializing thousands of points is CPU work; keep it off the loop.
        payload = await loop.run_in_executor(None, result_to_dict, result)
        return {"key": key, "result": payload}

    async def _report(self, args, params, body) -> Dict[str, Any]:
        """``GET /v1/results/<key>/report`` — summary/comparison rows."""
        key = args["key"]
        _check_fields(params, {"metric"}, "query")
        result = await self._load_by_key(key)
        try:
            report = campaign_report_payload(result, params.get("metric"))
        except (AttributeError, ValueError) as error:
            raise ApiError(400, str(error)) from None
        return {"key": key, "report": report}

    async def _load_by_key(self, key: str) -> CampaignResult:
        """A stored result, memoized by key (append-only store — a cached
        deserialization can never go stale) and loaded off the event loop
        so a multi-thousand-point parse never stalls other requests."""
        cached = self._result_cache.get(key)
        if cached is not None:
            self._result_cache.move_to_end(key)
            return cached
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(None, self.store.get, key)
        except KeyError:
            raise ApiError(404, f"no stored result with key {key!r}") from None
        self._result_cache[key] = result
        while len(self._result_cache) > RESULT_CACHE_SIZE:
            self._result_cache.popitem(last=False)
        return result

    def _query_spec(self, body: Dict[str, Any], allowed: set, what: str) -> QuerySpec:
        """Build the endpoint's :class:`QuerySpec` from a request body.

        ``_check_fields`` keeps the legacy unknown-field message; the
        spec's own validation covers types, metric names, where clauses
        and pagination fields with stable 400 texts.
        """
        _check_fields(body, allowed, what)
        try:
            # null fields mean "unset", exactly like the legacy handlers.
            spec = QuerySpec.from_dict(
                {k: v for k, v in body.items() if v is not None}
            )
        except ValueError as error:
            raise ApiError(400, str(error)) from None
        if spec.limit is None:
            spec = replace(spec, limit=DEFAULT_PAGE_LIMIT)
        return spec

    async def _query(self, args, params, body) -> Dict[str, Any]:
        """``POST /v1/query`` — filter/sort/top-k over a stored result.

        Runs as a vectorized column scan on the store's query engine;
        only the returned page of rows is materialized.  ``limit``
        defaults to 1000 and ``next_cursor`` continues the row ordering.
        """
        spec = self._query_spec(
            body,
            {"key", "fingerprint", "network", "device", "name", "metric", "top_k",
             "maximize", "where", "select", "limit", "cursor"},
            "query",
        )
        loop = asyncio.get_running_loop()
        try:
            page = await loop.run_in_executor(None, self.store.query_page, spec)
        except KeyError as error:
            raise ApiError(404, error.args[0]) from None
        except ValueError as error:
            raise ApiError(400, str(error)) from None
        return {
            "key": page.key,
            "count": len(page.rows),
            "total": page.total,
            "points": page.rows,
            "next_cursor": page.next_cursor,
        }

    async def _pareto(self, args, params, body) -> Dict[str, Any]:
        """``POST /v1/pareto`` — per-network Pareto fronts of a result.

        Fronts are flattened in network order for pagination; the page is
        regrouped per network in the response.
        """
        spec = self._query_spec(
            body,
            {"key", "fingerprint", "network", "device", "name", "objectives",
             "limit", "cursor"},
            "pareto",
        )
        loop = asyncio.get_running_loop()
        try:
            page = await loop.run_in_executor(None, self.store.pareto, spec)
        except KeyError as error:
            raise ApiError(404, error.args[0]) from None
        except ValueError as error:
            message = str(error)
            if message.startswith("unknown metric"):
                message = f"invalid objectives: {message}"
            raise ApiError(400, message) from None
        return {
            "key": page.key,
            "objectives": page.objectives,
            "fronts": page.fronts,
            "total": page.total,
            "next_cursor": page.next_cursor,
        }

    async def _best(self, args, params, body) -> Dict[str, Any]:
        """``POST /v1/best`` — the single best stored point by a metric."""
        _field(body, "metric", (str,), None, required=True)
        spec = self._query_spec(
            body,
            {"key", "fingerprint", "network", "device", "name", "metric",
             "maximize", "where", "select"},
            "best",
        )
        loop = asyncio.get_running_loop()
        try:
            best = await loop.run_in_executor(None, self.store.best, spec)
        except KeyError as error:
            raise ApiError(404, error.args[0]) from None
        except ValueError as error:
            raise ApiError(400, str(error)) from None
        return {
            "key": best.key,
            "metric": best.metric,
            "value": best.value,
            "point": best.row,
        }

    async def _evaluate(self, args, params, body) -> Dict[str, Any]:
        """``POST /v1/evaluate`` — one ad-hoc design point, micro-batched."""
        _check_fields(
            body,
            {"network", "device", "m", "r", "multiplier_budget", "frequency_mhz",
             "shared_data_transform"},
            "evaluate",
        )
        m = _field(body, "m", (int,), None, required=True)
        r = _field(body, "r", (int,), 3)
        if m >= 1 and r >= 1 and m + r - 1 > MAX_EVALUATE_TILE:
            # Degenerate m/r (< 1) flow through as ordinary per-entry
            # errors; only the expensive-tile case must be stopped here,
            # before it wedges the evaluation worker.
            raise ApiError(
                400,
                f"tile size m + r - 1 = {m + r - 1} exceeds the evaluate limit "
                f"of {MAX_EVALUATE_TILE}",
            )
        request = EvalRequest(
            network=_field(body, "network", (str,), None, required=True),
            device=_field(body, "device", (str,), "xc7vx485t"),
            entry=GridEntry(
                m=m,
                r=r,
                multiplier_budget=_field(body, "multiplier_budget", (int,), None),
                frequency_mhz=_field(body, "frequency_mhz", (float,), 200.0),
                shared_data_transform=_field(body, "shared_data_transform", (bool,), True),
            ),
        )
        # Unknown registry names must fail as a 400 before reaching the
        # batch (where they would poison the whole dispatch).  Membership
        # checks only — resolving would build a full Network per request
        # on the event-loop thread, several times the cost of the batched
        # evaluation itself.
        from ..hw.device import known_devices
        from ..nn.registry import known_networks

        if request.network not in known_networks():
            raise ApiError(
                400, f"unknown network {request.network!r}; known networks: {known_networks()}"
            )
        if request.device not in known_devices():
            raise ApiError(
                400, f"unknown device {request.device!r}; known devices: {known_devices()}"
            )

        outcome = await self.batcher.submit(request)
        if outcome.point is None:
            return {"feasible": False, "error": outcome.error}
        return {"feasible": True, "point": point_to_dict(outcome.point)}

    @staticmethod
    def _parse_spec(body: Dict[str, Any]) -> ExperimentSpec:
        """The validated ``ExperimentSpec`` of a campaign/job request body."""
        _check_fields(body, {"spec"}, "campaign")
        spec_data = body.get("spec")
        if spec_data is None:
            raise ApiError(400, "missing required field 'spec'")
        try:
            return ExperimentSpec.from_dict(spec_data)
        except (ValueError, TypeError, KeyError) as error:
            # from_dict raises TypeError/KeyError for wrongly-typed fields;
            # all three are client input errors, not server faults.
            raise ApiError(400, f"invalid experiment spec: {error}")

    async def _campaign(self, args, params, body) -> Dict[str, Any]:
        """``POST /v1/campaign`` — submit as a job, await it, return receipt.

        A thin synchronous wrapper over the sharded job scheduler; results
        are bit-identical to the historical single-thread execution (shard
        reassembly preserves the serial point ordering).
        """
        spec = self._parse_spec(body)
        job = await self.jobs.submit(spec)
        await job.wait()
        if job.state != "completed":
            raise ApiError(
                500, job.error or f"campaign job {job.id} ended {job.state}"
            )
        assert job.key is not None
        result = await self._load_by_key(job.key)
        loop = asyncio.get_running_loop()
        summary = await loop.run_in_executor(
            None, lambda: jsonable_rows(result.summary_rows())
        )
        self.campaigns_run += 1
        return {
            "key": job.key,
            "fingerprint": spec.fingerprint(),
            "job_id": job.id,
            "evaluations": result.evaluations,
            "feasible": result.feasible,
            "elapsed_seconds": result.elapsed_seconds,
            "summary": summary,
        }

    # ------------------------------------------------------------------ #
    # Job endpoints
    # ------------------------------------------------------------------ #
    async def _submit_job(self, args, params, body) -> Tuple[int, Dict[str, Any]]:
        """``POST /v1/jobs`` — submit a campaign job; 202 with the job id."""
        spec = self._parse_spec(body)
        job = await self.jobs.submit(spec)
        return 202, {"job": job.to_payload(self.jobs.workers, include_shards=False)}

    async def _list_jobs(self, args, params, body) -> Dict[str, Any]:
        """``GET /v1/jobs`` — every tracked job, oldest first."""
        return {
            "jobs": [
                job.to_payload(self.jobs.workers, include_shards=False)
                for job in self.jobs.jobs()
            ]
        }

    def _job_or_404(self, job_id: str):
        """The tracked job, or a clean 404 JSON error for unknown ids."""
        try:
            return self.jobs.get(job_id)
        except KeyError:
            raise ApiError(404, f"no job with id {job_id!r}") from None

    async def _job_status(self, args, params, body) -> Dict[str, Any]:
        """``GET /v1/jobs/<id>`` — state, per-shard progress and ETA."""
        job = self._job_or_404(args["job_id"])
        return {"job": job.to_payload(self.jobs.workers, include_shards=True)}

    async def _cancel_job(self, args, params, body) -> Dict[str, Any]:
        """``DELETE /v1/jobs/<id>`` — cancel unfinished shards."""
        job = self._job_or_404(args["job_id"])
        cancelled = await self.jobs.cancel(job.id)
        return {
            "cancelled": cancelled,
            "job": job.to_payload(self.jobs.workers, include_shards=False),
        }

    # ------------------------------------------------------------------ #
    # Worker-fleet lease endpoints
    # ------------------------------------------------------------------ #
    async def _acquire_leases(self, args, params, body) -> Dict[str, Any]:
        """``POST /v1/leases`` — grant pending job shards to a fleet worker."""
        _check_fields(body, {"worker", "count", "ttl_s"}, "lease acquire")
        worker = _field(body, "worker", (str,), None, required=True)
        if not worker.strip():
            raise ApiError(400, "field 'worker' must be a non-empty worker id")
        count = _field(body, "count", (int,), 1)
        if count < 1:
            raise ApiError(400, "count must be >= 1")
        ttl_s = _field(body, "ttl_s", (float,), None)
        if ttl_s is not None and ttl_s <= 0:
            raise ApiError(400, "ttl_s must be > 0")
        leases = await self.jobs.acquire_leases(worker.strip(), count=count, ttl_s=ttl_s)
        return {
            "leases": leases,
            # Poll-again hint for empty answers; granted workers should
            # come straight back for more once a shard finishes.
            "retry_after_s": 0.5 if not leases else 0.0,
        }

    async def _list_leases(self, args, params, body) -> Dict[str, Any]:
        """``GET /v1/leases`` — fleet statistics plus every active lease."""
        return {
            "fleet": self.jobs.ledger.stats(),
            "leases": self.jobs.ledger.rows(),
        }

    async def _heartbeat_lease(self, args, params, body) -> Dict[str, Any]:
        """``POST /v1/leases/<id>/heartbeat`` — extend a lease's expiry."""
        _check_fields(body, set(), "lease heartbeat")
        return await self.jobs.heartbeat_lease(args["lease_id"])

    async def _complete_lease(self, args, params, body) -> Dict[str, Any]:
        """``POST /v1/leases/<id>/complete`` — accept a shard's result.

        Idempotent for duplicates of an accepted completion; an expired or
        revoked lease answers ``accepted: false`` (the shard was handed to
        someone else — the late result is discarded).  A payload that does
        not validate as the leased shard's result is a 400.
        """
        _check_fields(body, {"result", "seconds"}, "lease complete")
        result = body.get("result")
        if not isinstance(result, dict):
            raise ApiError(400, "field 'result' must be a result payload object")
        seconds = _field(body, "seconds", (float,), None)
        try:
            return await self.jobs.complete_lease(args["lease_id"], result, seconds)
        except ValueError as error:
            raise ApiError(400, str(error)) from None

    async def _fail_lease(self, args, params, body) -> Dict[str, Any]:
        """``POST /v1/leases/<id>/fail`` — report a worker-side failure.

        ``requeue: true`` hands the shard back for another claimant (a
        shutting-down or transiently broken worker); otherwise the shard —
        and its job — fail with the reported error, exactly like a local
        execution failure.
        """
        _check_fields(body, {"error", "requeue"}, "lease fail")
        error = _field(body, "error", (str,), "worker reported failure")
        requeue = _field(body, "requeue", (bool,), False)
        return await self.jobs.fail_lease(args["lease_id"], error, requeue=requeue)


_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


def serve(
    store_root: str,
    host: str = "127.0.0.1",
    port: int = 8787,
    batch_window_ms: float = 2.0,
    max_batch: int = 256,
    workers: int = 1,
    shard_entries: int = DEFAULT_SHARD_ENTRIES,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    quiet: bool = False,
) -> int:
    """Blocking entry point used by ``python -m repro serve``.

    ``workers`` sizes the local campaign-job shard pool (0 = no local
    execution, shards run only on the worker fleet; 1 = a single
    background thread, the pre-sharding behaviour; >= 2 = a process
    pool), ``shard_entries`` caps grid entries per shard (see
    :mod:`repro.service.jobs`) and ``lease_ttl_s`` is how long a fleet
    worker's lease survives without a heartbeat before its shard
    re-queues.
    """
    store = ResultStore(store_root)
    server = ResultServer(
        store,
        host=host,
        port=port,
        batch_window_ms=batch_window_ms,
        max_batch=max_batch,
        workers=workers,
        shard_entries=shard_entries,
        lease_ttl_s=lease_ttl_s,
        quiet=quiet,
    )

    async def main() -> None:
        """Run the server until interrupted, closing it cleanly."""
        await server.start()
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        if not quiet:
            print("repro.service: shutting down")
    return 0

"""Binary columnar segment blocks for the result store.

A columnar segment (``segment-%06d.col``) is an append-only sequence of
self-contained **blocks**, one per stored campaign result::

    +----------------------------+
    | preamble  <4sIQ  (16 B)    |  magic "RCB1", header len, body len
    | header    JSON             |  schema, index meta, spec, column table
    | body      packed columns   |  one NumPy structured-array row per point
    |           + string pool    |  JSON list the str columns index into
    | footer    <I4s   (8 B)     |  CRC-32 of header+body, magic "1BCR"
    +----------------------------+

Each design point becomes one row of a packed structured array with one
field per scalar column of the canonical ``point_to_dict`` layout —
int64 / float64 / uint8(bool) values, int32 indices into the block's
string pool for string columns, and the ragged ``group_latency_ms``
mapping JSON-encoded into the pool.  Readers ``np.memmap`` the body and
view it as the structured array, so a query touches only the bytes of
the columns it scans — no per-row dict materialization, no JSON parse
of the points.

**Bit-identity, not best-effort.**  ``encode_block`` is strict: it only
produces a columnar body when it can prove the decoded payload will be
*equal* to the input — canonical key order in every point/latency/
resources dict, per-column value types that round-trip exactly (ints in
a float column must be representable, i.e. ``|v| <= 2**53``).  Anything
else — foreign key orders, exotic value types, out-of-range ints — falls
back to an **opaque block** whose body is simply the payload's JSON
bytes; such results stay fully readable and queryable (via the reference
engine), just not zero-copy.

Torn tails (a crash mid-append) are detected structurally: a block whose
preamble, length bounds or footer magic do not check out terminates the
walk, exactly like a torn JSONL line; full scans (index rebuild,
compaction) additionally verify the CRC.
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = [
    "COLUMNAR_SCHEMA",
    "ColumnarBlock",
    "ColumnarEncodeError",
    "encode_block",
    "iter_blocks",
    "complete_block_count",
    "segment_extent",
    "read_block_bytes",
    "POINT_KEYS",
    "LATENCY_KEYS",
    "RESOURCE_KEYS",
]

#: Versioned schema tag embedded in every columnar block header.
COLUMNAR_SCHEMA = "repro.result-store-col/1"

_MAGIC = b"RCB1"
_FOOTER_MAGIC = b"1BCR"
_PREAMBLE = struct.Struct("<4sIQ")  # magic, header_len, body_len
_FOOTER = struct.Struct("<I4s")  # crc32(header+body), magic

#: Canonical key orders of the persisted point schema
#: (``repro.experiments.persistence.point_to_dict``).  Strict encoding
#: requires exactly these orders so decode can rebuild bit-identical
#: dicts without storing per-point key lists.
POINT_KEYS: Tuple[str, ...] = (
    "name", "m", "r", "parallel_pes", "multipliers", "frequency_mhz",
    "shared_data_transform", "device_name", "precision", "latency",
    "throughput_gops", "multiplier_efficiency", "resources", "power_watts",
    "power_efficiency", "spatial_multiplications", "winograd_multiplications",
    "implementation_transform_ops", "workload_name",
    "bit_width", "max_rel_error", "mean_rel_error",
)
LATENCY_KEYS: Tuple[str, ...] = (
    "m", "r", "parallel_pes", "frequency_mhz", "pipeline_depth",
    "group_latency_ms", "total_latency_ms", "spatial_ops",
)
RESOURCE_KEYS: Tuple[str, ...] = (
    "luts", "registers", "dsp_slices", "bram_kbits", "multipliers",
)

#: Scalar column paths in row layout order (group_latency_ms rides along
#: as a JSON-pooled column so a block is self-contained).
_SCALAR_PATHS: Tuple[str, ...] = (
    "name", "m", "r", "parallel_pes", "multipliers", "frequency_mhz",
    "shared_data_transform", "device_name", "precision",
    "latency.m", "latency.r", "latency.parallel_pes", "latency.frequency_mhz",
    "latency.pipeline_depth", "latency.group_latency_ms",
    "latency.total_latency_ms", "latency.spatial_ops",
    "resources.luts", "resources.registers", "resources.dsp_slices",
    "resources.bram_kbits", "resources.multipliers",
    "throughput_gops", "multiplier_efficiency", "power_watts",
    "power_efficiency", "spatial_multiplications", "winograd_multiplications",
    "implementation_transform_ops", "workload_name",
    "bit_width", "max_rel_error", "mean_rel_error",
)

_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1
#: Largest integer magnitude exactly representable as a float64 — the
#: bound for storing a mixed int/float column losslessly.
_EXACT_FLOAT_INT = 2**53


class ColumnarEncodeError(ValueError):
    """A payload the strict columnar encoder cannot represent losslessly."""


def _get_path(point: Dict[str, Any], path: str) -> Any:
    value: Any = point
    for part in path.split("."):
        value = value[part]
    return value


def _classify(path: str, values: List[Any]) -> str:
    """Pick the lossless storage kind of one column, or raise."""
    if path == "latency.group_latency_ms":
        return "json"
    all_str = all_bool = all_int = all_num = True
    all_optint = True
    for value in values:
        if value is None:
            # None is only representable by the nullable-int kind.
            all_str = all_bool = all_int = all_num = False
        else:
            if not isinstance(value, str):
                all_str = False
            if not isinstance(value, bool):
                all_bool = False
            is_bool = isinstance(value, bool)
            if is_bool or not isinstance(value, int):
                all_int = False
                all_optint = False
            if is_bool or not isinstance(value, (int, float)):
                all_num = False
        if not (all_str or all_bool or all_int or all_num or all_optint):
            raise ColumnarEncodeError(
                f"column {path!r} mixes unsupported value types"
            )
    if all_str:
        return "str"
    if all_bool:
        return "bool"
    if all_int:
        if any(not (_INT64_MIN <= v <= _INT64_MAX) for v in values):
            raise ColumnarEncodeError(f"column {path!r} has an int beyond int64")
        return "int"
    if all_optint:
        # ints with Nones interleaved (e.g. ``bit_width``): an int64
        # column plus a companion was-null mask.
        if any(
            v is not None and not (_INT64_MIN <= v <= _INT64_MAX) for v in values
        ):
            raise ColumnarEncodeError(f"column {path!r} has an int beyond int64")
        return "optint"
    if all_num:
        if any(isinstance(v, float) for v in values):
            if all(isinstance(v, float) for v in values):
                return "float"
            # Mixed ints and floats: ints are restored from the float64
            # column via a companion mask, so they must be exact.
            if any(
                isinstance(v, int) and abs(v) > _EXACT_FLOAT_INT for v in values
            ):
                raise ColumnarEncodeError(
                    f"column {path!r} mixes floats with ints beyond 2**53"
                )
            return "mixed"
        return "int"
    raise ColumnarEncodeError(f"column {path!r} mixes unsupported value types")


def _column_dtype(name: str, kind: str) -> List[Tuple[str, str]]:
    if kind in ("str", "json"):
        return [(name, "<i4")]
    if kind == "bool":
        return [(name, "u1")]
    if kind == "int":
        return [(name, "<i8")]
    if kind == "float":
        return [(name, "<f8")]
    if kind == "mixed":
        return [(name, "<f8"), (name + "#int", "u1")]
    if kind == "optint":
        return [(name, "<i8"), (name + "#null", "u1")]
    raise ValueError(f"unknown column kind {kind!r}")  # pragma: no cover


def block_dtype(columns: List[Tuple[str, str]]) -> np.dtype:
    """The packed structured row dtype of a block's column table."""
    dtype_fields: List[Tuple[str, str]] = []
    for name, kind in columns:
        dtype_fields.extend(_column_dtype(name, kind))
    return np.dtype(dtype_fields)


# --------------------------------------------------------------------- #
# Encoding
# --------------------------------------------------------------------- #
def _encode_columns(
    points: List[Dict[str, Any]],
) -> Tuple[List[Tuple[str, str]], bytes, List[str]]:
    """Strictly encode points into (column table, row bytes, string pool)."""
    for point in points:
        if not isinstance(point, dict) or tuple(point) != POINT_KEYS:
            raise ColumnarEncodeError("point keys differ from the canonical layout")
        latency = point["latency"]
        if not isinstance(latency, dict) or tuple(latency) != LATENCY_KEYS:
            raise ColumnarEncodeError("latency keys differ from the canonical layout")
        resources = point["resources"]
        if not isinstance(resources, dict) or tuple(resources) != RESOURCE_KEYS:
            raise ColumnarEncodeError("resources keys differ from the canonical layout")

    pool: List[str] = []
    pool_ids: Dict[str, int] = {}

    def intern(text: str) -> int:
        """The string pool id for ``text``, appending it on first sight."""
        found = pool_ids.get(text)
        if found is None:
            found = pool_ids[text] = len(pool)
            pool.append(text)
        return found

    columns: List[Tuple[str, str]] = []
    encoded: Dict[str, np.ndarray] = {}
    for path in _SCALAR_PATHS:
        values = [_get_path(point, path) for point in points]
        kind = _classify(path, values)
        columns.append((path, kind))
        if kind == "json":
            ids = []
            for value in values:
                if not isinstance(value, dict) or not all(
                    isinstance(k, str) for k in value
                ):
                    raise ColumnarEncodeError(
                        f"column {path!r} must be a str-keyed mapping"
                    )
                try:
                    ids.append(intern(json.dumps(value, separators=(",", ":"))))
                except (TypeError, ValueError) as error:
                    raise ColumnarEncodeError(
                        f"column {path!r} is not JSON-encodable: {error}"
                    ) from None
            encoded[path] = np.array(ids, dtype=np.int32)
        elif kind == "str":
            encoded[path] = np.array([intern(v) for v in values], dtype=np.int32)
        elif kind == "bool":
            encoded[path] = np.array(values, dtype=np.uint8)
        elif kind == "int":
            encoded[path] = np.array(values, dtype=np.int64)
        elif kind == "float":
            encoded[path] = np.array(values, dtype=np.float64)
        elif kind == "optint":
            encoded[path] = np.array(
                [0 if v is None else v for v in values], dtype=np.int64
            )
            encoded[path + "#null"] = np.array(
                [v is None for v in values], dtype=np.uint8
            )
        else:  # mixed
            encoded[path] = np.array([float(v) for v in values], dtype=np.float64)
            encoded[path + "#int"] = np.array(
                [isinstance(v, int) for v in values], dtype=np.uint8
            )

    rows = np.zeros(len(points), dtype=block_dtype(columns))
    for field_name in rows.dtype.names or ():
        rows[field_name] = encoded[field_name]
    return columns, rows.tobytes(), pool


def encode_block(meta: Dict[str, Any], payload: Dict[str, Any]) -> bytes:
    """Serialize one stored result into a self-contained block.

    ``meta`` is the positional-field-free index metadata (the same dict a
    JSONL envelope embeds).  Falls back to an opaque (raw JSON body)
    block when the payload cannot be encoded losslessly.
    """
    points = payload.get("points", [])
    keys = list(payload.keys())
    points_index = keys.index("points") if "points" in keys else len(keys)
    result_extra = {k: v for k, v in payload.items() if k != "points"}
    header: Dict[str, Any] = {
        "schema": COLUMNAR_SCHEMA,
        "meta": meta,
        "result": result_extra,
        "points_index": points_index,
        "rows": len(points) if isinstance(points, list) else 0,
    }
    try:
        if not isinstance(points, list):
            raise ColumnarEncodeError("payload points is not a list")
        columns, row_bytes, pool = _encode_columns(points)
    except ColumnarEncodeError:
        header["encoding"] = "opaque"
        body = json.dumps(payload, separators=(",", ":")).encode()
    else:
        header["encoding"] = "columnar"
        header["columns"] = [list(column) for column in columns]
        header["pool_offset"] = len(row_bytes)
        body = row_bytes + json.dumps(pool, separators=(",", ":")).encode()
    header_bytes = json.dumps(header, separators=(",", ":")).encode()
    crc = zlib.crc32(header_bytes)
    crc = zlib.crc32(body, crc)
    return (
        _PREAMBLE.pack(_MAGIC, len(header_bytes), len(body))
        + header_bytes
        + body
        + _FOOTER.pack(crc, _FOOTER_MAGIC)
    )


# --------------------------------------------------------------------- #
# Walking / reading
# --------------------------------------------------------------------- #
def _read_exact(handle, count: int) -> bytes:
    data = handle.read(count)
    return data if len(data) == count else b""


def _block_spans(path: Path, verify_crc: bool) -> Iterator[Tuple[int, Dict[str, Any], int, int]]:
    """Yield ``(offset, header, body_start, body_len)`` per complete block.

    Stops at the first structurally broken block (torn tail, foreign
    bytes, bad CRC when ``verify_crc``), mirroring the torn-line policy
    of the JSONL loader.
    """
    size = path.stat().st_size
    with path.open("rb") as handle:
        offset = 0
        while offset + _PREAMBLE.size <= size:
            handle.seek(offset)
            preamble = _read_exact(handle, _PREAMBLE.size)
            if not preamble:
                return
            magic, header_len, body_len = _PREAMBLE.unpack(preamble)
            end = offset + _PREAMBLE.size + header_len + body_len + _FOOTER.size
            if magic != _MAGIC or end > size:
                return
            header_bytes = _read_exact(handle, header_len)
            if not header_bytes and header_len:
                return
            try:
                header = json.loads(header_bytes)
            except json.JSONDecodeError:
                return
            if not isinstance(header, dict) or header.get("schema") != COLUMNAR_SCHEMA:
                return
            body_start = offset + _PREAMBLE.size + header_len
            if verify_crc:
                crc = zlib.crc32(header_bytes)
                body = _read_exact(handle, body_len)
                crc = zlib.crc32(body, crc)
                footer = _read_exact(handle, _FOOTER.size)
            else:
                handle.seek(body_start + body_len)
                footer = _read_exact(handle, _FOOTER.size)
            if len(footer) != _FOOTER.size:
                return
            stored_crc, footer_magic = _FOOTER.unpack(footer)
            if footer_magic != _FOOTER_MAGIC:
                return
            if verify_crc and stored_crc != crc:
                return
            yield offset, header, body_start, body_len
            offset = end


def iter_blocks(path: Path) -> Iterator[Tuple[int, Dict[str, Any]]]:
    """Yield ``(offset, header)`` for every CRC-verified block of a segment."""
    for offset, header, _start, _len in _block_spans(path, verify_crc=True):
        yield offset, header


def complete_block_count(path: Path) -> int:
    """Structurally complete blocks in a segment (cheap: no body reads)."""
    return sum(1 for _ in _block_spans(path, verify_crc=False))


def segment_extent(path: Path) -> Tuple[int, int]:
    """(complete blocks, byte offset past the last one) of a segment.

    Bytes past the extent are a torn tail from a crashed append; the
    store rolls over to a fresh segment rather than appending after them.
    """
    count = 0
    end = 0
    for _offset, _header, body_start, body_len in _block_spans(path, verify_crc=False):
        count += 1
        end = body_start + body_len + _FOOTER.size
    return count, end


def read_block_bytes(path: Path, offset: int) -> bytes:
    """The verbatim bytes of the block at ``offset`` (for raw compaction copies)."""
    with path.open("rb") as handle:
        handle.seek(offset)
        preamble = _read_exact(handle, _PREAMBLE.size)
        magic, header_len, body_len = _PREAMBLE.unpack(preamble)
        if magic != _MAGIC:
            raise ValueError(f"no block at {path.name}:{offset}")
        rest = _read_exact(handle, header_len + body_len + _FOOTER.size)
        if not rest:
            raise ValueError(f"truncated block at {path.name}:{offset}")
        return preamble + rest


class ColumnarBlock:
    """One stored result, opened for zero-copy column reads.

    The body is memory-mapped; :meth:`column` returns NumPy views/arrays
    over it and :meth:`row_dicts` materializes only the rows asked for.
    Opaque blocks (strict-encode fallback) expose :meth:`payload` only —
    callers route them through the reference engine.
    """

    def __init__(
        self, path: Path, offset: int, header: Dict[str, Any], body_start: int, body_len: int
    ) -> None:
        self.path = path
        self.offset = offset
        self.header = header
        self.body_start = body_start
        self.body_len = body_len
        self._body: Optional[np.memmap] = None
        self._rows_arr: Optional[np.ndarray] = None
        self._pool: Optional[List[str]] = None
        self._strings: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------ #
    @classmethod
    def read_at(cls, path: Path, offset: int) -> "ColumnarBlock":
        """Open the block at a known byte offset (no CRC on the hot path;
        the structural checks match the torn-tail walk)."""
        size = path.stat().st_size
        with path.open("rb") as handle:
            handle.seek(offset)
            preamble = _read_exact(handle, _PREAMBLE.size)
            if len(preamble) != _PREAMBLE.size:
                raise ValueError(f"no block at {path.name}:{offset}")
            magic, header_len, body_len = _PREAMBLE.unpack(preamble)
            end = offset + _PREAMBLE.size + header_len + body_len + _FOOTER.size
            if magic != _MAGIC or end > size:
                raise ValueError(f"no block at {path.name}:{offset}")
            header_bytes = _read_exact(handle, header_len)
            handle.seek(offset + _PREAMBLE.size + header_len + body_len)
            footer = _read_exact(handle, _FOOTER.size)
        try:
            header = json.loads(header_bytes)
        except json.JSONDecodeError:
            raise ValueError(f"corrupt block header at {path.name}:{offset}") from None
        if (
            not isinstance(header, dict)
            or header.get("schema") != COLUMNAR_SCHEMA
            or len(footer) != _FOOTER.size
            or _FOOTER.unpack(footer)[1] != _FOOTER_MAGIC
        ):
            raise ValueError(f"corrupt block at {path.name}:{offset}")
        return cls(path, offset, header, offset + _PREAMBLE.size + header_len, body_len)

    # ------------------------------------------------------------------ #
    @property
    def meta(self) -> Dict[str, Any]:
        """The record metadata embedded in the block header."""
        return self.header.get("meta", {})

    @property
    def key(self) -> Optional[str]:
        """The content key this block stores, if the header names one."""
        return self.meta.get("key")

    @property
    def opaque(self) -> bool:
        """True when the body is a raw JSON payload, not columns."""
        return self.header.get("encoding") != "columnar"

    @property
    def rows(self) -> int:
        """Number of design-point rows encoded in the body."""
        return int(self.header.get("rows", 0))

    @property
    def result_extra(self) -> Dict[str, Any]:
        """The payload minus its points (schema, spec, bookkeeping)."""
        return self.header.get("result", {})

    # ------------------------------------------------------------------ #
    def _mapped(self) -> np.memmap:
        if self._body is None:
            self._body = np.memmap(
                self.path, dtype=np.uint8, mode="r",
                offset=self.body_start, shape=(self.body_len,),
            )
        return self._body

    def _row_array(self) -> np.ndarray:
        if self._rows_arr is None:
            columns = [tuple(c) for c in self.header["columns"]]
            dtype = block_dtype(columns)
            pool_offset = int(self.header["pool_offset"])
            body = self._mapped()
            # frombuffer over the memmap slice: a zero-copy structured
            # view — column access reads only that column's bytes.
            self._rows_arr = np.frombuffer(body[:pool_offset], dtype=dtype)
        return self._rows_arr

    def pool(self) -> List[str]:
        """The block's string pool (parsed once, lazily)."""
        if self._pool is None:
            pool_offset = int(self.header["pool_offset"])
            raw = bytes(self._mapped()[pool_offset:])
            self._pool = json.loads(raw) if raw else []
        return self._pool

    def columns(self) -> Dict[str, str]:
        """Column path -> storage kind for this block."""
        return {name: kind for name, kind in self.header.get("columns", ())}

    def column(self, path: str) -> np.ndarray:
        """The raw stored array of one column (pool ids for str/json)."""
        return self._row_array()[path]

    def int_mask(self, path: str) -> np.ndarray:
        """The companion was-an-int mask of a mixed column."""
        return self._row_array()[path + "#int"]

    def null_mask(self, path: str) -> np.ndarray:
        """The companion was-null mask of a nullable-int column."""
        return self._row_array()[path + "#null"]

    def pool_id(self, text: str) -> int:
        """Pool index of ``text``, or ``-1`` when the block never stores it."""
        try:
            return self.pool().index(text)
        except ValueError:
            return -1

    def strings(self, path: str) -> List[str]:
        """A str column decoded to python strings (cached per column)."""
        cached = self._strings.get(path)
        if cached is None:
            pool = self.pool()
            cached = [pool[i] for i in self.column(path).tolist()]
            self._strings[path] = cached
        return cached

    # ------------------------------------------------------------------ #
    def _decode_column(self, path: str, kind: str) -> List[Any]:
        if kind in ("str", "json"):
            pool = self.pool()
            texts = [pool[i] for i in self.column(path).tolist()]
            if kind == "json":
                return [json.loads(text) for text in texts]
            return texts
        values = self.column(path).tolist()
        if kind == "bool":
            return [bool(v) for v in values]
        if kind == "mixed":
            mask = self.int_mask(path).tolist()
            return [int(v) if is_int else v for v, is_int in zip(values, mask)]
        if kind == "optint":
            mask = self.null_mask(path).tolist()
            return [None if is_null else v for v, is_null in zip(values, mask)]
        return values  # int64/float64 .tolist() already yields int/float

    def row_dicts(self, indices) -> List[Dict[str, Any]]:
        """Materialize full canonical point dicts for the given row indices.

        Decoding is column-at-a-time over just the selected rows; the
        output dicts are bit-identical to the stored payload's points.
        """
        index_list = [int(i) for i in indices]
        if not index_list:
            return []
        decoded: Dict[str, List[Any]] = {}
        arr = self._row_array()
        pool = self.pool()
        for path, kind in self.columns().items():
            column = arr[path]
            if kind in ("str", "json"):
                texts = [pool[int(column[i])] for i in index_list]
                decoded[path] = (
                    [json.loads(t) for t in texts] if kind == "json" else texts
                )
            elif kind == "bool":
                decoded[path] = [bool(column[i]) for i in index_list]
            elif kind == "mixed":
                mask = arr[path + "#int"]
                decoded[path] = [
                    int(column[i]) if mask[i] else float(column[i])
                    for i in index_list
                ]
            elif kind == "optint":
                mask = arr[path + "#null"]
                decoded[path] = [
                    None if mask[i] else int(column[i]) for i in index_list
                ]
            elif kind == "int":
                decoded[path] = [int(column[i]) for i in index_list]
            else:
                decoded[path] = [float(column[i]) for i in index_list]
        points = []
        for row in range(len(index_list)):
            latency = {
                key: decoded[f"latency.{key}"][row] for key in LATENCY_KEYS
            }
            resources = {
                key: decoded[f"resources.{key}"][row] for key in RESOURCE_KEYS
            }
            point: Dict[str, Any] = {}
            for key in POINT_KEYS:
                if key == "latency":
                    point[key] = latency
                elif key == "resources":
                    point[key] = resources
                elif key in decoded:
                    point[key] = decoded[key][row]
                # else: the block predates this key (schema grew by
                # appending columns); reproduce the old payload verbatim.
            points.append(point)
        return points

    def payload(self) -> Dict[str, Any]:
        """Reconstruct the full stored result payload, bit-identically."""
        if self.opaque:
            return json.loads(bytes(self._mapped()))
        extra = self.result_extra
        points = self.row_dicts(range(self.rows))
        keys = list(extra.keys())
        keys.insert(min(int(self.header.get("points_index", len(keys))), len(keys)), "points")
        out: Dict[str, Any] = {}
        for key in keys:
            out[key] = points if key == "points" else extra[key]
        return out

"""Append-only, content-addressed store of evaluated campaign results.

The store turns "run a campaign" into "compute once, serve forever": every
:class:`~repro.dse.CampaignResult` is serialized through the versioned
:mod:`repro.experiments.persistence` schema and appended to a JSONL
*segment* file, keyed by the content hash of its canonical JSON form and
indexed by the embedded spec's :meth:`~repro.experiments.ExperimentSpec.fingerprint`
plus its network and device names.  Consumers (the HTTP server, the CLI,
notebooks) answer "what-if" queries against stored results without owning
the evaluation engine.

Layout on disk (everything human-inspectable)::

    <root>/
      segments/segment-000001.jsonl   # one envelope per line, append-only
      index.json                      # metadata by key; rebuildable

Properties:

* **Content-addressed** — ``put`` of a content-identical result (same
  spec, points and evaluation count; run provenance such as timings and
  cache statistics excluded from the key) is a no-op returning the
  existing key, so re-submitting a campaign never duplicates storage.
* **Append-only** — segments are only ever appended to (and atomically
  rewritten by :meth:`ResultStore.compact`); a crash mid-append loses at
  most the trailing partial line, which the loader skips.
* **Self-healing index** — ``index.json`` is a cache; when missing, stale
  or corrupt it is rebuilt by scanning the segments.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..dse.campaign import CampaignResult
from ..experiments.persistence import RESULT_SCHEMA, result_from_dict, result_to_dict
from ..experiments.spec import ExperimentSpec, canonical_json_hash

__all__ = ["StoreRecord", "ResultStore", "result_key"]

#: Versioned schema tags for the segment envelopes and the index cache.
ENVELOPE_SCHEMA = "repro.result-store/1"
INDEX_SCHEMA = "repro.result-store-index/1"


#: Provenance-only payload fields excluded from the content key: they vary
#: between two runs of the same spec (wall clock, cache temperature) while
#: the *content* — spec, points, evaluation count — is deterministic, and
#: re-running a campaign must dedup to the stored result.
VOLATILE_FIELDS = ("elapsed_seconds", "cache_stats")


def result_key(payload: Dict[str, Any]) -> str:
    """Content hash of a serialized campaign result (the storage key).

    Hashes the canonical JSON form (same policy as
    :func:`repro.experiments.spec.canonical_json_hash` spec fingerprints)
    with run-provenance fields (:data:`VOLATILE_FIELDS`) stripped and the
    embedded spec's execution-tuning fields removed — every executor mode
    returns bit-identical points, so two evaluations of the same search
    share a key no matter how long they took, how warm the cache was or
    which engine ran them.
    """
    content = {k: v for k, v in payload.items() if k not in VOLATILE_FIELDS}
    spec = content.get("spec")
    if isinstance(spec, dict):
        content["spec"] = {
            k: v
            for k, v in spec.items()
            if k not in ExperimentSpec.EXECUTION_ONLY_FIELDS
        }
    return canonical_json_hash(content)


@dataclass(frozen=True)
class StoreRecord:
    """Index metadata of one stored result (no point payload).

    ``segment``/``offset`` locate the envelope on disk, so a read is one
    seek + one line parse instead of a segment scan; ``offset`` is ``-1``
    for records whose position is unknown (falls back to scanning).
    """

    key: str
    fingerprint: str
    name: str
    networks: tuple
    devices: tuple
    points: int
    evaluations: int
    sequence: int
    created: float
    segment: str
    offset: int = -1

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready index row; inverse of :meth:`from_dict`."""
        return {
            "key": self.key,
            "fingerprint": self.fingerprint,
            "name": self.name,
            "networks": list(self.networks),
            "devices": list(self.devices),
            "points": self.points,
            "evaluations": self.evaluations,
            "sequence": self.sequence,
            "created": self.created,
            "segment": self.segment,
            "offset": self.offset,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StoreRecord":
        """Rebuild a record from :meth:`to_dict` output (offset optional)."""
        return cls(
            key=data["key"],
            fingerprint=data["fingerprint"],
            name=data["name"],
            networks=tuple(data["networks"]),
            devices=tuple(data["devices"]),
            points=data["points"],
            evaluations=data["evaluations"],
            sequence=data["sequence"],
            created=data["created"],
            segment=data["segment"],
            offset=data.get("offset", -1),
        )


class ResultStore:
    """Persistent campaign-result store rooted at a directory.

    Thread-safe: every public method takes the store lock, so the HTTP
    server's event loop and its evaluation worker threads can share one
    instance.  Results themselves stay on disk — only index metadata is
    held in memory — so the store's footprint is independent of how many
    points the stored campaigns contain.
    """

    def __init__(
        self,
        root: Union[str, Path],
        segment_max_records: int = 64,
    ) -> None:
        if segment_max_records < 1:
            raise ValueError("segment_max_records must be >= 1")
        self.root = Path(root)
        self.segment_max_records = segment_max_records
        self._lock = threading.RLock()
        self._records: Dict[str, StoreRecord] = {}
        self._next_sequence = 1
        self._segments_dir = self.root / "segments"
        self._index_path = self.root / "index.json"
        self._segments_dir.mkdir(parents=True, exist_ok=True)
        # Append cursor: the active segment, its (raw) line count and
        # whether its tail ends in a newline — maintained in memory so a
        # put() never has to re-read the segment it is appending to.
        self._active_segment: Optional[Path] = None
        self._active_count = 0
        self._active_tail_clean = True
        self._load_index()
        self._reset_append_cursor()

    # ------------------------------------------------------------------ #
    # Loading / index maintenance
    # ------------------------------------------------------------------ #
    def _segment_paths(self) -> List[Path]:
        return sorted(self._segments_dir.glob("segment-*.jsonl"))

    def _load_index(self) -> None:
        """Load ``index.json``, falling back to a full segment scan.

        The index is trusted only when it is provably in sync with the
        segments: every indexed segment must exist and every segment's
        on-disk line count must equal the number of records indexed in
        it.  A crash after a segment append but before the index write
        therefore triggers a rebuild — the orphaned (fully written)
        envelope is recovered, never silently hidden.
        """
        if self._index_path.exists():
            try:
                data = json.loads(self._index_path.read_text())
                if data.get("schema") != INDEX_SCHEMA:
                    raise ValueError("wrong index schema")
                records = {
                    key: StoreRecord.from_dict(entry)
                    for key, entry in data["records"].items()
                }
                indexed_per_segment: Dict[str, int] = {}
                for record in records.values():
                    indexed_per_segment[record.segment] = (
                        indexed_per_segment.get(record.segment, 0) + 1
                    )
                # Count *complete* (newline-terminated) lines: a torn tail
                # from a crash mid-append is not yet a record, so it must
                # not invalidate the index on every subsequent open.
                disk_per_segment = {
                    path.name: self._complete_line_count(path.read_bytes())
                    for path in self._segment_paths()
                }
                if indexed_per_segment != disk_per_segment:
                    raise ValueError("index out of sync with segments")
                self._records = records
                self._next_sequence = int(data.get("next_sequence", 1))
                return
            except (ValueError, KeyError, TypeError, json.JSONDecodeError):
                pass  # fall through to rebuild
        self.rebuild_index()

    @staticmethod
    def _scan_segment(path: Path):
        """Yield ``(offset, envelope)`` for every parseable line of a segment.

        Torn trailing lines (crash mid-append) and foreign content are
        skipped.
        """
        data = path.read_bytes()
        offset = 0
        for raw in data.splitlines(keepends=True):
            line = raw.strip()
            if line:
                try:
                    envelope = json.loads(line)
                except json.JSONDecodeError:
                    envelope = None  # torn write at the tail of a segment
                if isinstance(envelope, dict) and envelope.get("schema") == ENVELOPE_SCHEMA:
                    yield offset, envelope
            offset += len(raw)

    def rebuild_index(self) -> int:
        """Rescan every segment and rewrite ``index.json``.

        Returns the number of live records.  Later envelopes win on key
        collisions (compaction preserves this by keeping the newest).
        Partial trailing lines (crash mid-append) are skipped.
        """
        with self._lock:
            self._records = {}
            max_sequence = 0
            for path in self._segment_paths():
                for offset, envelope in self._scan_segment(path):
                    record = StoreRecord.from_dict(
                        {**envelope["meta"], "segment": path.name, "offset": offset}
                    )
                    self._records[record.key] = record
                    max_sequence = max(max_sequence, record.sequence)
            self._next_sequence = max_sequence + 1
            self._write_index()
            self._reset_append_cursor()
            return len(self._records)

    def _write_index(self) -> None:
        payload = {
            "schema": INDEX_SCHEMA,
            "next_sequence": self._next_sequence,
            "records": {
                key: record.to_dict() for key, record in self._records.items()
            },
        }
        tmp = self._index_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
        os.replace(tmp, self._index_path)

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #
    @staticmethod
    def _complete_line_count(data: bytes) -> int:
        """Non-blank, newline-terminated lines (a torn tail is excluded)."""
        return sum(1 for line in data.split(b"\n")[:-1] if line.strip())

    def _reset_append_cursor(self) -> None:
        """Re-derive the append cursor from disk (open / rebuild / compact)."""
        paths = self._segment_paths()
        if not paths:
            self._active_segment = None
            self._active_count = 0
            self._active_tail_clean = True
            return
        last = paths[-1]
        data = last.read_bytes()
        self._active_segment = last
        self._active_count = self._complete_line_count(data)
        self._active_tail_clean = (not data) or data.endswith(b"\n")

    def _append_segment(self) -> Path:
        """The segment new envelopes append to.

        Rolls over to a fresh segment when the active one is full — or
        when its tail is torn (crash mid-append left no trailing newline):
        appending there would merge the new envelope into the torn line
        and lose it to the next rescan, so the torn segment is left as-is
        for compact() to clean up.
        """
        if (
            self._active_segment is not None
            and self._active_count < self.segment_max_records
            and self._active_tail_clean
        ):
            return self._active_segment
        if self._active_segment is not None:
            number = int(self._active_segment.stem.split("-")[1]) + 1
        else:
            number = 1
        self._active_segment = self._segments_dir / f"segment-{number:06d}.jsonl"
        self._active_count = 0
        self._active_tail_clean = True
        return self._active_segment

    def put(self, result: CampaignResult) -> str:
        """Persist a result; returns its content key.

        Re-putting a content-identical result — same spec, same points,
        same evaluation count; run provenance like timings excluded — is
        a no-op that returns the existing key (content addressing), so
        re-submitting a campaign never duplicates storage.
        """
        return self.put_payload(result_to_dict(result))

    def put_payload(self, payload: Dict[str, Any]) -> str:
        """Persist an already-serialized result payload; returns its key.

        ``payload`` is the versioned :func:`~repro.experiments.persistence.result_to_dict`
        form (``put`` delegates here after serializing).  The job scheduler
        ingests worker-produced payloads through this entry point so the
        parent process never re-materializes design points just to store
        them.  Same content addressing and dedup rules as :meth:`put`.
        """
        if payload.get("schema") != RESULT_SCHEMA:
            raise ValueError(
                f"result payload has schema {payload.get('schema')!r}; "
                f"expected {RESULT_SCHEMA!r}"
            )
        spec_data = payload.get("spec")
        if not isinstance(spec_data, dict):
            raise ValueError("result payload has no embedded spec mapping")
        fingerprint = canonical_json_hash(
            {
                k: v
                for k, v in spec_data.items()
                if k not in ExperimentSpec.EXECUTION_ONLY_FIELDS
            }
        )
        key = result_key(payload)
        with self._lock:
            existing = self._records.get(key)
            if existing is not None:
                return key
            segment = self._append_segment()
            record = StoreRecord(
                key=key,
                fingerprint=fingerprint,
                name=spec_data.get("name", "experiment"),
                networks=tuple(spec_data.get("networks", ())),
                devices=tuple(spec_data.get("devices", ())),
                points=len(payload.get("points", ())),
                evaluations=payload.get("evaluations", 0),
                sequence=self._next_sequence,
                created=time.time(),
                segment=segment.name,
            )
            envelope = {
                "schema": ENVELOPE_SCHEMA,
                # segment/offset are positional, known only to the index.
                "meta": {
                    k: v
                    for k, v in record.to_dict().items()
                    if k not in ("segment", "offset")
                },
                "result": payload,
            }
            # Binary mode: tell() must be a true byte offset for get()'s seek.
            with segment.open("ab") as handle:
                offset = handle.tell()
                handle.write(
                    (json.dumps(envelope, separators=(",", ":")) + "\n").encode()
                )
                handle.flush()
            self._active_count += 1
            self._records[key] = replace(record, offset=offset)
            self._next_sequence += 1
            self._write_index()
            return key

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def keys(self) -> List[str]:
        """Every stored content key, oldest sequence first."""
        with self._lock:
            return sorted(self._records, key=lambda key: self._records[key].sequence)

    def record(self, key: str) -> StoreRecord:
        """Index metadata for ``key``; raises ``KeyError`` when absent."""
        with self._lock:
            return self._records[key]

    def get(self, key: str) -> CampaignResult:
        """Load the full result stored under ``key``.

        Raises ``KeyError`` for unknown keys.  The deserialized result
        goes through the same versioned loader as ``CampaignResult.load``,
        so schema guarantees apply to store reads too.
        """
        return result_from_dict(self.get_payload(key))

    def get_payload(self, key: str) -> Dict[str, Any]:
        """The raw serialized payload stored under ``key`` (no rebuild).

        What :meth:`get` parses into a :class:`CampaignResult`; the job
        scheduler reassembles campaigns from these directly.  Reads are one
        seek + one line parse via the record's byte offset (falling back
        to a segment scan when the offset is unknown or stale).
        """
        with self._lock:
            record = self._records[key]
            path = self._segments_dir / record.segment
            if record.offset >= 0:
                with path.open("rb") as handle:
                    handle.seek(record.offset)
                    line = handle.readline()
                try:
                    envelope = json.loads(line)
                except json.JSONDecodeError:
                    envelope = None
                if (
                    isinstance(envelope, dict)
                    and envelope.get("meta", {}).get("key") == key
                ):
                    return envelope["result"]
            # Fallback: offset unknown/stale — scan the segment.
            for _, envelope in self._scan_segment(path):
                if envelope.get("meta", {}).get("key") == key:
                    return envelope["result"]
        raise KeyError(f"stored result {key!r} vanished from segment {record.segment!r}")

    def query(
        self,
        fingerprint: Optional[str] = None,
        network: Optional[str] = None,
        device: Optional[str] = None,
        name: Optional[str] = None,
    ) -> List[StoreRecord]:
        """Index records matching every given filter, oldest first."""
        with self._lock:
            records = sorted(self._records.values(), key=lambda r: r.sequence)
        return [
            record
            for record in records
            if (fingerprint is None or record.fingerprint == fingerprint)
            and (network is None or network in record.networks)
            and (device is None or device in record.devices)
            and (name is None or record.name == name)
        ]

    def find(self, fingerprint: str) -> Optional[StoreRecord]:
        """Newest index record whose spec fingerprint matches, if any.

        The resumption primitive: shard and campaign specs have
        deterministic fingerprints, so "has this search already been
        evaluated?" is one index lookup, no payload reads.
        """
        with self._lock:
            matches = [
                record
                for record in self._records.values()
                if record.fingerprint == fingerprint
            ]
        if not matches:
            return None
        return max(matches, key=lambda record: record.sequence)

    def find_many(self, fingerprints) -> Dict[str, StoreRecord]:
        """Newest record per matching fingerprint, in one index pass.

        The bulk form of :meth:`find` — a job's whole shard plan resolves
        in a single scan under one lock acquisition instead of one scan
        per shard.  Fingerprints with no stored record are absent from the
        returned mapping.
        """
        wanted = set(fingerprints)
        found: Dict[str, StoreRecord] = {}
        with self._lock:
            for record in self._records.values():
                if record.fingerprint not in wanted:
                    continue
                best = found.get(record.fingerprint)
                if best is None or record.sequence > best.sequence:
                    found[record.fingerprint] = record
        return found

    def latest(
        self,
        fingerprint: Optional[str] = None,
        network: Optional[str] = None,
        device: Optional[str] = None,
        name: Optional[str] = None,
    ) -> Optional[CampaignResult]:
        """The most recently stored result matching the filters, if any."""
        matches = self.query(
            fingerprint=fingerprint, network=network, device=device, name=name
        )
        if not matches:
            return None
        return self.get(matches[-1].key)

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def compact(self) -> Dict[str, int]:
        """Rewrite the segments keeping only live envelopes.

        Re-scans the segments first (so envelopes a crashed ``put`` left
        un-indexed are recovered, never dropped), keeps the newest
        envelope per key, drops superseded duplicates and torn lines,
        renumbers segments from 1 and rewrites the index.  Returns
        ``{"kept": n, "dropped": m}``.  Safe to call on a live store (the
        lock blocks writers for the duration).
        """
        with self._lock:
            # Liveness is decided from the segments themselves, not the
            # possibly-stale in-memory index.
            self.rebuild_index()
            envelopes: Dict[str, dict] = {}
            dropped = 0
            for path in self._segment_paths():
                raw_lines = [
                    line for line in path.read_text().splitlines() if line.strip()
                ]
                parsed = list(self._scan_segment(path))
                dropped += len(raw_lines) - len(parsed)  # torn/foreign lines
                for _, envelope in parsed:
                    key = envelope.get("meta", {}).get("key")
                    if key in self._records:
                        if key in envelopes:
                            dropped += 1
                        envelopes[key] = envelope
                    else:
                        dropped += 1

            ordered = sorted(
                envelopes.values(), key=lambda env: env["meta"]["sequence"]
            )
            old_paths = self._segment_paths()
            new_records: Dict[str, StoreRecord] = {}
            written: List[Path] = []
            for start in range(0, len(ordered), self.segment_max_records):
                number = len(written) + 1
                path = self._segments_dir / f"segment-{number:06d}.jsonl.compact"
                with path.open("wb") as handle:
                    for envelope in ordered[start : start + self.segment_max_records]:
                        offset = handle.tell()
                        handle.write(
                            (json.dumps(envelope, separators=(",", ":")) + "\n").encode()
                        )
                        record = StoreRecord.from_dict(
                            {
                                **envelope["meta"],
                                "segment": path.name.replace(".compact", ""),
                                "offset": offset,
                            }
                        )
                        new_records[record.key] = record
                written.append(path)
            # Crash safety: promote the rewritten segments FIRST (os.replace
            # atomically overwrites same-named old segments), and only then
            # drop old segments that were not overwritten.  A crash at any
            # point leaves every live envelope on disk under a
            # ``segment-*.jsonl`` name — worst case with some superseded
            # duplicates, which rebuild_index/the next compact resolve.
            final_names = set()
            for path in written:
                final = path.with_name(path.name.replace(".compact", ""))
                os.replace(path, final)
                final_names.add(final.name)
            for path in old_paths:
                if path.name not in final_names:
                    path.unlink()
            self._records = new_records
            self._write_index()
            self._reset_append_cursor()
            return {"kept": len(new_records), "dropped": dropped}

    def __repr__(self) -> str:
        return f"ResultStore(root={str(self.root)!r}, results={len(self)})"
